"""Tests for reconnect-anywhere (the paper's extensibility feature 5).

A durable subscriber that loses its SHB can reconnect to a *different*
SHB presenting its CT.  The new SHB has no PFS records for the
subscriber's past, so the missed span is recovered by nacking the
ticks wholesale and refiltering the returned events against the
subscription's own predicate — exactly the fallback the paper sketches
("retrieving the events it may have missed (from the PHB or
intermediate caches) and refiltering the events").
"""

from repro import (
    DurableSubscriber,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_star,
)


def make_env(n_shbs=2, rate=100):
    sim = Scheduler()
    overlay = build_star(sim, ["P1"], n_shbs=n_shbs)
    machine = Node(sim, "client")
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return sim, overlay, machine, pub


class TestReconnectAnywhere:
    def test_move_to_other_shb_recovers_missed_events(self):
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [0, 2]),
                                record_events=True)
        sub.connect(shb_a)
        sim.run_until(3_000)
        sub.disconnect()
        sim.run_until(6_000)          # misses ~3s of events
        sub.connect(shb_b)            # different SHB, same CT
        sim.run_until(12_000)
        # Only after the roamer is safely registered at its new home may
        # the old registration be dropped: the old SHB's registration is
        # what holds the release protocol back for the missed span.
        shb_a.unsubscribe("roamer")
        sim.run_until(13_000)
        pub.stop()
        sim.run_until(17_000)
        assert sub.stats.events == pub.published // 2
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        assert sub.stats.gaps == 0

    def test_unsubscribing_old_home_too_early_yields_gaps(self):
        """Dropping the old registration before re-registering releases
        the missed span — surfaced as explicit gaps, never silently."""
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [0, 2]),
                                record_events=True)
        sub.connect(shb_a)
        sim.run_until(3_000)
        sub.disconnect()
        shb_a.unsubscribe("roamer")   # retention dropped immediately
        sim.run_until(6_000)
        sub.connect(shb_b)
        sim.run_until(12_000)
        pub.stop()
        sim.run_until(16_000)
        assert sub.stats.gaps > 0
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_refiltering_drops_non_matching_events(self):
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [1]),
                                record_events=True)
        sub.connect(shb_a)
        sim.run_until(2_000)
        sub.disconnect()
        sim.run_until(5_000)
        sub.connect(shb_b)
        sim.run_until(10_000)
        pub.stop()
        sim.run_until(14_000)
        # Exactly the quarter of events in group 1, despite the catchup
        # having fetched (and refiltered away) the other three quarters.
        assert sub.stats.events == pub.published // 4
        assert sub.duplicate_events == 0

    def test_refilter_counter_reports_discards(self):
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        # A wildcard subscriber at the destination keeps shb_b's uplink
        # unfiltered, so the roamer's refilter span actually receives
        # non-matching events to discard (with the roamer alone, the
        # PHB's per-link filter would have dropped them already).
        from repro.matching.predicates import Everything
        other = DurableSubscriber(sim, "other", machine, Everything())
        other.connect(shb_b)
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [1]))
        sub.connect(shb_a)
        sim.run_until(2_000)
        sub.disconnect()
        sim.run_until(4_000)
        sub.connect(shb_b)
        # Sample the refilter counter while the catchup stream exists.
        counters = []

        def probe():
            for stream in shb_b.catchups.values():
                counters.append(stream.events_refiltered_out)

        sim.every(5, probe)
        sim.run_until(9_000)
        pub.stop()
        sim.run_until(12_000)
        assert counters and max(counters) > 0

    def test_roaming_after_shb_crash(self):
        """The availability argument: an SHB dies and does not come
        back; its subscribers move to a surviving SHB."""
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [0, 2]),
                                record_events=True)
        sub.connect(shb_a)
        sim.run_until(3_000)
        shb_a.crash()                 # never recovers
        sim.run_until(6_000)
        assert not sub.connected
        sub.connect(shb_b)
        sim.run_until(14_000)
        pub.stop()
        sim.run_until(18_000)
        assert sub.stats.events == pub.published // 2
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_new_shb_pfs_covers_roamer_going_forward(self):
        sim, overlay, machine, pub = make_env()
        shb_a, shb_b = overlay.shbs
        sub = DurableSubscriber(sim, "roamer", machine, In("group", [0, 2]),
                                record_events=True)
        sub.connect(shb_a)
        sim.run_until(2_000)
        sub.disconnect()
        sim.run_until(3_000)
        sub.connect(shb_b)
        sim.run_until(6_000)
        # A second (ordinary) disconnect/reconnect at the new home must
        # use the PFS as usual.
        sub.disconnect()
        sim.run_until(8_000)
        reads_before = shb_b.pfs.reads
        sub.connect(shb_b)
        sim.run_until(14_000)
        pub.stop()
        sim.run_until(18_000)
        assert shb_b.pfs.reads > reads_before
        assert sub.stats.events == pub.published // 2
        assert sub.duplicate_events == 0
