"""Tests for the publisher hosting broker (dissemination + nack service)."""

import pytest

from repro.broker.base import Broker
from repro.broker.phb import PublisherHostingBroker
from repro.core import messages as M
from repro.matching.predicates import Eq
from repro.net.link import Link
from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.util.errors import ConfigurationError
from repro.util.intervals import IntervalSet


class FakeChild(Broker):
    """A broker that records everything its parent sends it."""

    def __init__(self, scheduler, name):
        super().__init__(scheduler, name)
        self.received = []

    def _handle_from_parent(self, msg):
        self.received.append(msg)

    def _handle_from_child(self, child, msg):  # pragma: no cover
        raise AssertionError("leaf")

    def knowledge(self):
        return [m for m in self.received if isinstance(m, M.KnowledgeUpdate)]


@pytest.fixture
def env():
    sim = Scheduler()
    phb = PublisherHostingBroker(sim, "phb")
    phb.create_pubend("P1")
    child = FakeChild(sim, "child")
    Broker.connect(phb, child, latency_ms=1.0)
    phb.register_release_child("P1", "child")
    return sim, phb, child


class TestDissemination:
    def test_published_event_reaches_child(self, env):
        sim, phb, child = env
        # Child has a matching subscription below it.
        phb.child_engines["child"].add("s1", Eq("g", 0))
        phb.publish("P1", {"g": 0})
        sim.run_until(100)
        events = [e for u in child.knowledge() for e in u.d_events]
        assert len(events) == 1
        assert events[0].attributes["g"] == 0

    def test_non_matching_event_filtered_to_silence(self, env):
        sim, phb, child = env
        phb.child_engines["child"].add("s1", Eq("g", 1))
        phb.publish("P1", {"g": 0})
        sim.run_until(100)
        updates = child.knowledge()
        assert all(not u.d_events for u in updates)
        # The event's tick is covered by silence.
        covered = IntervalSet()
        for u in updates:
            for s, e in u.s_ranges:
                covered.add(s, e)
        assert covered.max() >= 1

    def test_subscription_add_from_child_updates_filter(self, env):
        sim, phb, child = env
        child.send_up(M.SubscriptionAdd("s1", Eq("g", 0)))
        sim.run_until(10)
        assert "s1" in phb.child_engines["child"]
        child.send_up(M.SubscriptionRemove("s1"))
        sim.run_until(20)
        assert "s1" not in phb.child_engines["child"]

    def test_silence_flows_without_events(self, env):
        sim, phb, child = env
        sim.run_until(200)
        covered = IntervalSet()
        for u in child.knowledge():
            for s, e in u.s_ranges:
                covered.add(s, e)
        assert covered and covered.max() >= 150


class TestNackService:
    def test_nack_answered_from_log(self, env):
        sim, phb, child = env
        phb.child_engines["child"].add("s1", Eq("g", 0))
        phb.publish("P1", {"g": 0})
        sim.run_until(100)
        child.received.clear()
        child.send_up(M.Nack("P1", [(1, 90)]))
        sim.run_until(200)
        events = [e for u in child.knowledge() for e in u.d_events]
        assert len(events) == 1

    def test_nack_for_released_ticks_answers_l(self, env):
        sim, phb, child = env
        sim.run_until(100)
        child.send_up(M.ReleaseUpdate("P1", released=50, latest_delivered=80))
        sim.run_until(150)
        assert phb.pubends["P1"].lost_below == 51
        child.received.clear()
        child.send_up(M.Nack("P1", [(1, 60)]))
        sim.run_until(250)
        l_ranges = [r for u in child.knowledge() for r in u.l_ranges]
        assert (1, 50) in l_ranges

    def test_nack_for_unknown_pubend_ignored(self, env):
        sim, phb, child = env
        child.send_up(M.Nack("P9", [(1, 10)]))
        sim.run_until(50)  # no crash, no reply


class TestReleaseProtocol:
    def test_release_chops_log(self, env):
        sim, phb, child = env
        phb.child_engines["child"].add("s1", Eq("g", 0))
        phb.publish("P1", {"g": 0})
        sim.run_until(100)
        t = phb.pubends["P1"].log.max_timestamp
        child.send_up(M.ReleaseUpdate("P1", released=t, latest_delivered=t))
        sim.run_until(200)
        assert phb.pubends["P1"].log.live_event_count == 0

    def test_release_blocked_until_all_children_report(self):
        sim = Scheduler()
        phb = PublisherHostingBroker(sim, "phb")
        phb.create_pubend("P1")
        c1, c2 = FakeChild(sim, "c1"), FakeChild(sim, "c2")
        Broker.connect(phb, c1)
        Broker.connect(phb, c2)
        phb.register_release_child("P1", "c1")
        phb.register_release_child("P1", "c2")
        phb.publish("P1", {"g": 0})
        sim.run_until(100)
        c1.send_up(M.ReleaseUpdate("P1", 90, 90))
        sim.run_until(150)
        assert phb.pubends["P1"].log.live_event_count == 1  # c2 silent
        c2.send_up(M.ReleaseUpdate("P1", 90, 90))
        sim.run_until(200)
        assert phb.pubends["P1"].log.live_event_count == 0


class TestStructure:
    def test_duplicate_pubend_rejected(self):
        sim = Scheduler()
        phb = PublisherHostingBroker(sim, "phb")
        phb.create_pubend("P1")
        with pytest.raises(ConfigurationError):
            phb.create_pubend("P1")

    def test_phb_has_no_parent(self):
        sim = Scheduler()
        phb = PublisherHostingBroker(sim, "phb")
        with pytest.raises(ConfigurationError):
            phb._handle_from_parent(object())

    def test_crash_loses_staged_recover_resumes(self):
        sim = Scheduler()
        phb = PublisherHostingBroker(sim, "phb")
        phb.create_pubend("P1")
        child = FakeChild(sim, "child")
        Broker.connect(phb, child)
        phb.register_release_child("P1", "child")
        phb.child_engines["child"].add("s1", Eq("g", 0))
        phb.publish("P1", {"g": 0})
        sim.run_until(1)     # publish CPU done; event staged for the log
        phb.crash()          # before the log sync: event lost
        sim.run_until(100)
        phb.recover()
        sim.run_until(150)
        phb.publish("P1", {"g": 0})
        sim.run_until(300)
        events = [e for u in child.knowledge() for e in u.d_events]
        assert len(events) == 1  # only the post-recovery event
        assert phb.pubends["P1"].events_lost_in_crash == 1
