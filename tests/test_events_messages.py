"""Unit tests for events, protocol messages and tick kinds."""

import pytest

from repro.core.events import HEADER_BYTES, PAPER_PAYLOAD_BYTES, Event
from repro.core import messages as M
from repro.core.ticks import Tick
from repro.matching.predicates import Eq


class TestEvent:
    def test_paper_event_is_418_bytes(self):
        event = Event("P1", 1)
        assert event.payload_bytes == PAPER_PAYLOAD_BYTES == 250
        assert event.size_bytes == 418
        assert HEADER_BYTES == 168

    def test_event_id(self):
        assert Event("P2", 1234).event_id == "P2:1234"

    def test_events_are_immutable(self):
        event = Event("P1", 1)
        with pytest.raises(AttributeError):
            event.timestamp = 2  # type: ignore[misc]

    def test_custom_payload(self):
        assert Event("P1", 1, payload_bytes=1000).size_bytes == 1168


class TestTick:
    def test_is_known(self):
        assert not Tick.Q.is_known()
        for t in (Tick.S, Tick.D, Tick.L):
            assert t.is_known()

    def test_values(self):
        assert {t.value for t in Tick} == {"Q", "S", "D", "L"}


class TestMessageSizes:
    def test_knowledge_update_size_scales_with_events(self):
        empty = M.KnowledgeUpdate("P1")
        one = M.KnowledgeUpdate("P1", d_events=[Event("P1", 1)])
        assert one.size_bytes - empty.size_bytes == 418

    def test_nack_size_scales_with_ranges(self):
        small = M.Nack("P1", [(1, 5)])
        big = M.Nack("P1", [(1, 5), (7, 9), (11, 20)])
        assert big.size_bytes - small.size_bytes == 32

    def test_release_update_size(self):
        assert M.ReleaseUpdate("P1", 1, 2).size_bytes > 0

    def test_event_message_size_is_event_size(self):
        event = Event("P1", 1)
        assert M.EventMessage("P1", 1, event).size_bytes == event.size_bytes

    def test_control_message_sizes(self):
        assert M.SilenceMessage("P1", 5).size_bytes == M.CONTROL_HEADER_BYTES
        assert M.GapMessage("P1", 5).size_bytes == M.CONTROL_HEADER_BYTES
        ct = {"P1": 5, "P2": 9}
        assert M.AckCheckpoint("s", ct).size_bytes == M.CONTROL_HEADER_BYTES + 32

    def test_connect_request_fields(self):
        req = M.ConnectRequest("s1", checkpoint={"P1": 5}, predicate=Eq("g", 1))
        assert req.sub_id == "s1"
        assert req.size_bytes > M.CONTROL_HEADER_BYTES

    def test_publish_request_size(self):
        assert M.PublishRequest({"g": 1}, 250).size_bytes == M.CONTROL_HEADER_BYTES + 250


class TestNackRefilterField:
    def test_default_no_refilter(self):
        assert M.Nack("P1", [(1, 5)]).refilter_below == 0

    def test_refilter_boundary_carried(self):
        nack = M.Nack("P1", [(1, 5)], refilter_below=3)
        assert nack.refilter_below == 3


class TestClipHelpers:
    def test_clip_update_to_set(self):
        from repro.util.intervals import IntervalSet
        update = M.KnowledgeUpdate(
            "P1",
            d_events=[Event("P1", 3), Event("P1", 8)],
            s_ranges=[(1, 2), (4, 7), (9, 12)],
        )
        interest = IntervalSet([(2, 4), (10, 11)])
        out = M.clip_update_to_set(update, interest)
        assert [e.timestamp for e in out.d_events] == [3]
        assert out.s_ranges == [(2, 2), (4, 4), (10, 11)]

    def test_clip_update_to_empty_set(self):
        from repro.util.intervals import IntervalSet
        update = M.KnowledgeUpdate("P1", s_ranges=[(1, 5)])
        assert M.clip_update_to_set(update, IntervalSet()).is_empty()
