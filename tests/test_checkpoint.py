"""Tests for Checkpoint Tokens (the subscriber-owned vector clock)."""

import pytest

from repro.core.checkpoint import CheckpointToken
from repro.util.errors import SubscriptionError


class TestBasics:
    def test_empty(self):
        ct = CheckpointToken()
        assert ct.get("P1") == 0
        assert len(ct) == 0

    def test_from_mapping(self):
        ct = CheckpointToken({"P1": 5, "P2": 9})
        assert ct.get("P1") == 5
        assert ct.as_dict() == {"P1": 5, "P2": 9}

    def test_as_dict_is_a_copy(self):
        ct = CheckpointToken({"P1": 5})
        d = ct.as_dict()
        d["P1"] = 99
        assert ct.get("P1") == 5

    def test_copy_independent(self):
        ct = CheckpointToken({"P1": 5})
        other = ct.copy()
        other.advance("P1", 10)
        assert ct.get("P1") == 5

    def test_equality(self):
        assert CheckpointToken({"P1": 5}) == CheckpointToken({"P1": 5})
        assert CheckpointToken({"P1": 5}) != CheckpointToken({"P1": 6})


class TestAdvance:
    def test_advance_monotone(self):
        ct = CheckpointToken()
        ct.advance("P1", 5)
        ct.advance("P1", 5)   # equal is allowed
        ct.advance("P1", 9)
        assert ct.get("P1") == 9

    def test_regression_rejected(self):
        ct = CheckpointToken({"P1": 9})
        with pytest.raises(SubscriptionError):
            ct.advance("P1", 5)

    def test_set_initial_once(self):
        ct = CheckpointToken()
        ct.set_initial("P1", 100)
        assert ct.get("P1") == 100
        with pytest.raises(SubscriptionError):
            ct.set_initial("P1", 200)

    def test_merge_max(self):
        a = CheckpointToken({"P1": 5, "P2": 10})
        b = CheckpointToken({"P1": 8, "P3": 2})
        a.merge_max(b)
        assert a.as_dict() == {"P1": 8, "P2": 10, "P3": 2}

    def test_dominates(self):
        a = CheckpointToken({"P1": 5, "P2": 10})
        b = CheckpointToken({"P1": 5})
        assert a.dominates(b)
        assert not b.dominates(a)
        assert a.dominates(CheckpointToken())
