"""Tests for intermediate brokers: filtering, caching, nack consolidation."""

import pytest

from repro.broker.base import Broker
from repro.broker.intermediate import IntermediateBroker
from repro.core import messages as M
from repro.core.events import Event
from repro.matching.predicates import Eq, Everything
from repro.net.simtime import Scheduler


def ev(t, g=0):
    return Event("P1", t, {"g": g})


class FakeRoot(Broker):
    def __init__(self, scheduler, name="root"):
        super().__init__(scheduler, name)
        self.received = []

    def _handle_from_parent(self, msg):  # pragma: no cover
        raise AssertionError("root")

    def _handle_from_child(self, child, msg):
        self.received.append((child, msg))


class FakeLeaf(Broker):
    def __init__(self, scheduler, name):
        super().__init__(scheduler, name)
        self.received = []

    def _handle_from_parent(self, msg):
        self.received.append(msg)

    def _handle_from_child(self, child, msg):  # pragma: no cover
        raise AssertionError("leaf")

    def events(self):
        return [e for m in self.received if isinstance(m, M.KnowledgeUpdate)
                for e in m.d_events]


@pytest.fixture
def env():
    sim = Scheduler()
    root = FakeRoot(sim)
    mid = IntermediateBroker(sim, "mid")
    leaf_a = FakeLeaf(sim, "a")
    leaf_b = FakeLeaf(sim, "b")
    Broker.connect(root, mid)
    Broker.connect(mid, leaf_a)
    Broker.connect(mid, leaf_b)
    return sim, root, mid, leaf_a, leaf_b


def knowledge(*, d=(), s=(), l=()):
    return M.KnowledgeUpdate("P1", d_events=list(d), s_ranges=list(s), l_ranges=list(l))


class TestForwarding:
    def test_head_knowledge_forwarded_to_all_children(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Everything())
        mid.child_engines["b"].add("sb", Everything())
        root.send_to_child("mid", knowledge(d=[ev(5)], s=[(1, 4)]))
        sim.run_until(50)
        assert [e.timestamp for e in a.events()] == [5]
        assert [e.timestamp for e in b.events()] == [5]

    def test_per_child_filtering(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Eq("g", 0))
        mid.child_engines["b"].add("sb", Eq("g", 1))
        root.send_to_child("mid", knowledge(d=[ev(5, g=0)], s=[(1, 4)]))
        sim.run_until(50)
        assert [e.timestamp for e in a.events()] == [5]
        assert b.events() == []
        # b still learns the tick as silence (the filtered single-tick
        # range is coalesced with the adjacent silence before sending).
        assert any(s <= 5 <= e for m in b.received for (s, e) in m.s_ranges)

    def test_old_knowledge_not_rebroadcast(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Everything())
        mid.child_engines["b"].add("sb", Everything())
        root.send_to_child("mid", knowledge(s=[(1, 50)]))
        sim.run_until(20)
        a.received.clear()
        b.received.clear()
        # A re-send of already-forwarded ticks (e.g. a nack reply meant
        # for someone else) is not broadcast as head knowledge.
        root.send_to_child("mid", knowledge(d=[ev(30)]))
        sim.run_until(50)
        assert a.events() == []
        assert b.events() == []

    def test_subscription_propagation(self, env):
        sim, root, mid, a, b = env
        a.send_up(M.SubscriptionAdd("sa", Eq("g", 0)))
        sim.run_until(20)
        assert "sa" in mid.child_engines["a"]
        assert any(isinstance(m, M.SubscriptionAdd) for _c, m in root.received)


class TestNackHandling:
    def test_cache_answers_without_upstream(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Everything())
        mid.child_engines["b"].add("sb", Everything())
        root.send_to_child("mid", knowledge(d=[ev(5)], s=[(1, 4), (6, 10)]))
        sim.run_until(20)
        root.received.clear()
        a.received.clear()
        a.send_up(M.Nack("P1", [(1, 10)]))
        sim.run_until(50)
        assert [e.timestamp for e in a.events()] == [5]
        assert not any(isinstance(m, M.Nack) for _c, m in root.received)
        assert mid.cache_hits == 1

    def test_cache_miss_forwards_upstream(self, env):
        sim, root, mid, a, b = env
        a.send_up(M.Nack("P1", [(100, 110)]))
        sim.run_until(50)
        nacks = [m for _c, m in root.received if isinstance(m, M.Nack)]
        assert nacks and nacks[0].ranges == [(100, 110)]

    def test_consolidation_suppresses_duplicate_nacks(self, env):
        sim, root, mid, a, b = env
        a.send_up(M.Nack("P1", [(100, 110)]))
        sim.run_until(20)
        b.send_up(M.Nack("P1", [(100, 110)]))
        sim.run_until(50)
        nacks = [m for _c, m in root.received if isinstance(m, M.Nack)]
        assert len(nacks) == 1

    def test_reply_routed_to_all_interested_children(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Everything())
        mid.child_engines["b"].add("sb", Everything())
        # Advance head past 110 so the reply counts as old knowledge.
        root.send_to_child("mid", knowledge(s=[(111, 200)]))
        sim.run_until(10)
        a.send_up(M.Nack("P1", [(100, 110)]))
        b.send_up(M.Nack("P1", [(100, 110)]))
        sim.run_until(30)
        a.received.clear()
        b.received.clear()
        root.send_to_child("mid", knowledge(d=[ev(105)], s=[(100, 104), (106, 110)]))
        sim.run_until(60)
        assert [e.timestamp for e in a.events()] == [105]
        assert [e.timestamp for e in b.events()] == [105]

    def test_reply_not_routed_to_uninterested_child(self, env):
        sim, root, mid, a, b = env
        mid.child_engines["a"].add("sa", Everything())
        mid.child_engines["b"].add("sb", Everything())
        root.send_to_child("mid", knowledge(s=[(111, 200)]))
        sim.run_until(10)
        a.send_up(M.Nack("P1", [(100, 110)]))
        sim.run_until(30)
        b.received.clear()
        root.send_to_child("mid", knowledge(d=[ev(105)], s=[(100, 104), (106, 110)]))
        sim.run_until(60)
        assert b.events() == []


class TestRelease:
    def test_aggregates_minimum_across_children(self, env):
        sim, root, mid, a, b = env
        mid.register_release_child("P1", "a")
        mid.register_release_child("P1", "b")
        a.send_up(M.ReleaseUpdate("P1", 50, 80))
        sim.run_until(20)
        # Only one child reported: nothing forwarded yet.
        assert not any(isinstance(m, M.ReleaseUpdate) for _c, m in root.received)
        b.send_up(M.ReleaseUpdate("P1", 30, 90))
        sim.run_until(40)
        ups = [m for _c, m in root.received if isinstance(m, M.ReleaseUpdate)]
        assert ups and (ups[-1].released, ups[-1].latest_delivered) == (30, 80)

    def test_duplicate_aggregate_not_resent(self, env):
        sim, root, mid, a, b = env
        mid.register_release_child("P1", "a")
        mid.register_release_child("P1", "b")
        a.send_up(M.ReleaseUpdate("P1", 50, 80))
        b.send_up(M.ReleaseUpdate("P1", 30, 90))
        sim.run_until(20)
        count = len([m for _c, m in root.received if isinstance(m, M.ReleaseUpdate)])
        a.send_up(M.ReleaseUpdate("P1", 50, 80))  # unchanged
        sim.run_until(40)
        count2 = len([m for _c, m in root.received if isinstance(m, M.ReleaseUpdate)])
        assert count2 == count


class TestCacheBound:
    def test_cache_trimmed_to_span(self):
        sim = Scheduler()
        root = FakeRoot(sim)
        mid = IntermediateBroker(sim, "mid", cache_span_ms=100)
        leaf = FakeLeaf(sim, "a")
        Broker.connect(root, mid)
        Broker.connect(mid, leaf)
        mid.child_engines["a"].add("sa", Everything())
        root.send_to_child("mid", knowledge(d=[ev(50)], s=[(1, 49)]))
        sim.run_until(10)
        root.send_to_child("mid", knowledge(d=[ev(500)], s=[(51, 499)]))
        sim.run_until(20)
        relay = mid._relay("P1")
        # Old event fell out of the bounded cache.
        assert relay.cache.event_at(50) is None
        assert relay.cache.event_at(500) is not None
