"""Dynamic topology: supervised join, drain/leave and reparenting.

The overlay mutates while publishing continues; durable subscribers
must keep exactly-once delivery through every mutation.  These tests
drive the wiring layer (``broker.topology``) and the control plane
(``sim.supervisor``) directly on small overlays.
"""

import pytest

from repro import (
    DurableSubscriber,
    Everything,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_star,
)
from repro.broker.topology import (
    attach_intermediate,
    attach_shb,
    detach_broker,
    reparent_broker,
)
from repro.sim.supervisor import Supervisor, least_loaded_policy
from repro.util.errors import ConfigurationError


def _publisher(sim, overlay, rate=100.0):
    pub = PeriodicPublisher(sim, overlay.phb, overlay.pubend_names[0], rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return pub


def _subscriber(sim, name, shb, predicate=None):
    sub = DurableSubscriber(
        sim, name, Node(sim, f"m-{name}"), predicate or Everything(),
        record_events=True, connect_retry_ms=400.0,
    )
    sub.connect(shb)
    return sub


class TestJoin:
    def test_joined_shb_reaches_steady_state(self):
        """A mid-run SHB join delivers the post-join stream in full."""
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        pub = _publisher(sim, overlay)
        sim.run_until(1_000.0)

        supervisor = Supervisor(overlay)
        joiner = supervisor.join_shb("late-shb")
        assert joiner in overlay.shbs
        joined_at = sim.now

        sub = _subscriber(sim, "late-sub", joiner)
        sim.run_until(3_000.0)
        pub.stop()
        sim.run_until(5_000.0)

        assert sub.connected
        # Everything published after the join (plus settling margin)
        # must arrive; the joiner owes no pre-join history.
        timestamps = [int(eid.split(":")[1]) for eid in sub.received_event_ids]
        assert any(t > joined_at + 200 for t in timestamps), \
            "no post-join events delivered"
        assert timestamps == sorted(timestamps)

    def test_join_fast_forwards_past_history(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 1)
        pub = _publisher(sim, overlay)
        sim.run_until(2_000.0)
        supervisor = Supervisor(overlay)
        joiner = supervisor.join_shb("ff-shb")
        # Fast-forward pins the constream cursor at the dissemination
        # point: the joiner never nacks the entire past.
        assert joiner.constreams["P1"].delivered_cursor >= 1_500
        pub.stop()

    def test_join_intermediate_is_childless(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 1)
        supervisor = Supervisor(overlay)
        mid = supervisor.join_intermediate("late-mid")
        assert mid in overlay.intermediates
        assert mid.child_names == []


class TestDetach:
    def test_detach_refuses_populated_shb(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        shb = overlay.shbs[0]
        _subscriber(sim, "s1", shb)
        sim.run_until(200.0)
        with pytest.raises(ConfigurationError):
            detach_broker(overlay, shb)

    def test_detach_moves_broker_to_retired(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        shb = overlay.shbs[1]
        detach_broker(overlay, shb)
        assert shb not in overlay.shbs
        assert shb in overlay.retired
        assert shb.name not in overlay.phb.child_names

    def test_reparent_under_new_intermediate(self):
        """An SHB hops under a freshly joined intermediate and keeps
        delivering (cold filter union passes knowledge unfiltered until
        the epoch sync warms it)."""
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 1)
        shb = overlay.shbs[0]
        sub = _subscriber(sim, "rp-sub", shb)
        pub = _publisher(sim, overlay)
        sim.run_until(1_000.0)

        mid = attach_intermediate(overlay, "mid-late")
        reparent_broker(overlay, shb, mid)
        sim.run_until(3_000.0)
        pub.stop()
        sim.run_until(6_000.0)

        assert overlay.parent_of(shb) is mid
        assert sub.stats.events == pub.published
        assert sub.duplicate_events == 0


class TestDrain:
    def test_drain_migrates_all_and_detaches(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        source, dest = overlay.shbs
        subs = [
            _subscriber(sim, f"d{i}", source, In("group", [i % 4]))
            for i in range(3)
        ]
        pub = _publisher(sim, overlay)
        sim.run_until(1_000.0)

        supervisor = Supervisor(overlay)
        handle = supervisor.drain_shb(source, dest)

        # Redirect-aware reconnection: drained clients follow the
        # ConnectRefused redirect to the destination.
        def _rehome() -> None:
            for sub in subs:
                if sub.connected:
                    continue
                if sub.last_refusal is not None:
                    sub.last_refusal = None
                    sub.connect(dest)

        rehome = sim.every(250.0, _rehome)
        sim.run_until(8_000.0)
        pub.stop()
        sim.run_until(12_000.0)
        rehome.cancel()

        assert handle.done and handle.detached
        assert source in overlay.retired
        assert len(source.registry) == 0
        for i, sub in enumerate(subs):
            assert sub.connected
            expected = sum(1 for t in range(1, pub.published + 1) if t % 4 == i % 4)
            assert sub.stats.events == expected, sub.sub_id
            assert sub.duplicate_events == 0

    def test_draining_shb_refuses_new_subscriptions(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        source, dest = overlay.shbs
        source.begin_drain()
        sub = _subscriber(sim, "newcomer", source)
        sim.run_until(300.0)
        assert not sub.connected
        assert sub.last_refusal is not None
        assert sub.last_refusal[0] == "draining"

    def test_drain_into_itself_rejected(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        supervisor = Supervisor(overlay)
        with pytest.raises(ConfigurationError):
            supervisor.drain_shb(overlay.shbs[0], overlay.shbs[0])

    def test_detach_waits_for_grace(self):
        """The drained broker keeps reporting for detach_grace_ms after
        its last row drops, covering the handoff release pins."""
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        source, dest = overlay.shbs
        _subscriber(sim, "g1", source)
        sim.run_until(500.0)
        supervisor = Supervisor(overlay, detach_grace_ms=2_000.0)
        handle = supervisor.drain_shb(source, dest)
        emptied_at = None
        detached_at = None
        deadline = sim.now + 12_000.0
        while sim.now < deadline and detached_at is None:
            sim.run_until(sim.now + 25.0)
            if emptied_at is None and len(source.registry) == 0:
                emptied_at = sim.now
            if handle.detached:
                detached_at = sim.now
        assert detached_at is not None
        assert emptied_at is not None
        assert detached_at - emptied_at >= 1_800.0


class TestPlacement:
    def test_least_loaded_policy_balances(self):
        moves = least_loaded_policy({
            "a": ["s1", "s2", "s3", "s4"],
            "b": [],
            "c": ["s5"],
        })
        loads = {"a": 4, "b": 0, "c": 1}
        for sub_id, src, dst in moves:
            loads[src] -= 1
            loads[dst] += 1
        assert max(loads.values()) - min(loads.values()) <= 1

    def test_least_loaded_policy_noop_when_even(self):
        assert least_loaded_policy({"a": ["s1"], "b": ["s2"]}) == []

    def test_rebalance_applies_policy(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], 2)
        hot, cold = overlay.shbs
        subs = [_subscriber(sim, f"rb{i}", hot, In("group", [i % 4]))
                for i in range(4)]
        pub = _publisher(sim, overlay)
        sim.run_until(1_000.0)

        supervisor = Supervisor(overlay)
        handles = supervisor.rebalance()
        assert handles, "skewed placement should plan moves"

        def _rehome() -> None:
            for sub in subs:
                if sub.connected or sub.last_refusal is None:
                    continue
                _reason, redirect = sub.last_refusal
                sub.last_refusal = None
                target = next(
                    (s for s in overlay.shbs if s.name == redirect), None)
                if target is not None:
                    sub.connect(target)
                else:
                    sub.connect(hot)

        rehome = sim.every(250.0, _rehome)
        sim.run_until(6_000.0)
        pub.stop()
        sim.run_until(10_000.0)
        rehome.cancel()

        assert all(h.done for h in handles)
        placement = supervisor.placement()
        counts = [len(v) for v in placement.values()]
        assert max(counts) - min(counts) <= 1
        for i, sub in enumerate(subs):
            expected = sum(1 for t in range(1, pub.published + 1) if t % 4 == i % 4)
            assert sub.stats.events == expected, sub.sub_id
            assert sub.duplicate_events == 0
