"""Tests for the group-commit disk model."""

import pytest

from repro.net.simtime import Scheduler
from repro.storage.disk import SimDisk


@pytest.fixture
def sim():
    return Scheduler()


def make_disk(sim, interval=10.0, duration=30.0, bw=1e9):
    return SimDisk(sim, "d", sync_interval_ms=interval, sync_duration_ms=duration,
                   bandwidth_bytes_per_ms=bw)


class TestGroupCommit:
    def test_write_durable_after_interval_plus_duration(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(40.0)]

    def test_writes_in_same_window_share_a_sync(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append(("a", sim.now)))
        sim.run_until(5)
        disk.write(100, lambda: done.append(("b", sim.now)))
        sim.run()
        assert [d[0] for d in done] == ["a", "b"]
        assert all(d[1] == pytest.approx(40.0) for d in done)
        assert disk.syncs_completed == 1

    def test_write_during_sync_joins_next_cycle(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append(("a", sim.now)))
        sim.run_until(20)  # sync in flight (started at 10, ends at 40)
        disk.write(100, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done[0][0] == "a" and done[0][1] == pytest.approx(40.0)
        # b staged at 20; next sync armed after a's completes.
        assert done[1][0] == "b"
        assert done[1][1] > 40.0

    def test_bytes_accounted(self, sim):
        disk = make_disk(sim)
        disk.write(100)
        disk.write(250)
        sim.run()
        assert disk.bytes_written == 350

    def test_bandwidth_extends_sync(self, sim):
        disk = make_disk(sim, bw=10.0)  # 10 bytes/ms
        done = []
        disk.write(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(10 + 30 + 10.0)]

    def test_callbacks_fire_in_write_order(self, sim):
        disk = make_disk(sim)
        order = []
        for i in range(5):
            disk.write(10, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_bytes_rejected(self, sim):
        with pytest.raises(ValueError):
            make_disk(sim).write(-1)


class TestCrash:
    def test_staged_writes_lost_on_crash(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append("x"))
        sim.run_until(5)
        disk.crash_reset()
        sim.run()
        assert done == []

    def test_in_flight_sync_voided_by_crash(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append("x"))
        sim.run_until(20)  # sync started at 10, would complete at 40
        disk.crash_reset()
        sim.run()
        assert done == []
        assert disk.bytes_written == 0

    def test_writes_after_crash_work(self, sim):
        disk = make_disk(sim)
        done = []
        disk.write(100, lambda: done.append("lost"))
        disk.crash_reset()
        disk.write(100, lambda: done.append("kept"))
        sim.run()
        assert done == ["kept"]
