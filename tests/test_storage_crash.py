"""Crash consistency of the storage layer under mid-sync failures.

Satellite coverage for the fault-model PR: a broker crash while a
SimDisk sync is in flight loses the staged writes (their durability
callbacks never fire, and the loss is counted), the system recovers the
durable prefix via nacks, and nothing that was never synced is ever
acknowledged durable.  The file-backed log volume's recovery truncates
a torn tail instead of raising, and accounts the truncated bytes.
"""

import struct
import zlib

import pytest

from repro.net.simtime import Scheduler
from repro.storage.disk import SimDisk
from repro.storage.logvolume import _HEADER, _MAGIC, FileBackend, LogVolume


class TestSimDiskMidSyncCrash:
    def test_staged_writes_lost_and_counted(self):
        sim = Scheduler()
        disk = SimDisk(sim, sync_interval_ms=6.0, sync_duration_ms=27.0)
        durable = []
        for i in range(3):
            disk.write(100, lambda i=i: durable.append(i))
        sim.run_until(10.0)                  # sync began (6 ms) but not done
        assert disk._sync_in_flight
        disk.write(100, lambda: durable.append("late"))  # staged behind the sync
        disk.crash_reset()
        sim.run_until(1_000.0)
        assert durable == []                 # nothing ever acked durable
        assert disk.crashes == 1
        assert disk.writes_lost_in_crash == 4
        assert disk.bytes_written == 0
        assert disk.syncs_completed == 0

    def test_completed_sync_survives_later_crash(self):
        sim = Scheduler()
        disk = SimDisk(sim, sync_interval_ms=6.0, sync_duration_ms=27.0)
        durable = []
        disk.write(100, lambda: durable.append("a"))
        sim.run_until(100.0)
        assert durable == ["a"]
        disk.write(100, lambda: durable.append("b"))
        disk.crash_reset()
        sim.run_until(200.0)
        assert durable == ["a"]              # only the unsynced write died
        assert disk.writes_lost_in_crash == 1

    def test_writes_after_recovery_sync_normally(self):
        sim = Scheduler()
        disk = SimDisk(sim)
        disk.write(10, lambda: None)
        sim.run_until(10.0)
        disk.crash_reset()
        durable = []
        disk.write(10, lambda: durable.append("post"))
        sim.run_until(100.0)
        assert durable == ["post"]
        assert disk.syncs_completed == 1


class TestPHBCrashMidSync:
    """End to end: the PHB dies while event-log writes are in flight."""

    def _overlay(self):
        from repro.broker.topology import build_two_broker
        from repro.client.subscriber import DurableSubscriber
        from repro.matching.predicates import Everything
        from repro.net.node import Node

        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        # A huge ack interval keeps release from ever advancing, so the
        # PHB log is never chopped and stays usable as ground truth.
        sub = DurableSubscriber(sim, "s1", Node(sim, "m1"), Everything(),
                                record_events=True, ack_interval_ms=10**9)
        sub.connect(overlay.shbs[0])
        return sim, overlay, sub

    def test_staged_events_recovered_only_if_durable(self):
        sim, overlay, sub = self._overlay()
        phb = overlay.phb
        for i in range(20):
            sim.at(100.0 + i * 10.0, phb.publish, "P1", {"group": 0, "i": i})
        sim.run_until(290.0)                 # mid-stream: some synced, some not
        staged_now = len(phb.disk._staged) + phb.disk._inflight_writes
        assert staged_now > 0                # the crash really is mid-sync
        phb.fail_for(500.0)
        sim.run_until(5_000.0)

        log_ids = {e.event_id for e in phb.pubends["P1"].log.read_range(0, 2**60)}
        lost = phb.pubends["P1"].events_lost_in_crash
        assert phb.disk.writes_lost_in_crash > 0
        assert lost > 0
        # Everything durable before (or published after) the crash is
        # delivered exactly once, via the SHB's nack-driven recovery...
        assert sub.received_event_id_set == log_ids
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        # ...and the lost events are really absent, not resurrected.
        # (Work still queued on the PHB's CPU at crash time dies too,
        # before the pubend ever saw it, so this is an upper bound.)
        assert len(log_ids) <= 20 - lost


class TestFileBackendTornTail:
    def _volume_with_records(self, path, n=5):
        volume = LogVolume.at_path(str(path), fsync=False)
        stream = volume.stream("s")
        for i in range(n):
            stream.append(f"record-{i}".encode())
        volume.flush()
        volume.close()

    def test_torn_payload_truncated_and_counted(self, tmp_path):
        path = tmp_path / "vol.log"
        self._volume_with_records(path)
        whole = path.read_bytes()
        path.write_bytes(whole[:-4])         # tear the last payload
        backend = FileBackend(str(path), fsync=False)
        assert backend.torn_bytes_truncated > 0
        volume = LogVolume(backend)
        stream = volume.stream("s")
        assert stream.next_index == 4        # the torn record is gone
        assert [stream.read(i) for i in range(4)] == [
            f"record-{i}".encode() for i in range(4)
        ]
        # The file really was truncated: reopening sees a clean log.
        volume.close()
        backend2 = FileBackend(str(path), fsync=False)
        assert backend2.torn_bytes_truncated == 0
        backend2.close()

    def test_corrupt_crc_tail_truncated(self, tmp_path):
        path = tmp_path / "vol.log"
        self._volume_with_records(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF                     # flip a payload byte: CRC fails
        path.write_bytes(bytes(data))
        backend = FileBackend(str(path), fsync=False)
        assert backend.torn_bytes_truncated > 0
        assert backend.recovered_next_index(0) == 4
        backend.close()

    def test_appends_after_recovery_reuse_the_tail(self, tmp_path):
        path = tmp_path / "vol.log"
        self._volume_with_records(path)
        whole = path.read_bytes()
        # Tear mid-header as a short write would.
        path.write_bytes(whole[: len(whole) - len(whole) % 7 - 3])
        volume = LogVolume.at_path(str(path), fsync=False)
        stream = volume.stream("s")
        recovered = stream.next_index
        idx = stream.append(b"after-crash")
        assert idx == recovered
        assert stream.read(idx) == b"after-crash"
        volume.close()

    def test_intact_volume_truncates_nothing(self, tmp_path):
        path = tmp_path / "vol.log"
        self._volume_with_records(path)
        backend = FileBackend(str(path), fsync=False)
        assert backend.torn_bytes_truncated == 0
        backend.close()
