"""Model-based property tests for the interval and tick-map layers.

Both structures are compact encodings of a simple mathematical object —
an :class:`IntervalSet` is a set of integers, a :class:`TickMap` is a
total function from timestamps to tick kinds.  Each test drives the
real implementation and a naive model (a Python ``set`` / ``dict``)
through the same randomized operation sequence and checks they agree
after every step.  Randomness comes from an explicitly seeded
``random.Random`` so failures replay exactly; the seeds are part of the
test matrix, not hidden state.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

from repro.core.events import Event
from repro.core.tickmap import TickMap
from repro.core.ticks import Tick
from repro.util.intervals import IntervalSet, coalesce_ranges

SEEDS = [7, 42, 1001]
UNIVERSE = 120  # ticks 0..119; small enough that sets stay cheap


def _ranges_of(model: Set[int]) -> List[Tuple[int, int]]:
    """The normal-form interval list a set of ints must encode to."""
    out: List[Tuple[int, int]] = []
    for t in sorted(model):
        if out and t == out[-1][1] + 1:
            out[-1] = (out[-1][0], t)
        else:
            out.append((t, t))
    return out


def _random_span(rng: random.Random) -> Tuple[int, int]:
    start = rng.randrange(UNIVERSE)
    return start, min(UNIVERSE - 1, start + rng.randrange(12))


def _check_normal_form(s: IntervalSet) -> None:
    ivs = s.as_tuples()
    for (a0, a1), (b0, b1) in zip(ivs, ivs[1:]):
        assert a0 <= a1 and b0 <= b1
        assert b0 > a1 + 1, f"overlapping/adjacent intervals {ivs}"


@pytest.mark.parametrize("seed", SEEDS)
def test_interval_set_matches_set_model(seed):
    rng = random.Random(seed)
    real, model = IntervalSet(), set()
    for step in range(400):
        op = rng.random()
        if op < 0.40:
            a, b = _random_span(rng)
            real.add(a, b)
            model.update(range(a, b + 1))
        elif op < 0.60:
            a, b = _random_span(rng)
            real.remove(a, b)
            model.difference_update(range(a, b + 1))
        elif op < 0.75:
            spans = [_random_span(rng) for _ in range(rng.randrange(1, 6))]
            other = IntervalSet(spans)
            if rng.random() < 0.5:
                real.update(other)
                for a, b in spans:
                    model.update(range(a, b + 1))
            else:
                real.difference_update(other)
                for a, b in spans:
                    model.difference_update(range(a, b + 1))
        elif op < 0.85:
            t = rng.randrange(UNIVERSE)
            real.chop_below(t)
            model = {x for x in model if x >= t}
        else:
            # Non-mutating algebra against a random second operand.
            spans = [_random_span(rng) for _ in range(rng.randrange(1, 5))]
            other = IntervalSet(spans)
            other_model = set()
            for a, b in spans:
                other_model.update(range(a, b + 1))
            assert set(real.intersection(other).ticks()) == model & other_model
            assert set(real.union(other).ticks()) == model | other_model
            assert set(real.difference(other).ticks()) == model - other_model

        # Full-state agreement after every mutation.
        assert real.as_tuples() == _ranges_of(model), f"diverged at step {step}"
        assert real.tick_count() == len(model)
        _check_normal_form(real)
        probe = rng.randrange(UNIVERSE)
        assert (probe in real) == (probe in model)
        a, b = _random_span(rng)
        assert set(real.intersect_span(a, b).ticks()) == {
            x for x in model if a <= x <= b
        }
        assert set(real.complement_within(a, b).ticks()) == {
            x for x in range(a, b + 1) if x not in model
        }


@pytest.mark.parametrize("seed", SEEDS)
def test_coalesce_ranges_matches_set_model(seed):
    rng = random.Random(seed)
    for _ in range(200):
        spans = [_random_span(rng) for _ in range(rng.randrange(0, 10))]
        merged = coalesce_ranges(spans)
        covered = set()
        for a, b in spans:
            covered.update(range(a, b + 1))
        assert merged == _ranges_of(covered)


def test_coalesce_ranges_rejects_empty_range():
    with pytest.raises(ValueError):
        coalesce_ranges([(5, 3)])


def _model_kind(t: int, lost_below: int, d: Dict[int, Event], s: Set[int]) -> Tick:
    if t < lost_below:
        return Tick.L
    if t in d:
        return Tick.D
    if t in s:
        return Tick.S
    return Tick.Q


@pytest.mark.parametrize("seed", SEEDS)
def test_tickmap_matches_dict_model(seed):
    rng = random.Random(seed)
    real = TickMap()
    lost_below = 0
    d: Dict[int, Event] = {}
    s: Set[int] = set()
    for step in range(300):
        op = rng.random()
        if op < 0.40:
            t = rng.randrange(UNIVERSE)
            ev = Event("P", t, {"n": t})
            real.set_d(t, ev)
            if t >= lost_below and t not in d:
                d[t] = ev
                s.discard(t)
        elif op < 0.80:
            a, b = _random_span(rng)
            real.set_s(a, b)
            for t in range(max(a, lost_below), b + 1):
                if t not in d:
                    s.add(t)
        else:
            t = rng.randrange(UNIVERSE)
            real.set_lost_below(t)
            if t > lost_below:
                lost_below = t
                d = {k: v for k, v in d.items() if k >= t}
                s = {k for k in s if k >= t}

        # Pointwise agreement on sampled ticks plus the L boundary.
        assert real.lost_below == lost_below
        for t in [rng.randrange(UNIVERSE) for _ in range(8)] + [
            max(0, lost_below - 1), lost_below
        ]:
            assert real.kind(t) is _model_kind(t, lost_below, d, s), (
                f"kind({t}) diverged at step {step}"
            )
        # Doubt horizon: highest h >= base with no Q in (base, h].
        base = rng.randrange(UNIVERSE)
        h = base
        while h + 1 < UNIVERSE * 2 and _model_kind(
            h + 1, lost_below, d, s
        ) is not Tick.Q:
            h += 1
        assert real.doubt_horizon(base) == h
        # unknown_within == the model's Q ticks (at/above the L prefix).
        a, b = _random_span(rng)
        want_q = {
            t for t in range(max(a, lost_below), b + 1)
            if _model_kind(t, lost_below, d, s) is Tick.Q
        }
        assert set(real.unknown_within(a, b).ticks()) == want_q


@pytest.mark.parametrize("seed", SEEDS)
def test_tickmap_runs_and_classify_reconstruct_model(seed):
    """``runs_between``/``classify_within`` partition any window exactly."""
    rng = random.Random(seed)
    real = TickMap()
    lost_below = 0
    d: Dict[int, Event] = {}
    s: Set[int] = set()
    for _ in range(120):
        roll = rng.random()
        if roll < 0.4:
            t = rng.randrange(UNIVERSE)
            ev = Event("P", t, {})
            real.set_d(t, ev)
            if t >= lost_below and t not in d:
                d[t] = ev
                s.discard(t)
        elif roll < 0.85:
            a, b = _random_span(rng)
            real.set_s(a, b)
            for t in range(max(a, lost_below), b + 1):
                if t not in d:
                    s.add(t)
        else:
            t = rng.randrange(UNIVERSE // 2)
            real.set_lost_below(t)
            if t > lost_below:
                lost_below = t
                d = {k: v for k, v in d.items() if k >= t}
                s = {k for k in s if k >= t}

        a, b = _random_span(rng)
        runs = list(real.runs_between(a, b))
        # Runs tile [a, b] without gaps or overlap, maximal per kind.
        cursor = a
        for run in runs:
            assert run.start == cursor
            assert run.end >= run.start
            kinds = {
                _model_kind(t, lost_below, d, s)
                for t in range(run.start, run.end + 1)
            }
            assert kinds == {run.kind}
            if run.kind is Tick.D:
                assert run.start == run.end
                assert run.event is d[run.start]
            cursor = run.end + 1
        assert cursor == b + 1
        for prev, nxt in zip(runs, runs[1:]):
            if prev.kind is not Tick.D and nxt.kind is not Tick.D:
                assert prev.kind is not nxt.kind, "non-maximal adjacent runs"

        # classify_within buckets the same partition into message shape.
        d_events, s_ranges, l_ranges, q_set = real.classify_within(a, b)
        assert [e.timestamp for e in d_events] == sorted(
            t for t in d if a <= t <= b
        )
        for ranges in (s_ranges, l_ranges):
            assert ranges == coalesce_ranges(ranges), "ranges not coalesced"
        s_ticks = {t for a0, b0 in s_ranges for t in range(a0, b0 + 1)}
        l_ticks = {t for a0, b0 in l_ranges for t in range(a0, b0 + 1)}
        assert s_ticks == {
            t for t in range(a, b + 1)
            if _model_kind(t, lost_below, d, s) is Tick.S
        }
        assert l_ticks == {t for t in range(a, b + 1) if t < lost_below}
        assert set(q_set.ticks()) == {
            t for t in range(a, b + 1)
            if _model_kind(t, lost_below, d, s) is Tick.Q
        }
