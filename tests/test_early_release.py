"""Integration tests for the early-release model (gap honesty).

With a ``maxRetain`` policy, a long-disconnected subscriber may lose
events — but never silently: every tick of the released region it
missed is covered by an explicit gap message, well-behaved subscribers
never see a gap, and the PHB's log stays bounded regardless of the
misbehaving subscriber.
"""

from repro import (
    DurableSubscriber,
    Everything,
    MaxRetainPolicy,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.util.intervals import IntervalSet


def build_world(sim, max_retain_ms=2_000):
    # The SHB's volatile event cache can legitimately outlive the PHB's
    # retention and satisfy a late subscriber without gaps; bound it
    # below the disconnection length so these tests exercise the
    # genuine information-lost-everywhere path.
    overlay = build_two_broker(sim, ["P1"], policy=MaxRetainPolicy(max_retain_ms),
                               event_cache_span_ms=max_retain_ms)
    machine = Node(sim, "clients")
    good = DurableSubscriber(sim, "good", machine, Everything(), record_events=True)
    bad = DurableSubscriber(sim, "bad", machine, Everything(), record_events=True)
    good.connect(overlay.shbs[0])
    bad.connect(overlay.shbs[0])
    pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return overlay, good, bad, pub


class TestEarlyRelease:
    def test_log_bounded_despite_disconnected_subscriber(self):
        sim = Scheduler()
        overlay, good, bad, pub = build_world(sim)
        sim.run_until(2_000)
        bad.disconnect()
        sim.run_until(20_000)
        log = overlay.phb.pubends["P1"].log
        # Without early release the log would hold ~1800 events by now;
        # maxRetain=2s caps it near 200.
        assert log.live_event_count < 400
        assert overlay.phb.pubends["P1"].lost_below > 15_000

    def test_well_behaved_subscriber_never_gets_gaps(self):
        sim = Scheduler()
        overlay, good, bad, pub = build_world(sim)
        sim.run_until(2_000)
        bad.disconnect()
        sim.run_until(10_000)
        bad.connect(overlay.shbs[0])
        sim.run_until(15_000)
        pub.stop()
        sim.run_until(17_000)
        assert good.stats.gaps == 0
        assert good.stats.events == pub.published
        assert good.stats.order_violations == 0

    def test_gap_honesty_for_late_subscriber(self):
        """Every matching event is either delivered once or covered by a
        gap range — never silently missing, never duplicated."""
        sim = Scheduler()
        overlay, good, bad, pub = build_world(sim)
        sim.run_until(2_000)
        bad.disconnect()
        sim.run_until(10_000)
        bad.connect(overlay.shbs[0])
        sim.run_until(16_000)
        pub.stop()
        sim.run_until(20_000)

        assert bad.duplicate_events == 0
        assert bad.stats.order_violations == 0
        assert bad.stats.gaps > 0

        delivered = {int(e.split(":")[1]) for e in bad.received_event_ids}
        gap_cover = IntervalSet()
        for _p, start, end in bad.stats.gap_ranges:
            gap_cover.add(start, end)
        # Every event the good subscriber saw was either delivered to
        # the bad one or falls inside one of its gap ranges.
        for event_id in good.received_event_ids:
            t = int(event_id.split(":")[1])
            assert t in delivered or t in gap_cover, f"event {t} silently lost"
        # And no event was both delivered and inside a gap (the gap
        # range starts after the last delivered/acked position).
        for t in delivered:
            assert t not in gap_cover

    def test_gap_only_for_released_region(self):
        sim = Scheduler()
        overlay, good, bad, pub = build_world(sim)
        sim.run_until(2_000)
        bad.disconnect()
        sim.run_until(10_000)
        lost_below = overlay.phb.pubends["P1"].lost_below
        bad.connect(overlay.shbs[0])
        sim.run_until(16_000)
        pub.stop()
        sim.run_until(20_000)
        # Gap ranges never extend beyond what was actually released.
        final_lost = overlay.phb.pubends["P1"].lost_below
        for _p, start, end in bad.stats.gap_ranges:
            assert end < final_lost

    def test_short_disconnect_within_retain_window_sees_no_gap(self):
        sim = Scheduler()
        overlay, good, bad, pub = build_world(sim, max_retain_ms=5_000)
        sim.run_until(2_000)
        bad.disconnect()
        sim.run_until(4_000)   # 2s < maxRetain 5s
        bad.connect(overlay.shbs[0])
        sim.run_until(10_000)
        pub.stop()
        sim.run_until(12_000)
        assert bad.stats.gaps == 0
        assert bad.stats.events == pub.published
