"""Tests for the subscriber hosting broker, driven through real overlays."""

import pytest

from repro import (
    DurableSubscriber,
    Eq,
    Everything,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.core import messages as M


@pytest.fixture
def env():
    sim = Scheduler()
    overlay = build_two_broker(sim, pubends=["P1", "P2"])
    machine = Node(sim, "client")
    return sim, overlay, machine


def make_sub(sim, machine, sub_id, predicate, **kw):
    return DurableSubscriber(sim, sub_id, machine, predicate, **kw)


def start_pub(sim, phb, pubend="P1", rate=100, group_mod=4):
    pub = PeriodicPublisher(sim, phb, pubend, rate,
                            attribute_fn=lambda i: {"group": i % group_mod})
    pub.start()
    return pub


class TestConnect:
    def test_first_connect_requires_predicate(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.predicate = None
        with pytest.raises(Exception):
            sub.connect(shb)
            sim.run_until(10)

    def test_new_subscriber_is_non_catchup(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        sim.run_until(10)
        assert shb.active_catchup_count == 0
        assert not shb.in_catchup("s1", "P1")
        assert shb.connected_count == 1

    def test_initial_ct_at_delivery_cursor(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        start_pub(sim, overlay.phb)
        sim.run_until(2_000)
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        sim.run_until(2_050)
        # The assigned CT is near the cursor: no historical delivery.
        assert sub.ct.get("P1") >= 1_500
        assert sub.stats.events <= 10

    def test_subscription_registered_durably(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Eq("group", 1))
        sub.connect(shb)
        sim.run_until(300)  # past a commit interval
        assert "s1" in shb.registry
        assert shb.registry.get("s1").predicate == Eq("group", 1)

    def test_filter_propagated_upstream(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Eq("group", 1))
        sub.connect(shb)
        sim.run_until(10)
        assert f"{shb.name}/s1" in overlay.phb.child_engines[shb.name]

    def test_unsubscribe_removes_everything(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Eq("group", 1))
        sub.connect(shb)
        sim.run_until(10)
        shb.unsubscribe("s1")
        sim.run_until(20)
        assert "s1" not in shb.registry
        assert f"{shb.name}/s1" not in overlay.phb.child_engines[shb.name]


class TestDeliveryAndAcks:
    def test_exactly_once_steady_state(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", In("group", [0, 1]), record_events=True)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb, rate=100)
        sim.run_until(5_000)
        pub.stop()
        sim.run_until(6_000)
        assert sub.stats.events == pub.published // 2
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_acks_advance_released(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        start_pub(sim, overlay.phb)
        sim.run_until(3_000)
        assert shb.released("P1") > 1_000
        assert shb.registry.get("s1").released_for("P1") > 1_000

    def test_release_trims_phb_log_and_pfs(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        start_pub(sim, overlay.phb)
        sim.run_until(5_000)
        pubend = overlay.phb.pubends["P1"]
        # Acked prefix released: log retains only the recent window.
        assert pubend.lost_below > 3_000
        assert pubend.log.live_event_count < 300
        state = shb.pfs._pubends["P1"]
        assert state.chopped_from_ts > 3_000

    def test_two_pubends_deliver_independently(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything(), record_events=True)
        sub.connect(shb)
        p1 = start_pub(sim, overlay.phb, "P1", rate=50)
        p2 = start_pub(sim, overlay.phb, "P2", rate=20)
        sim.run_until(4_000)
        p1.stop(); p2.stop()
        sim.run_until(5_000)
        assert sub.stats.events == p1.published + p2.published
        assert sub.stats.last_event_ts.keys() == {"P1", "P2"}


class TestDisconnectReconnect:
    def test_disconnect_enters_catchup_state(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        start_pub(sim, overlay.phb)
        sim.run_until(1_000)
        sub.disconnect()
        sim.run_until(1_010)
        assert shb.in_catchup("s1", "P1")  # disconnected => catchup
        assert shb.connected_count == 0

    def test_reconnect_recovers_missed_events(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything(), record_events=True)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb)
        sim.run_until(2_000)
        sub.disconnect()
        sim.run_until(4_000)
        sub.connect(shb)
        sim.run_until(8_000)
        pub.stop()
        sim.run_until(9_000)
        assert sub.stats.events == pub.published
        assert sub.duplicate_events == 0
        # One catchup stream per pubend (the overlay has P1 and P2).
        assert len(shb.catchup_durations_ms) == 2

    def test_client_crash_reconnect_with_stale_ct_duplicates_filtered(self, env):
        """A client that loses recent CT state re-receives only what it
        had not committed (commit_every > 1)."""
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything(), record_events=True,
                       commit_every=50)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb)
        sim.run_until(2_000)
        sub.crash()  # rolls CT back to last committed snapshot
        before = sub.stats.events
        sim.run_until(3_000)
        sub.connect(shb)
        sim.run_until(6_000)
        pub.stop()
        sim.run_until(7_000)
        # Everything delivered; duplicates only for the uncommitted tail.
        assert len(sub.received_event_id_set) == pub.published
        assert sub.duplicate_events <= 50

    def test_graceful_disconnect_is_clean(self, env):
        sim, overlay, machine = env
        shb = overlay.shbs[0]
        sub = make_sub(sim, machine, "s1", Everything())
        sub.connect(shb)
        sim.run_until(100)
        sub.disconnect()
        sim.run_until(200)
        sub.connect(shb)
        sim.run_until(300)
        assert sub.connected
        assert shb.connected_count == 1
