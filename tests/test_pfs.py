"""Tests for the Persistent Filtering Subsystem.

The reference semantics (Section 4.2): the PFS stores, per pubend, one
record per timestamp that is Q for at least one subscriber; a batch
read for subscriber s after timestamp a returns the oldest
``buffer_qs`` Q ticks in ``(a, lastTimestamp]`` with everything else in
the covered span S.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.simtime import Scheduler
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.disk import SimDisk
from repro.storage.logvolume import LogVolume
from repro.util.errors import StorageError


def make_pfs():
    return PersistentFilteringSubsystem()


class TestWrite:
    def test_write_returns_record_size(self):
        pfs = make_pfs()
        assert pfs.write("P1", 10, [1, 2, 3]) == 8 + 16 * 3
        assert pfs.bytes_written == 56

    def test_write_below_chop_rejected(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        pfs.chop_below("P1", 15)
        with pytest.raises(StorageError):
            pfs.write("P1", 12, [1])

    def test_replay_write_is_idempotent(self):
        """Post-crash constream replay re-writes known records."""
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        pfs.write("P1", 20, [1])
        fired = []
        assert pfs.write("P1", 10, [1], on_durable=lambda: fired.append(True)) == 0
        assert fired == [True]
        assert pfs.last_timestamp("P1") == 20

    def test_empty_subscriber_list_rejected(self):
        with pytest.raises(ValueError):
            make_pfs().write("P1", 10, [])

    def test_pubends_are_independent(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        pfs.write("P2", 5, [2])  # lower timestamp fine on another pubend
        assert pfs.last_timestamp("P1") == 10
        assert pfs.last_timestamp("P2") == 5

    def test_durability_via_disk(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=5, sync_duration_ms=10)
        pfs = PersistentFilteringSubsystem(disk=disk)
        fired = []
        pfs.write("P1", 10, [1], on_durable=lambda: fired.append(sim.now))
        assert fired == []
        sim.run()
        assert len(fired) == 1


class TestReadBatch:
    def test_q_and_s_semantics(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1, 2])
        pfs.write("P1", 20, [2])
        pfs.write("P1", 30, [1])
        result = pfs.read_batch("P1", 1, after=0)
        assert result.q_ticks == [10, 30]
        assert result.covered_to == 30
        assert result.reached_last_timestamp

        result2 = pfs.read_batch("P1", 2, after=0)
        assert result2.q_ticks == [10, 20]
        assert result2.covered_to == 30  # ticks (20, 30] are S for sub 2

    def test_after_excludes_earlier_ticks(self):
        pfs = make_pfs()
        for t in (10, 20, 30):
            pfs.write("P1", t, [1])
        result = pfs.read_batch("P1", 1, after=10)
        assert result.q_ticks == [20, 30]

    def test_unknown_subscriber_reads_all_s(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        result = pfs.read_batch("P1", 99, after=0)
        assert result.q_ticks == []
        assert result.covered_to == 10

    def test_buffer_overflow_keeps_oldest(self):
        pfs = make_pfs()
        for t in range(10, 110, 10):
            pfs.write("P1", t, [1])
        result = pfs.read_batch("P1", 1, after=0, buffer_qs=4)
        assert result.q_ticks == [10, 20, 30, 40]
        assert result.covered_to == 40
        assert not result.reached_last_timestamp
        # Continue from covered_to: next oldest batch.
        result2 = pfs.read_batch("P1", 1, after=result.covered_to, buffer_qs=4)
        assert result2.q_ticks == [50, 60, 70, 80]

    def test_records_visited_counts_chain_walk(self):
        pfs = make_pfs()
        for t in range(10, 60, 10):
            pfs.write("P1", t, [1])
        result = pfs.read_batch("P1", 1, after=0)
        assert result.records_visited == 5

    def test_reads_reaching_last_statistics(self):
        pfs = make_pfs()
        for t in range(10, 110, 10):
            pfs.write("P1", t, [1])
        pfs.read_batch("P1", 1, after=0, buffer_qs=100)
        pfs.read_batch("P1", 1, after=0, buffer_qs=2)
        assert pfs.reads == 2
        assert pfs.reads_reaching_last == 1


class TestChop:
    def test_chop_discards_old_records(self):
        pfs = make_pfs()
        for t in (10, 20, 30, 40):
            pfs.write("P1", t, [1])
        assert pfs.chop_below("P1", 25) == 2
        result = pfs.read_batch("P1", 1, after=0)
        assert result.q_ticks == [30, 40]
        assert result.known_from == 25

    def test_chop_idempotent(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        pfs.chop_below("P1", 15)
        assert pfs.chop_below("P1", 15) == 0
        assert pfs.chop_below("P1", 12) == 0

    def test_backpointer_chain_stops_at_chop(self):
        pfs = make_pfs()
        for t in (10, 20, 30):
            pfs.write("P1", t, [1])
        pfs.chop_below("P1", 15)
        result = pfs.read_batch("P1", 1, after=0)
        assert result.q_ticks == [20, 30]

    def test_writes_continue_after_chop(self):
        pfs = make_pfs()
        pfs.write("P1", 10, [1])
        pfs.chop_below("P1", 15)
        pfs.write("P1", 20, [1])
        result = pfs.read_batch("P1", 1, after=15)
        assert result.q_ticks == [20]


class TestCrashRecovery:
    def test_unsynced_records_lost(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=5, sync_duration_ms=10)
        pfs = PersistentFilteringSubsystem(disk=disk)
        pfs.write("P1", 10, [1])
        sim.run()  # durable
        pfs.write("P1", 20, [1])  # staged
        disk.crash_reset()
        pfs.crash_reset()
        assert pfs.last_timestamp("P1") == 10
        result = pfs.read_batch("P1", 1, after=0)
        assert result.q_ticks == [10]

    def test_recovery_rebuilds_metadata(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=5, sync_duration_ms=10)
        pfs = PersistentFilteringSubsystem(disk=disk)
        pfs.write("P1", 10, [1, 2])
        pfs.write("P1", 20, [2])
        sim.run()
        pfs.crash_reset()
        assert pfs.last_timestamp("P1") == 20
        assert pfs.read_batch("P1", 1, after=0).q_ticks == [10]
        assert pfs.read_batch("P1", 2, after=0).q_ticks == [10, 20]
        # Writes resume seamlessly.
        pfs.write("P1", 30, [1])
        assert pfs.read_batch("P1", 1, after=0).q_ticks == [10, 30]


# ---------------------------------------------------------------------------
# Property test: PFS batch reads agree with a naive model
# ---------------------------------------------------------------------------
@given(
    st.lists(  # writes: (timestamp gap, subset of 4 subscribers)
        st.tuples(st.integers(1, 5), st.sets(st.integers(0, 3), min_size=1, max_size=4)),
        min_size=1,
        max_size=40,
    ),
    st.integers(0, 3),       # which subscriber reads
    st.integers(0, 60),      # read 'after'
    st.integers(1, 10),      # buffer size
)
@settings(max_examples=150, deadline=None)
def test_read_matches_naive_model(writes, sub, after, buffer_qs):
    pfs = make_pfs()
    t = 0
    model = []  # (timestamp, set of subs)
    for gap, subs in writes:
        t += gap
        pfs.write("P1", t, sorted(subs))
        model.append((t, subs))
    result = pfs.read_batch("P1", sub, after=after, buffer_qs=buffer_qs)
    expected_all = [ts for ts, subs in model if ts > after and sub in subs]
    expected = expected_all[:buffer_qs]
    assert result.q_ticks == expected
    if len(expected_all) <= buffer_qs:
        assert result.reached_last_timestamp
        # The covered span is (after, lastTimestamp]; when 'after' is
        # already past the last record the span is empty.
        assert result.covered_to == max(t, after)
    else:
        assert not result.reached_last_timestamp
        assert result.covered_to == expected[-1]
    # No Q tick for this subscriber hides inside the covered span.
    for ts, subs in model:
        if after < ts <= result.covered_to and sub in subs:
            assert ts in result.q_ticks


class TestReadBatchChopRace:
    """Regression: a backpointer walk crossing a concurrent chop must
    degrade to a truncated batch, not crash the catchup stream.

    The torn window between logstream.chop.pre and .post (or a recovery
    that rebuilt the index maps mid-release) can leave a live lastIndex
    entry whose chain walks into discarded records.  Everything at or
    below the break was released, so the read truncates: known_from
    rises to the oldest tick the walk can still vouch for and the SHB
    nacks the unknown span (the pubend answers L — an honest gap).
    """

    def test_walk_into_discarded_records_truncates(self):
        pfs = make_pfs()
        for t in range(1, 11):
            pfs.write("P1", t, [0])
        state = pfs._pubends["P1"]
        # Race window: backend records discarded, stream chop bound not
        # yet advanced (a crash between chop.pre and chop.post).
        state.stream._volume._backend.chop(state.stream.stream_id, 4)

        result = pfs.read_batch("P1", 0, after=0)
        assert pfs.chain_breaks == 1
        assert result.known_from == 6
        assert result.q_ticks == [6, 7, 8, 9, 10]
        assert result.covered_to == 10

    def test_stale_index_entry_without_subscriber_not_vouched(self):
        pfs = make_pfs()
        pfs.write("P1", 5, [1])
        state = pfs._pubends["P1"]
        state.last_index[0] = 0  # stale entry from an index-rebuild race

        result = pfs.read_batch("P1", 0, after=0)
        assert pfs.chain_breaks == 1
        # Tick 5 is sub 1's record: it must NOT be reported as a Q for
        # sub 0, and the batch vouches for nothing below the break.
        assert result.q_ticks == []
        assert result.known_from == 6

    def test_chain_break_mid_walk_keeps_upper_ticks(self):
        pfs = make_pfs()
        pfs.write("P1", 1, [0, 1])
        pfs.write("P1", 2, [1])
        pfs.write("P1", 3, [0, 1])
        state = pfs._pubends["P1"]
        # Sub 0's chain is 3 -> 1; discard record index 0 (tick 1) only.
        state.stream._volume._backend.chop(state.stream.stream_id, 0)

        result = pfs.read_batch("P1", 0, after=0)
        assert pfs.chain_breaks == 1
        assert result.q_ticks == [3]
        assert result.known_from == 3
