"""Tests for crash-consistent persistent tables."""

import pytest

from repro.net.simtime import Scheduler
from repro.storage.disk import SimDisk
from repro.storage.table import PersistentTable


class TestWithoutDisk:
    def test_read_your_writes(self):
        t = PersistentTable("t")
        t.put("k", 1)
        assert t.get("k") == 1

    def test_get_default(self):
        t = PersistentTable("t")
        assert t.get("missing") is None
        assert t.get("missing", 42) == 42

    def test_commit_applies_synchronously(self):
        t = PersistentTable("t")
        t.put("k", 1)
        assert t.get_committed("k") is None
        t.commit()
        assert t.get_committed("k") == 1

    def test_delete(self):
        t = PersistentTable("t")
        t.put("k", 1)
        t.commit()
        t.delete("k")
        assert t.get("k") is None
        assert t.get_committed("k") == 1
        t.commit()
        assert t.get_committed("k") is None

    def test_delete_uncommitted_put(self):
        t = PersistentTable("t")
        t.put("k", 1)
        t.delete("k")
        assert t.get("k") is None
        t.commit()
        assert t.get_committed("k") is None

    def test_items_merges_views(self):
        t = PersistentTable("t")
        t.put("a", 1)
        t.commit()
        t.put("b", 2)
        t.delete("a")
        assert dict(t.items()) == {"b": 2}

    def test_commit_returns_row_count(self):
        t = PersistentTable("t")
        t.put("a", 1)
        t.put("b", 2)
        assert t.commit() == 2
        assert t.commit() == 0

    def test_empty_commit_callback_still_fires(self):
        t = PersistentTable("t")
        fired = []
        t.commit(lambda: fired.append(True))
        assert fired == [True]


class TestWithDisk:
    @pytest.fixture
    def env(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=10, sync_duration_ms=20)
        return sim, disk, PersistentTable("t", disk)

    def test_commit_durable_after_sync(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        assert t.get_committed("k") is None
        sim.run()
        assert t.get_committed("k") == 1

    def test_crash_before_sync_loses_commit(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        sim.run_until(5)
        disk.crash_reset()
        t.crash_reset()
        sim.run()
        assert t.get_committed("k") is None
        assert t.get("k") is None  # dirty state also gone

    def test_crash_preserves_older_commit(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        sim.run_until(100)
        t.put("k", 2)
        t.commit()
        sim.run_until(101)  # second commit staged, not yet synced
        disk.crash_reset()
        t.crash_reset()
        sim.run()
        assert t.get_committed("k") == 1

    def test_pipelined_commits_apply_in_order(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        t.put("k", 2)
        t.commit()
        sim.run()
        assert t.get_committed("k") == 2
        assert t.commits == 2

    def test_crash_reset_discards_dirty(self, env):
        sim, disk, t = env
        t.put("a", 1)
        t.commit()
        sim.run()
        t.put("b", 2)
        t.crash_reset()
        assert t.get("b") is None
        assert t.get("a") == 1


class TestReadYourWritesInFlight:
    """Regression: a committed-but-unsynced batch must stay readable.

    commit() moves the dirty batch out of the dirty overlay immediately,
    but it lands in the committed view only when the covering disk sync
    completes.  get() in that window used to fall through to stale
    committed data — a transaction the caller had already committed
    vanished from its own reads.
    """

    @pytest.fixture
    def env(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=10, sync_duration_ms=20)
        return sim, disk, PersistentTable("t", disk)

    def test_get_sees_inflight_commit_before_sync(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        # The sync has not completed: the committed view is still empty,
        # but the caller's own transaction must remain visible.
        assert t.get_committed("k") is None
        assert t.get("k") == 1
        sim.run()
        assert t.get_committed("k") == 1

    def test_newer_inflight_batch_wins(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        t.put("k", 2)
        t.commit()
        assert t.get("k") == 2

    def test_dirty_overlay_wins_over_inflight(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        t.put("k", 3)  # dirty again, not yet committed
        assert t.get("k") == 3

    def test_inflight_delete_masks_committed_value(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        sim.run_until(100.0)
        assert t.get_committed("k") == 1
        t.delete("k")
        t.commit()
        # Deletion is in flight: reads must already see it gone.
        assert t.get("k") is None
        assert t.get_committed("k") == 1
        sim.run()
        assert t.get_committed("k") is None

    def test_items_include_inflight_batches(self, env):
        sim, disk, t = env
        t.put("a", 1)
        t.commit()
        sim.run_until(100.0)
        t.put("b", 2)
        t.commit()
        t.put("c", 3)
        assert dict(t.items()) == {"a": 1, "b": 2, "c": 3}

    def test_crash_removes_inflight_from_reads(self, env):
        sim, disk, t = env
        t.put("k", 1)
        t.commit()
        disk.crash_reset()
        t.crash_reset()
        sim.run()
        # The in-flight batch died with the crash; reads must agree.
        assert t.get("k") is None
