"""Tests for the consolidated stream (Section 4.1)."""

import pytest

from repro.core.constream import ConsolidatedStream
from repro.core.events import Event
from repro.core.messages import EventMessage, KnowledgeUpdate, SilenceMessage
from repro.core.subscription import SubscriptionRegistry
from repro.matching.engine import MatchingEngine
from repro.matching.predicates import Eq, Everything
from repro.net.simtime import Scheduler
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.disk import SimDisk
from repro.storage.table import PersistentTable
from repro.util.errors import ProtocolError


def ev(t, g=0):
    return Event("P1", t, {"g": g})


def upd(d=(), s=(), l=()):
    return KnowledgeUpdate(
        "P1",
        d_events=[e if isinstance(e, Event) else ev(e) for e in d],
        s_ranges=list(s),
        l_ranges=list(l),
    )


class Env:
    def __init__(self, with_disk=False):
        self.sim = Scheduler()
        disk = SimDisk(self.sim, "d", sync_interval_ms=5, sync_duration_ms=10) if with_disk else None
        self.registry = SubscriptionRegistry(PersistentTable("s"), PersistentTable("r"))
        self.engine = MatchingEngine()
        self.pfs = PersistentFilteringSubsystem(disk=disk)
        self.meta = PersistentTable("meta")
        self.delivered = []
        self.cs = ConsolidatedStream(
            "P1", self.sim, self.registry, self.engine, self.pfs, self.meta,
            deliver=lambda sid, msg: self.delivered.append((sid, msg)),
        )

    def add_sub(self, sub_id, predicate, non_catchup=True):
        sub = self.registry.create(sub_id, predicate)
        self.engine.add(sub_id, predicate)
        if non_catchup:
            self.cs.add_non_catchup(sub_id)
        return sub


class TestDelivery:
    def test_event_delivered_to_matching_non_catchup(self):
        env = Env()
        env.add_sub("s1", Eq("g", 0))
        env.add_sub("s2", Eq("g", 1))
        env.cs.accumulate(upd(d=[ev(5, g=0)], s=[(1, 4)]))
        assert [(sid, m.t) for sid, m in env.delivered] == [("s1", 5)]
        assert env.cs.latest_delivered == 5

    def test_delivery_is_in_timestamp_order(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.cs.accumulate(upd(d=[ev(8)]))
        assert env.delivered == []         # 1..7 unknown
        env.cs.accumulate(upd(d=[ev(3)], s=[(1, 2), (4, 7)]))
        ts = [m.t for _sid, m in env.delivered]
        assert ts == [3, 8]

    def test_disconnected_subscriber_not_delivered_but_pfs_logged(self):
        env = Env()
        env.add_sub("s1", Everything(), non_catchup=False)
        env.cs.accumulate(upd(d=[ev(5)], s=[(1, 4)]))
        assert env.delivered == []
        result = env.pfs.read_batch("P1", 0, after=0)
        assert result.q_ticks == [5]

    def test_pfs_records_all_matching_durables(self):
        env = Env()
        a = env.add_sub("s1", Eq("g", 0))
        b = env.add_sub("s2", Everything(), non_catchup=False)
        env.cs.accumulate(upd(d=[ev(5, g=0)], s=[(1, 4)]))
        result_a = env.pfs.read_batch("P1", a.num, after=0)
        result_b = env.pfs.read_batch("P1", b.num, after=0)
        assert result_a.q_ticks == [5]
        assert result_b.q_ticks == [5]

    def test_event_matching_nobody_writes_no_pfs_record(self):
        env = Env()
        env.add_sub("s1", Eq("g", 1))
        env.cs.accumulate(upd(d=[ev(5, g=0)], s=[(1, 4)]))
        assert env.pfs.writes == 0
        assert env.cs.latest_delivered == 5

    def test_remove_subscriber_stops_delivery(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.cs.remove_subscriber("s1")
        env.cs.accumulate(upd(d=[ev(5)], s=[(1, 4)]))
        assert env.delivered == []

    def test_l_tick_reaching_constream_is_protocol_error(self):
        env = Env()
        env.add_sub("s1", Everything())
        with pytest.raises(ProtocolError):
            env.cs.accumulate(upd(l=[(1, 5)]))

    def test_delivery_floor_suppresses_redelivery(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.cs.accumulate(upd(d=[ev(5)], s=[(1, 4)]))
        env.cs.remove_subscriber("s1")
        # Rejoin claiming CT=10: events <= 10 must not be redelivered.
        env.cs.add_non_catchup("s1", floor=10)
        env.cs.accumulate(upd(d=[ev(8), ev(12)], s=[(6, 7), (9, 11)]))
        ts = [m.t for sid, m in env.delivered if sid == "s1"]
        assert ts == [5, 12]


class TestLatestDelivered:
    def test_gated_on_pfs_durability(self):
        env = Env(with_disk=True)
        env.add_sub("s1", Everything())
        env.cs.accumulate(upd(d=[ev(5)], s=[(1, 4)]))
        # Delivered to the sub immediately...
        assert [m.t for _s, m in env.delivered] == [5]
        # ...but latestDelivered waits for the PFS sync.
        assert env.cs.latest_delivered == 4
        assert env.cs.delivered_cursor == 5
        env.sim.run_until(100)  # let the PFS sync complete
        assert env.cs.latest_delivered == 5

    def test_listener_fires_on_advance(self):
        env = Env()
        env.add_sub("s1", Everything())
        seen = []
        env.cs.on_latest_delivered(seen.append)
        env.cs.accumulate(upd(s=[(1, 9)]))
        assert seen == [9]

    def test_listener_removal(self):
        env = Env()
        seen = []
        env.cs.on_latest_delivered(seen.append)
        env.cs.remove_latest_delivered_listener(seen.append)
        env.cs.accumulate(upd(s=[(1, 9)]))
        assert seen == []

    def test_persisted_to_meta_table(self):
        env = Env()
        env.cs.accumulate(upd(s=[(1, 9)]))
        assert env.meta.get("latestDelivered:P1") == 9

    def test_resumes_from_committed_value(self):
        env = Env()
        env.cs.accumulate(upd(s=[(1, 9)]))
        env.meta.commit()
        cs2 = ConsolidatedStream(
            "P1", env.sim, env.registry, env.engine, env.pfs, env.meta,
            deliver=lambda *a: None,
        )
        assert cs2.latest_delivered == 9
        assert cs2.knowledge.consumed == 9


class TestSilence:
    def test_lagging_subscriber_gets_silence(self):
        env = Env()
        env.add_sub("s1", Eq("g", 7))  # matches nothing
        env.cs.accumulate(upd(s=[(1, 500)]))
        env.sim.run_until(200)  # silence timer fires (interval 100ms)
        silences = [m for _s, m in env.delivered if isinstance(m, SilenceMessage)]
        assert silences
        assert silences[0].t == 500

    def test_active_subscriber_gets_no_silence(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.cs.accumulate(upd(d=[ev(500)], s=[(1, 499)]))
        env.sim.run_until(200)
        silences = [m for _s, m in env.delivered if isinstance(m, SilenceMessage)]
        assert silences == []


class TestReleased:
    def test_released_is_min_of_acks_and_latest(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.add_sub("s2", Everything())
        env.cs.accumulate(upd(s=[(1, 100)]))
        env.registry.ack("s1", "P1", 80)
        env.registry.ack("s2", "P1", 60)
        assert env.cs.released == 60

    def test_released_capped_by_latest_delivered(self):
        env = Env()
        env.add_sub("s1", Everything())
        env.cs.accumulate(upd(s=[(1, 50)]))
        env.registry.ack("s1", "P1", 50)
        assert env.cs.released == 50

    def test_released_with_no_subs_is_latest(self):
        env = Env()
        env.cs.accumulate(upd(s=[(1, 42)]))
        assert env.cs.released == 42

    def test_committed_latest_delivered(self):
        env = Env()
        env.cs.accumulate(upd(s=[(1, 9)]))
        assert env.cs.committed_latest_delivered == 0
        env.meta.commit()
        assert env.cs.committed_latest_delivered == 9


class BatchEnv(Env):
    """Env with the batched fan-out path enabled (``deliver_batch``).

    Batched deliveries are flattened into ``delivered`` in arrival
    order so a batched run is directly comparable to a non-batched one.
    """

    def __init__(self, with_disk=False):
        super().__init__(with_disk=with_disk)
        self.cs.deliver_batch = self._deliver_batch

    def _deliver_batch(self, sub_id, msgs):
        for msg in msgs:
            self.delivered.append((sub_id, msg))


class TestBatchedVsNonBatchedExpiration:
    """Satellite audit: expiration must be decided once, in the shared
    classify pass, so an expiring workload behaves identically with
    batched fan-out on and off — same skips, same PFS records, same
    deliveries, same cursor."""

    def _drive(self, env):
        env.add_sub("s1", Eq("g", 0))
        env.add_sub("s2", Everything())
        # Advance the clock so expires_at below now is genuinely stale.
        env.sim.run_until(50.0)
        # Mixed advance: live, already-expired, never-expiring events,
        # interleaved with silence; one event expires mid-workload.
        env.cs.accumulate(upd(
            d=[
                Event("P1", 2, {"g": 0}, expires_at=10),   # expired
                Event("P1", 4, {"g": 0}),                  # live
                Event("P1", 5, {"g": 1}, expires_at=40),   # expired
            ],
            s=[(1, 1), (3, 3)],
        ))
        env.sim.run_until(80.0)
        env.cs.accumulate(upd(
            d=[
                Event("P1", 7, {"g": 1}, expires_at=1000), # live
                Event("P1", 9, {"g": 0}, expires_at=60),   # expired
            ],
            s=[(6, 6), (8, 8)],
        ))
        env.sim.run_until(120.0)
        return env

    def test_expired_asymmetry_absent(self):
        plain = self._drive(Env())
        batched = self._drive(BatchEnv())

        assert plain.cs.expired_skipped == batched.cs.expired_skipped == 3
        assert plain.pfs.writes == batched.pfs.writes == 2
        # Intra-tick fan-out order is path-specific (the per-tick loop
        # iterates the memoized match set, the batched loop its sorted
        # order); the per-tick delivery *sets* must agree exactly.
        assert sorted((m.t, sid) for sid, m in plain.delivered) == \
            sorted((m.t, sid) for sid, m in batched.delivered) == \
            [(4, "s1"), (4, "s2"), (7, "s2")]
        assert plain.cs.latest_delivered == batched.cs.latest_delivered == 9
        # Expired ticks look like silence to catchup reads on both.
        for env in (plain, batched):
            nums = {sid: env.registry.get(sid).num for sid in ("s1", "s2")}
            assert env.pfs.read_batch("P1", nums["s1"], 0).q_ticks == [4]
            assert env.pfs.read_batch("P1", nums["s2"], 0).q_ticks == [4, 7]

    def test_expired_asymmetry_absent_under_disk(self):
        plain = self._drive(Env(with_disk=True))
        batched = self._drive(BatchEnv(with_disk=True))
        assert plain.cs.expired_skipped == batched.cs.expired_skipped == 3
        assert sorted((m.t, sid) for sid, m in plain.delivered) == \
            sorted((m.t, sid) for sid, m in batched.delivered)
        assert plain.cs.latest_delivered == batched.cs.latest_delivered


class TestMidAdvanceRegistration:
    """Satellite audit: a subscriber registered *mid-advance* (from a
    synchronous PFS-durability callback — a catchup switchover) gets
    the same first-delivery cursor on the batched and non-batched
    paths: ``knowledge.advance()`` moves the consumed cursor past the
    whole advance before any PFS ack can fire, so the late joiner
    floors above every tick of the advance on both."""

    def _drive(self, env):
        env.add_sub("s1", Everything())
        late = {}

        def join_late(latest):
            if latest >= 3 and "s3" not in late:
                sub = env.add_sub("s3", Everything())
                late["s3"] = env.cs._non_catchup["s3"]

        env.cs.on_latest_delivered(join_late)
        env.cs.accumulate(upd(d=[ev(3), ev(5), ev(8)], s=[(1, 2), (4, 4), (6, 7)]))
        env.cs.accumulate(upd(d=[ev(9)]))
        env.sim.run_until(100.0)
        return env, late["s3"]

    def test_same_first_delivery_cursor_both_paths(self):
        plain, plain_floor = self._drive(Env())
        batched, batched_floor = self._drive(BatchEnv())

        # The callback fired inside the first pump; the floor is the
        # already-consumed advance end — above every tick of it.
        assert plain_floor == batched_floor == 8
        s3_plain = [m.t for sid, m in plain.delivered if sid == "s3"]
        s3_batched = [m.t for sid, m in batched.delivered if sid == "s3"]
        # First delivery is the first post-registration advance.
        assert s3_plain == s3_batched == [9]
        # And nothing from the in-flight advance was redelivered.
        assert sorted((m.t, sid) for sid, m in plain.delivered) == \
            sorted((m.t, sid) for sid, m in batched.delivered)

    def test_same_first_delivery_cursor_under_disk(self):
        # Under a SimDisk the durability ack (and thus the switchover)
        # fires from the sync completion, between pumps — by then both
        # scripted advances have pumped, so the floor lands at 9 on
        # both paths and s3's first delivery is the next advance.
        def drive(env):
            env, floor = self._drive(env)
            env.sim.at(150.0, lambda: env.cs.accumulate(
                upd(d=[ev(12)], s=[(10, 11)])
            ))
            env.sim.run_until(300.0)
            return env, floor

        plain, plain_floor = drive(Env(with_disk=True))
        batched, batched_floor = drive(BatchEnv(with_disk=True))
        assert plain_floor == batched_floor == 9
        assert [m.t for sid, m in plain.delivered if sid == "s3"] == \
            [m.t for sid, m in batched.delivered if sid == "s3"] == [12]
