"""Tests for the JMS durable-subscription layer (Section 5.2)."""

import pytest

from repro import Everything, In, Node, PeriodicPublisher, Scheduler, build_two_broker
from repro.jms.ctstore import CheckpointCommitService, CommitCosts
from repro.jms.session import (
    AUTO_ACKNOWLEDGE,
    CLIENT_ACKNOWLEDGE,
    DUPS_OK_ACKNOWLEDGE,
    SESSION_TRANSACTED,
    JMSDurableSubscriber,
)


@pytest.fixture
def env():
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    shb = overlay.shbs[0]
    service = CheckpointCommitService(shb)
    machine = Node(sim, "client")
    return sim, overlay, shb, service, machine


def start_pub(sim, phb, rate=100):
    pub = PeriodicPublisher(sim, phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return pub


class TestAutoAck:
    def test_every_event_consumed_is_committed(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything(),
                                   ack_mode=AUTO_ACKNOWLEDGE)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb, rate=50)
        sim.run_until(3_000)
        pub.stop()
        sim.run_until(4_000)
        assert sub.events_consumed == pub.published
        assert sub.commits_completed == sub.events_consumed
        # The SHB-side table holds the committed CT.
        stored = service.table.get_committed("j1", {})
        assert stored.get("P1", 0) > 0

    def test_consumption_gated_by_commit(self, env):
        sim, overlay, shb, service, machine = env
        # Make commits very slow so gating is visible.
        slow = CommitCosts(base_ms=100.0, per_update_ms=0.0, batch_delay_ms=0.1)
        service.costs = slow
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything(),
                                   ack_mode=AUTO_ACKNOWLEDGE)
        sub.connect(shb)
        start_pub(sim, overlay.phb, rate=200)
        sim.run_until(2_000)
        # ~10 commits/s possible; consumption bounded accordingly.
        assert sub.events_consumed < 40
        assert len(sub._inbox) > 100  # backlog queued client-side

    def test_commit_is_acknowledgment_for_release(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything())
        sub.connect(shb)
        start_pub(sim, overlay.phb)
        sim.run_until(3_000)
        assert shb.registry.get("j1").released_for("P1") > 1_000


class TestOtherModes:
    def test_dups_ok_batches_commits(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything(),
                                   ack_mode=DUPS_OK_ACKNOWLEDGE, dups_ok_batch=10)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb, rate=100)
        sim.run_until(3_000)
        pub.stop()
        sim.run_until(4_000)
        assert sub.events_consumed == pub.published
        assert sub.commits_completed <= pub.published // 10 + 2

    def test_client_acknowledge_mode(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything(),
                                   ack_mode=CLIENT_ACKNOWLEDGE)
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb, rate=100)
        sim.run_until(2_000)
        assert sub.commits_completed == 0
        sub.acknowledge()
        sim.run_until(2_100)
        assert sub.commits_completed == 1
        assert service.table.get_committed("j1", {}).get("P1", 0) > 0

    def test_transacted_mode(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything(),
                                   ack_mode=SESSION_TRANSACTED)
        sub.connect(shb)
        start_pub(sim, overlay.phb, rate=100)
        sim.run_until(2_000)
        sub.commit_transaction()
        sim.run_until(2_100)
        assert sub.commits_completed == 1

    def test_mode_methods_enforced(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything())
        with pytest.raises(ValueError):
            sub.acknowledge()
        with pytest.raises(ValueError):
            sub.commit_transaction()
        with pytest.raises(ValueError):
            JMSDurableSubscriber(sim, "j2", machine, Everything(), ack_mode="bogus")


class TestCommitService:
    def test_requests_hash_to_stable_connections(self, env):
        sim, overlay, shb, service, machine = env
        conn = service._connection_for("abc")
        assert conn == service._connection_for("abc")
        assert 0 <= conn < service.n_connections

    def test_coalescing_counts(self, env):
        sim, overlay, shb, service, machine = env
        subs = [JMSDurableSubscriber(sim, f"j{i}", machine, Everything(),
                                     ack_mode=DUPS_OK_ACKNOWLEDGE, dups_ok_batch=1)
                for i in range(8)]
        for s in subs:
            s.connect(shb)
        start_pub(sim, overlay.phb, rate=200)
        sim.run_until(3_000)
        assert service.updates_committed > 0

    def test_lookup_returns_stored_ct(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything())
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb)
        sim.run_until(2_000)
        pub.stop()
        sim.run_until(2_500)
        committed_at_shb = service.table.get_committed("j1", {}).get("P1")
        # Simulate losing local state entirely, then recover via lookup.
        sub.disconnect()
        sim.run_until(2_600)
        sub.connect(shb)
        sub.lookup_ct()
        sim.run_until(2_700)
        assert sub.ct.get("P1") >= committed_at_shb

    def test_shb_crash_preserves_committed_cts(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, Everything())
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb)
        sim.run_until(2_000)
        before = service.table.get_committed("j1", {}).get("P1", 0)
        assert before > 0
        shb.fail_for(500)
        sim.run_until(3_000)
        after = service.table.get_committed("j1", {}).get("P1", 0)
        assert after >= before


class TestExactlyOnceJMS:
    def test_no_loss_across_disconnect(self, env):
        sim, overlay, shb, service, machine = env
        sub = JMSDurableSubscriber(sim, "j1", machine, In("group", [0, 2]))
        sub.connect(shb)
        pub = start_pub(sim, overlay.phb, rate=100)
        sim.run_until(2_000)
        sub.disconnect()
        sim.run_until(3_000)
        sub.connect(shb)
        sim.run_until(6_000)
        pub.stop()
        sim.run_until(8_000)
        assert sub.events_consumed == pub.published // 2
        assert sub.stats.order_violations == 0
