"""Tests for curiosity streams (nack pacing) and the consolidator."""

import pytest

from repro.core.curiosity import CuriosityStream, NackConsolidator
from repro.net.simtime import Scheduler
from repro.util.intervals import IntervalSet


@pytest.fixture
def sim():
    return Scheduler()


def make_curiosity(sim, **kw):
    nacks = []
    cs = CuriosityStream(sim, "P1", lambda r: nacks.append(r.as_tuples()), **kw)
    return cs, nacks


class TestCuriosityStream:
    def test_wanted_range_is_nacked(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10)
        cs.want(5, 9)
        sim.run_until(15)
        assert nacks == [[(5, 9)]]

    def test_no_renack_within_retry_window(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=100)
        cs.want(5, 9)
        sim.run_until(90)
        assert len(nacks) == 1

    def test_renack_after_retry_expires(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=100)
        cs.want(5, 9)
        sim.run_until(250)
        assert len(nacks) >= 2
        assert nacks[1] == [(5, 9)]

    def test_resolved_ranges_not_renacked(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=50)
        cs.want(5, 9)
        sim.run_until(15)
        cs.resolve(5, 7)
        sim.run_until(200)
        for ranges in nacks[1:]:
            assert ranges == [(8, 9)]

    def test_new_want_nacked_promptly_despite_pending(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=1000)
        cs.want(5, 9)
        sim.run_until(15)
        cs.want(20, 25)
        sim.run_until(40)
        assert [(20, 25)] in nacks

    def test_resolve_below(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=20)
        cs.want(5, 9)
        cs.resolve_below(8)
        sim.run_until(15)
        assert nacks == [[(8, 9)]]

    def test_set_want_replaces(self, sim):
        cs, cs_nacks = make_curiosity(sim, poll_ms=10, retry_ms=5)
        cs.want(5, 9)
        cs.set_want(IntervalSet([(7, 8)]))
        sim.run_until(12)
        assert cs_nacks
        assert all(r == [(7, 8)] for r in cs_nacks)

    def test_close_stops_timer(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10)
        cs.want(5, 9)
        cs.close()
        sim.run_until(100)
        assert nacks == []

    def test_timer_stops_when_done(self, sim):
        cs, nacks = make_curiosity(sim, poll_ms=10, retry_ms=20)
        cs.want(5, 6)
        sim.run_until(15)
        cs.resolve(5, 6)
        sim.run_until(100)
        executed_before = sim.events_executed
        sim.run_until(1000)
        # Timer cancelled itself: barely any events after quiescence.
        assert sim.events_executed - executed_before <= 2


class TestNackConsolidator:
    def test_forward_suppresses_duplicates(self, sim):
        con = NackConsolidator(sim, retry_ms=100)
        first = con.to_forward(IntervalSet([(5, 9)]))
        assert first.as_tuples() == [(5, 9)]
        again = con.to_forward(IntervalSet([(5, 9)]))
        assert not again
        assert con.consolidated_ticks == 5

    def test_forward_partial_overlap(self, sim):
        con = NackConsolidator(sim, retry_ms=100)
        con.to_forward(IntervalSet([(5, 9)]))
        due = con.to_forward(IntervalSet([(8, 12)]))
        assert due.as_tuples() == [(10, 12)]

    def test_forward_again_after_retry_window(self, sim):
        con = NackConsolidator(sim, retry_ms=50)
        con.to_forward(IntervalSet([(5, 9)]))
        # Suppression lasts between one and two retry periods (the
        # two-generation scheme): still suppressed just after one.
        sim.run_until(60)
        assert not con.to_forward(IntervalSet([(5, 9)]))
        sim.run_until(120)
        due = con.to_forward(IntervalSet([(5, 9)]))
        assert due.as_tuples() == [(5, 9)]

    def test_route_finds_interested_requesters(self, sim):
        con = NackConsolidator(sim)
        con.register("a", IntervalSet([(5, 9)]))
        con.register("b", IntervalSet([(8, 12)]))
        con.register("c", IntervalSet([(20, 25)]))
        assert set(con.route(9, 10)) == {"a", "b"}
        assert con.route(13, 19) == []

    def test_satisfy_clears_interest(self, sim):
        con = NackConsolidator(sim)
        con.register("a", IntervalSet([(5, 9)]))
        con.satisfy(5, 9)
        assert con.route(5, 9) == []
        assert con.pending_requesters == 0

    def test_satisfy_partial(self, sim):
        con = NackConsolidator(sim)
        con.register("a", IntervalSet([(5, 9)]))
        con.satisfy(5, 6)
        assert con.route(7, 7) == ["a"]
        assert con.interest_of("a").as_tuples() == [(7, 9)]

    def test_drop_requester(self, sim):
        con = NackConsolidator(sim)
        con.register("a", IntervalSet([(5, 9)]))
        con.drop_requester("a")
        assert con.route(5, 9) == []
