"""Tests for the overlay topology builders."""

import pytest

from repro import (
    DurableSubscriber,
    Everything,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_chain,
    build_single_broker,
    build_star,
    build_tree,
    build_two_broker,
)
from repro.util.errors import ConfigurationError


def drive(sim, overlay, n_events=100, rate=100):
    """Attach one wildcard subscriber per SHB and publish; return subs."""
    subs = []
    for i, shb in enumerate(overlay.shbs):
        machine = Node(sim, f"c{i}")
        sub = DurableSubscriber(sim, f"s{i}", machine, Everything(), record_events=True)
        sub.connect(shb)
        subs.append(sub)
    pub = PeriodicPublisher(sim, overlay.phb, overlay.pubend_names[0], rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    sim.run_until(n_events * 1000.0 / rate + 100)
    pub.stop()
    sim.run_until(sim.now + 2_000)
    return subs, pub


class TestBuilders:
    def test_two_broker(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        assert len(overlay.shbs) == 1
        assert overlay.intermediates == []
        subs, pub = drive(sim, overlay)
        assert subs[0].stats.events == pub.published

    def test_star_4_shbs(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], n_shbs=4)
        assert len(overlay.shbs) == 4
        assert overlay.phb.child_names == [s.name for s in overlay.shbs]
        subs, pub = drive(sim, overlay)
        for sub in subs:
            assert sub.stats.events == pub.published

    def test_chain_with_intermediates(self):
        sim = Scheduler()
        overlay = build_chain(sim, ["P1"], n_intermediates=3)
        assert len(overlay.intermediates) == 3
        assert len(overlay.shbs) == 1
        subs, pub = drive(sim, overlay)
        assert subs[0].stats.events == pub.published

    def test_single_broker_shares_node(self):
        sim = Scheduler()
        overlay = build_single_broker(sim, ["P1"])
        assert overlay.phb.node is overlay.shbs[0].node
        subs, pub = drive(sim, overlay)
        assert subs[0].stats.events == pub.published

    def test_tree_2x2(self):
        sim = Scheduler()
        overlay = build_tree(sim, ["P1"], fanout=[2, 2])
        assert len(overlay.intermediates) == 2
        assert len(overlay.shbs) == 4
        subs, pub = drive(sim, overlay)
        for sub in subs:
            assert sub.stats.events == pub.published

    def test_star_requires_shbs(self):
        with pytest.raises(ConfigurationError):
            build_star(Scheduler(), ["P1"], n_shbs=0)

    def test_tree_requires_fanout(self):
        with pytest.raises(ConfigurationError):
            build_tree(Scheduler(), ["P1"], fanout=[])

    def test_shb_by_name(self):
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], n_shbs=2)
        assert overlay.shb_by_name("shb2") is overlay.shbs[1]
        with pytest.raises(ConfigurationError):
            overlay.shb_by_name("nope")

    def test_multiple_pubends(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1", "P2", "P3"])
        assert overlay.pubend_names == ["P1", "P2", "P3"]
        assert set(overlay.phb.pubends) == {"P1", "P2", "P3"}
