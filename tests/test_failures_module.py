"""Tests for declarative failure injection, including link partitions."""

from collections import Counter

from repro import (
    DurableSubscriber,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_chain,
    build_two_broker,
)
from repro.sim.failures import FailureSchedule


def world(sim, overlay, n_subs=4, rate=200):
    machine = Node(sim, "clients")
    subs = []
    for i in range(n_subs):
        sub = DurableSubscriber(sim, f"s{i}", machine,
                                In("group", [i % 2, 2 + i % 2]), record_events=True)
        sub.connect(overlay.shbs[0])
        subs.append(sub)
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return subs, pub


def assert_exactly_once(subs, pub, matches=2):
    counts = Counter()
    for sub in subs:
        assert sub.stats.order_violations == 0
        assert sub.duplicate_events == 0
        assert sub.stats.gaps == 0
        for event_id in sub.received_event_ids:
            counts[event_id] += 1
    assert len(counts) == pub.published
    assert all(c == matches for c in counts.values())


class TestSchedule:
    def test_crash_broker_records_and_fires(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        faults = FailureSchedule(sim)
        faults.crash_broker(overlay.shbs[0], at_ms=1_000, down_ms=500)
        sim.run_until(1_100)
        assert overlay.shbs[0].node.is_down
        sim.run_until(2_000)
        assert not overlay.shbs[0].node.is_down
        assert len(faults.faults_of("crash")) == 1

    def test_repeated_crashes(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        faults = FailureSchedule(sim)
        faults.repeated_crashes(overlay.shbs[0], 1_000, 200, 2_000, count=3)
        assert len(faults.faults_of("crash")) == 3

    def test_periodic_stall_records(self):
        sim = Scheduler()
        node = Node(sim, "n")
        faults = FailureSchedule(sim)
        faults.periodic_stall(node, period_ms=100, pause_ms=10)
        sim.run_until(550)
        assert len(faults.faults_of("stall")) == 5
        faults.stop()
        sim.run_until(2_000)
        assert len(faults.faults_of("stall")) == 5


class TestPartitions:
    def test_partition_between_brokers_recovers_exactly_once(self):
        """Knowledge lost during a broker-link partition is re-fetched
        through the curiosity/nack path once the link heals."""
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        subs, pub = world(sim, overlay)
        faults = FailureSchedule(sim)
        faults.partition_link(overlay.links[0], at_ms=4_000, duration_ms=2_500,
                              name="phb-shb")
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(26_000)
        assert_exactly_once(subs, pub)

    def test_partition_in_chain_topology(self):
        sim = Scheduler()
        overlay = build_chain(sim, ["P1"], n_intermediates=1)
        subs, pub = world(sim, overlay)
        faults = FailureSchedule(sim)
        # Partition the intermediate->SHB hop.
        faults.partition_link(overlay.links[-1], at_ms=4_000, duration_ms=2_000)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(26_000)
        assert_exactly_once(subs, pub)

    def test_repeated_partitions(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        subs, pub = world(sim, overlay)
        faults = FailureSchedule(sim)
        for k in range(3):
            faults.partition_link(overlay.links[0], at_ms=3_000 + 4_000 * k,
                                  duration_ms=1_000)
        sim.run_until(25_000)
        pub.stop()
        sim.run_until(31_000)
        assert_exactly_once(subs, pub)

    def test_partition_plus_subscriber_churn(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        subs, pub = world(sim, overlay)
        faults = FailureSchedule(sim)
        faults.partition_link(overlay.links[0], at_ms=4_000, duration_ms=2_000)
        victim = subs[0]
        sim.at(4_500, victim.disconnect)
        sim.at(8_000, lambda: victim.connect(overlay.shbs[0]))
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(26_000)
        assert_exactly_once(subs, pub)
