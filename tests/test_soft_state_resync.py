"""Tests for subscription soft-state resync after broker crashes.

Upstream subscription unions are volatile: a recovered PHB or
intermediate must pass knowledge *unfiltered* (cold) until its children
re-sync, so no event matching a still-registered durable subscription
is ever silently filtered to silence.
"""

from repro import (
    DurableSubscriber,
    Eq,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_chain,
    build_two_broker,
)


class TestColdFilters:
    def test_phb_recovery_marks_children_cold(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        assert overlay.phb.child_filter_ready == {"shb1": True}
        overlay.phb.fail_for(100)
        sim.run_until(200)
        assert overlay.phb.child_filter_ready == {"shb1": False}
        # The SHB's periodic refresh re-warms it.
        sim.run_until(5_000)
        assert overlay.phb.child_filter_ready == {"shb1": True}

    def test_events_in_cold_window_not_lost(self):
        """Events published after PHB recovery but before the filter
        resync must reach matching subscribers (unfiltered pass)."""
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Eq("group", 1),
                                record_events=True)
        sub.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": i % 4})
        pub.start()
        sim.run_until(3_000)
        overlay.phb.fail_for(500)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(25_000)
        # Everything the PHB durably accepted and that matches s1 must
        # have been delivered; no silent filtering losses.
        accepted = overlay.phb.pubends["P1"].events_published
        # Groups cycle 0..3 deterministically, but the crash drops some
        # publishes; count matching events from the subscriber itself
        # versus its order/gap counters instead.
        assert sub.stats.order_violations == 0
        assert sub.stats.gaps == 0
        assert sub.duplicate_events == 0
        # The subscriber saw roughly a quarter of accepted events; exact
        # equality requires replaying which publishes were dropped, so
        # assert the strong invariant via a second wildcard subscriber.

    def test_cold_window_strong_invariant_with_witness(self):
        """A witness subscriber (Everything) receives every accepted
        event; every group-1 event it saw must also reach the group-1
        subscriber — even those published during the cold window."""
        from repro.matching.predicates import Everything
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        witness = DurableSubscriber(sim, "witness", Node(sim, "c1"),
                                    Everything(), record_events=True)
        target = DurableSubscriber(sim, "target", Node(sim, "c2"),
                                   Eq("group", 1), record_events=True)
        witness.connect(shb)
        target.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": i % 4})
        pub.start()
        sim.run_until(3_000)
        overlay.phb.fail_for(500)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(25_000)
        # The group isn't recoverable from an event id, so compare
        # counts: exactly every 4th accepted event matches group 1.
        target_ts = {int(e.split(":")[1]) for e in target.received_event_ids}
        assert target.stats.gaps == 0
        assert target.duplicate_events == 0
        # The witness count is 4x the target count (+/- boundary).
        assert abs(len(witness.received_event_ids) - 4 * len(target_ts)) <= 4

    def test_intermediate_recovery_cold_pass(self):
        sim = Scheduler()
        overlay = build_chain(sim, ["P1"], n_intermediates=1)
        shb = overlay.shbs[0]
        mid = overlay.intermediates[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Eq("group", 1),
                                record_events=True)
        sub.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": i % 4})
        pub.start()
        sim.run_until(3_000)
        mid.fail_for(400)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(25_000)
        assert sub.stats.order_violations == 0
        assert sub.stats.gaps == 0
        assert sub.duplicate_events == 0
        assert sub.stats.events == pub.published // 4

    def test_sync_message_rewarns_filtering(self):
        """After resync the PHB filters again (traffic efficiency)."""
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Eq("group", 99))
        sub.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": i % 4})
        pub.start()
        overlay.phb.fail_for(200)
        sim.run_until(6_000)   # refresh happened; PHB warm again
        assert overlay.phb.child_filter_ready["shb1"] is True
        # All events filtered to silence at the PHB: the link carries
        # no D events once warm (sample the link counters indirectly
        # via the subscriber having received nothing).
        assert sub.stats.events == 0
