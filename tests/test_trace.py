"""Tests for the sampled end-to-end event tracer."""

import pytest

from repro.broker.topology import build_chain, build_two_broker
from repro.client.publisher import PeriodicPublisher
from repro.client.subscriber import DurableSubscriber
from repro.matching.predicates import Everything
from repro.metrics import trace as T
from repro.net.node import Node
from repro.net.simtime import Scheduler


def _run_two_broker(sample_rate, seed=0, duration_ms=4_000.0, install_late=False):
    sim = Scheduler()
    if not install_late:
        T.install_tracer(sim, sample_rate, seed=seed)
    overlay = build_two_broker(sim, ["P1"])
    sub = DurableSubscriber(sim, "s1", Node(sim, "m1"), Everything())
    sub.connect(overlay.shbs[0])
    pub = PeriodicPublisher(
        sim, overlay.phb, "P1", 100.0, attribute_fn=lambda i: {"g": i % 4}
    )
    if install_late:
        # The singleton is reconfigured in place, so installing after
        # the topology cached its reference must behave identically.
        T.install_tracer(sim, sample_rate, seed=seed)
    pub.start()
    sim.run_until(duration_ms)
    pub.stop()
    sim.run_until(duration_ms + 1_000.0)
    return sim, T.event_tracer(sim), pub, sub


class TestSampling:
    def test_default_off(self):
        sim, tracer, pub, sub = _run_two_broker(0.0)
        assert not tracer.active
        assert tracer.started == 0
        assert tracer.histograms == {}
        assert sub.stats.events == pub.published  # delivery unaffected

    def test_rate_one_traces_everything(self):
        sim, tracer, pub, sub = _run_two_broker(1.0)
        assert tracer.started == pub.published
        e2e = tracer.histograms[T.E2E_PUBLISH_DELIVER]
        assert e2e.count == sub.stats.events

    def test_sample_fraction(self):
        sim, tracer, pub, _ = _run_two_broker(0.25, seed=3, duration_ms=10_000.0)
        assert pub.published == 1_000
        assert 0.15 * pub.published < tracer.started < 0.35 * pub.published

    def test_same_seed_same_decisions(self):
        _, t1, _, _ = _run_two_broker(0.25, seed=5)
        _, t2, _, _ = _run_two_broker(0.25, seed=5)
        assert t1.started == t2.started
        assert [tr.event_id for tr in t1.traces()] == [
            tr.event_id for tr in t2.traces()
        ]

    def test_install_order_irrelevant(self):
        _, early, _, _ = _run_two_broker(0.25, seed=5)
        _, late, _, _ = _run_two_broker(0.25, seed=5, install_late=True)
        assert early.started == late.started

    def test_invalid_rate_rejected(self):
        sim = Scheduler()
        with pytest.raises(ValueError):
            T.install_tracer(sim, 1.5)
        with pytest.raises(ValueError):
            T.install_tracer(sim, -0.1)


class TestSpans:
    def test_two_broker_span_taxonomy(self):
        _, tracer, pub, sub = _run_two_broker(1.0)
        expected = {
            T.SPAN_PUBLISH,
            T.SPAN_PHB_LOG,
            T.SPAN_PHB_FORWARD,
            T.SPAN_SHB_MATCH,
            T.SPAN_DELIVER_CONSTREAM,
            T.SPAN_CLIENT_CONSUME,
            T.E2E_PUBLISH_DELIVER,
        }
        assert expected <= set(tracer.histograms)
        # No intermediate broker, no catchup in this run.
        assert T.SPAN_INTERMEDIATE_FORWARD not in tracer.histograms
        assert T.E2E_CATCHUP_LAG not in tracer.histograms
        # Every consumed event closed a full trace: logging dominates
        # and end-to-end covers each component span.
        e2e = tracer.histograms[T.E2E_PUBLISH_DELIVER]
        log = tracer.histograms[T.SPAN_PHB_LOG]
        assert log.count == pub.published
        assert e2e.p50 >= log.p50
        assert log.p50 > 0.0

    def test_span_ordering_within_trace(self):
        _, tracer, _, _ = _run_two_broker(1.0, duration_ms=1_000.0)
        done = [t for t in tracer.traces() if t.consumes > 0]
        assert done
        for trace in done:
            by_name = {s.name: s for s in trace.spans}
            assert by_name[T.SPAN_PUBLISH].start_ms == trace.start_ms
            assert (
                by_name[T.SPAN_PHB_LOG].end_ms
                <= by_name[T.SPAN_PHB_FORWARD].end_ms
                <= by_name[T.SPAN_SHB_MATCH].end_ms
                <= by_name[T.SPAN_DELIVER_CONSTREAM].end_ms
                <= by_name[T.SPAN_CLIENT_CONSUME].end_ms
            )
            for span in trace.spans:
                assert span.end_ms >= span.start_ms >= trace.start_ms

    def test_chain_has_intermediate_spans(self):
        sim = Scheduler()
        T.install_tracer(sim, 1.0)
        overlay = build_chain(sim, ["P1"], n_intermediates=2)
        sub = DurableSubscriber(sim, "s1", Node(sim, "m1"), Everything())
        sub.connect(overlay.shbs[0])
        pub = PeriodicPublisher(
            sim, overlay.phb, "P1", 50.0, attribute_fn=lambda i: {"g": 0}
        )
        pub.start()
        sim.run_until(3_000.0)
        pub.stop()
        sim.run_until(4_000.0)
        tracer = T.event_tracer(sim)
        inter = tracer.histograms[T.SPAN_INTERMEDIATE_FORWARD]
        # Each traced event crosses two intermediates.
        assert inter.count == 2 * pub.published


class TestCatchupClassification:
    def test_reconnect_lag_split_from_live_delivery(self):
        sim = Scheduler()
        T.install_tracer(sim, 1.0)
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        steady = DurableSubscriber(sim, "steady", Node(sim, "m1"), Everything())
        steady.connect(shb)
        churner = DurableSubscriber(sim, "churner", Node(sim, "m2"), Everything())
        churner.connect(shb)
        sim.at(2_000.0, churner.disconnect)
        sim.at(4_000.0, lambda: churner.connect(shb))
        pub = PeriodicPublisher(
            sim, overlay.phb, "P1", 100.0, attribute_fn=lambda i: {"g": i % 4}
        )
        pub.start()
        sim.run_until(6_000.0)
        pub.stop()
        sim.run_until(9_000.0)
        tracer = T.event_tracer(sim)
        lag = tracer.histograms[T.E2E_CATCHUP_LAG]
        live = tracer.histograms[T.E2E_PUBLISH_DELIVER]
        assert T.SPAN_DELIVER_CATCHUP in tracer.histograms
        assert T.SPAN_CATCHUP_RESOLVE in tracer.histograms
        # ~200 events published during the 2s disconnection reach the
        # churner via catchup; the lag includes the disconnected span.
        assert lag.count > 100
        assert lag.p50 > 500.0  # bulk of the backlog waited out the outage
        assert lag.max > 1_000.0
        # The steady subscriber (plus the churner's live spans) stays in
        # the publish->deliver histogram, with normal latencies.
        assert live.count >= steady.stats.events
        assert live.p99 < 1_000.0
        # Both subscribers observed every event exactly once.
        assert steady.stats.events == pub.published
        assert churner.stats.events + churner.stats.gaps == pub.published


class TestBookkeeping:
    def test_eviction_bounds_memory(self):
        sim, tracer, pub, _ = _run_two_broker(0.0)  # topology only
        sim2 = Scheduler()
        tracer2 = T.install_tracer(sim2, 1.0, max_traces=16)

        class _Event:
            def __init__(self, i):
                self.event_id = f"e{i}"
                self.pubend = "P1"

        for i in range(40):
            assert tracer2.begin(_Event(i))
        assert len(tracer2.traces()) == 16
        assert tracer2.evicted == 24
        assert tracer2.started == 40

    def test_snapshot_shape(self):
        _, tracer, _, _ = _run_two_broker(1.0, duration_ms=1_000.0)
        snap = tracer.snapshot()
        assert snap["sample_rate"] == 1.0
        assert snap["traces_started"] == tracer.started
        assert set(snap["histograms"]) == set(tracer.histograms)
        for hist_snap in snap["histograms"].values():
            assert {"count", "p50_ms", "p99_ms", "buckets"} <= set(hist_snap)

    def test_untraced_event_ids_ignored(self):
        sim = Scheduler()
        tracer = T.install_tracer(sim, 1.0)
        tracer.add_span("ghost", T.SPAN_PHB_LOG, "B1")
        tracer.on_match("ghost", "B1")
        tracer.on_deliver("ghost", "s1", False, 0.0)
        tracer.on_consume("ghost", "s1")
        assert tracer.histograms == {}
        assert tracer.consumed == 0
