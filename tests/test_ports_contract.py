"""Port contracts, asserted against both adapter families.

The ports (:mod:`repro.port`) promise the protocol classes a substrate
they can't tell apart: virtual or wall-clock timers, link-or-TCP
channels, modelled-or-real group commit.  Each test here states one
clause of that promise and runs it against the **sim** family
(:class:`~repro.net.simtime.Scheduler`, :class:`~repro.net.link.Link`
via :func:`~repro.adapters.sim.channel_pair`,
:class:`~repro.storage.disk.SimDisk`) and the **rt** family
(:class:`~repro.adapters.rt.clock.AsyncioClock`,
:class:`~repro.adapters.rt.transport.TcpConnection`,
:class:`~repro.adapters.rt.storage.RealDisk`) through one harness.

The harness hides the only real difference — how time passes.  The sim
family steps the scheduler (catching callback exceptions into
``fam.errors``, where the kernel would surface them to ``run()``'s
caller); the rt family spins a private asyncio loop with an exception
handler doing the same.  Timings use short intervals and generous
deadlines so the rt half stays robust on a loaded CI box.

Substrate-specific clauses (exact virtual-time grids; TCP frame
corruption; fsync-before-callback; torn-tail truncation) live in the
non-parametrized classes at the bottom.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.adapters.rt.clock import AsyncioClock
from repro.adapters.rt.storage import RealDisk
from repro.adapters.rt.transport import (
    TcpListener,
    encode_frame,
    open_connection,
)
from repro.adapters.sim import SimDisk, channel_pair
from repro.net.link import Link
from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.port.clock import Clock, PeriodicTimerHandle, TimerHandle
from repro.port.storage import StableStorage
from repro.port.transport import Connection
from repro.storage.logvolume import LogVolume


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------
class SimFamily:
    """The discrete-event substrate driven by stepping the scheduler."""

    name = "sim"
    #: SimDisk models crashes (``crash_reset`` voids staged writes);
    #: for RealDisk process death *is* the crash, so the call is a no-op.
    models_crash = True

    def __init__(self) -> None:
        self.scheduler = Scheduler()
        self.clock = self.scheduler
        self.errors = []

    def run_for(self, ms: float) -> None:
        deadline = self.scheduler.now + ms
        while True:
            try:
                self.scheduler.run_until(deadline)
                return
            except Exception as exc:  # a callback raised mid-run
                self.errors.append(exc)

    def run_until(self, cond, timeout_ms: float = 5000.0) -> bool:
        deadline = self.scheduler.now + timeout_ms
        while not cond() and self.scheduler.now < deadline:
            try:
                if not self.scheduler.step():
                    break
            except Exception as exc:
                self.errors.append(exc)
        return cond()

    def make_storage(self):
        return SimDisk(self.scheduler, sync_interval_ms=5.0, sync_duration_ms=2.0)

    def make_channel_pair(self):
        a = Node(self.scheduler, "a")
        b = Node(self.scheduler, "b")
        link = Link(self.scheduler, a, b, latency_ms=1.0)
        return channel_pair(link, a, b, lambda m: 0.01, lambda m: 0.01)

    def close(self) -> None:
        pass


class RtFamily:
    """The asyncio substrate driven by a private real-time loop."""

    name = "rt"
    models_crash = False

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self.errors = []
        self.loop.set_exception_handler(
            lambda loop, ctx: self.errors.append(ctx.get("exception"))
        )
        self.clock = AsyncioClock(self.loop)
        self._cleanup = []

    def run_for(self, ms: float) -> None:
        self.loop.run_until_complete(asyncio.sleep(ms / 1000.0))

    def run_until(self, cond, timeout_ms: float = 5000.0) -> bool:
        async def wait() -> None:
            deadline = self.loop.time() + timeout_ms / 1000.0
            while not cond() and self.loop.time() < deadline:
                await asyncio.sleep(0.002)

        self.loop.run_until_complete(wait())
        return cond()

    def make_storage(self):
        return RealDisk(self.clock, sync_interval_ms=5.0)

    def make_channel_pair(self):
        listener = TcpListener()
        accepted = []
        listener.on_connection(accepted.append)
        self._cleanup.append(listener.close)

        async def setup():
            port = await listener.start()
            client = await open_connection("127.0.0.1", port)
            while not accepted:
                await asyncio.sleep(0.002)
            return client, accepted[0]

        client, server = self.loop.run_until_complete(setup())
        self._cleanup.append(client.close)
        self._cleanup.append(server.close)
        return client, server

    def close(self) -> None:
        for fn in self._cleanup:
            fn()
        pending = asyncio.all_tasks(self.loop)
        for task in pending:
            task.cancel()
        if pending:
            self.loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.close()
        asyncio.set_event_loop(None)


@pytest.fixture(params=["sim", "rt"])
def fam(request):
    family = SimFamily() if request.param == "sim" else RtFamily()
    yield family
    family.close()


# ---------------------------------------------------------------------------
# The ports are runtime-checkable and both families satisfy them
# ---------------------------------------------------------------------------
class TestPortShapes:
    def test_adapters_satisfy_port_protocols(self, fam):
        assert isinstance(fam.clock, Clock)
        assert isinstance(fam.make_storage(), StableStorage)
        a, b = fam.make_channel_pair()
        assert isinstance(a, Connection)
        assert isinstance(b, Connection)

    def test_timer_handles_satisfy_port_protocols(self, fam):
        once = fam.clock.after(1.0, lambda: None)
        periodic = fam.clock.every(1.0, lambda: None)
        assert isinstance(once, TimerHandle)
        assert isinstance(periodic, PeriodicTimerHandle)
        once.cancel()
        periodic.cancel()


# ---------------------------------------------------------------------------
# Clock
# ---------------------------------------------------------------------------
class TestClockContract:
    def test_now_is_monotone_milliseconds(self, fam):
        t0 = fam.clock.now
        fam.run_for(10.0)
        t1 = fam.clock.now
        assert t1 >= t0
        # 10ms elapsed should read as ~10 units, not ~0.01 (seconds).
        assert t1 - t0 >= 5.0

    def test_after_fires_once_with_args(self, fam):
        fired = []
        fam.clock.after(5.0, fired.append, "x")
        assert fired == []  # never synchronously
        assert fam.run_until(lambda: fired == ["x"])
        fam.run_for(20.0)
        assert fired == ["x"]

    def test_at_fires_no_earlier_than_deadline(self, fam):
        fired = []
        target = fam.clock.now + 15.0
        fam.clock.at(target, lambda: fired.append(fam.clock.now))
        assert fam.run_until(lambda: fired)
        # 1ms of slack for the rt loop's float second conversion.
        assert fired[0] >= target - 1.0

    def test_post_is_fire_and_forget(self, fam):
        fired = []
        assert fam.clock.post(fam.clock.now + 5.0, fired.append, 7) is None
        assert fam.run_until(lambda: fired == [7])

    def test_cancel_prevents_firing_and_is_idempotent(self, fam):
        fired = []
        handle = fam.clock.after(5.0, fired.append, 1)
        handle.cancel()
        handle.cancel()
        fam.run_for(25.0)
        assert fired == []

    def test_equal_deadline_callbacks_fire_in_scheduling_order(self, fam):
        order = []
        target = fam.clock.now + 10.0
        fam.clock.at(target, order.append, "first")
        fam.clock.at(target, order.append, "second")
        fam.clock.post(target, order.append, "third")
        assert fam.run_until(lambda: len(order) == 3)
        assert order == ["first", "second", "third"]

    def test_every_repeats_until_cancelled(self, fam):
        fired = []
        handle = fam.clock.every(5.0, lambda: fired.append(fam.clock.now))
        assert fam.run_until(lambda: len(fired) >= 3)
        handle.cancel()
        assert handle.cancelled
        count = len(fired)
        fam.run_for(30.0)
        assert len(fired) == count

    def test_every_first_delay_overrides_first_gap(self, fam):
        fired = []
        t0 = fam.clock.now
        handle = fam.clock.every(
            50.0, lambda: fired.append(fam.clock.now), first_delay=5.0
        )
        assert fam.run_until(lambda: fired)
        handle.cancel()
        # Fired on the short first_delay, well before one full interval.
        assert fired[0] - t0 < 50.0

    def test_every_raise_without_hook_kills_periodic(self, fam):
        calls = []

        def boom() -> None:
            calls.append(1)
            if len(calls) == 2:
                raise RuntimeError("tick failed")

        handle = fam.clock.every(5.0, boom)
        fam.run_until(lambda: handle.dead, timeout_ms=500.0)
        assert handle.dead
        count = len(calls)
        fam.run_for(30.0)
        assert len(calls) == count  # silent-death fix: it stays stopped...
        assert any(isinstance(e, RuntimeError) for e in fam.errors)  # ...loudly
        handle.cancel()  # and post-death cancel is safe

    def test_every_on_error_hook_keeps_periodic_alive(self, fam):
        calls, caught = [], []

        def boom() -> None:
            calls.append(1)
            raise RuntimeError("tick failed")

        handle = fam.clock.every(5.0, boom, on_error=caught.append)
        assert fam.run_until(lambda: len(calls) >= 3)
        handle.cancel()
        assert not handle.dead
        assert len(caught) == len(calls)
        assert all(isinstance(e, RuntimeError) for e in caught)


# ---------------------------------------------------------------------------
# StableStorage
# ---------------------------------------------------------------------------
class TestStorageContract:
    def test_callbacks_fire_in_write_order_never_synchronously(self, fam):
        disk = fam.make_storage()
        fired = []
        for i in range(3):
            disk.write(10, lambda i=i: fired.append(i))
        assert fired == []  # durability is never instantaneous
        assert fam.run_until(lambda: len(fired) == 3)
        assert fired == [0, 1, 2]

    def test_write_without_callback_is_legal(self, fam):
        disk = fam.make_storage()
        disk.write(10)
        fired = []
        disk.write(10, lambda: fired.append(1))
        assert fam.run_until(lambda: fired == [1])

    def test_group_commit_batches_neighbouring_writes(self, fam):
        disk = fam.make_storage()
        fired = []
        disk.write(10, lambda: fired.append("a"))
        disk.write(10, lambda: fired.append("b"))
        assert fam.run_until(lambda: len(fired) == 2)
        assert fired == ["a", "b"]

    def test_crash_semantics(self, fam):
        disk = fam.make_storage()
        fired = []
        if fam.models_crash:
            # Sim: staged-but-unsynced writes die with the crash — their
            # callbacks must never fire (un-acked = recoverable, acked =
            # durable; firing after a crash would forge an ack).
            disk.write(10, lambda: fired.append("lost"))
            disk.crash_reset()
            fam.run_for(50.0)
            assert fired == []
        else:
            # Rt: process death is the crash, so crash_reset is a no-op
            # and the device keeps working afterwards.
            disk.crash_reset()
            disk.write(10, lambda: fired.append("ok"))
            assert fam.run_until(lambda: fired == ["ok"])


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------
class TestTransportContract:
    def test_fifo_delivery_and_integrity_both_directions(self, fam):
        a, b = fam.make_channel_pair()
        at_b, at_a = [], []
        b.on_message(at_b.append)
        a.on_message(at_a.append)
        sent_down = [{"n": i, "blob": ("x" * i, i)} for i in range(5)]
        sent_up = [f"ack-{i}" for i in range(5)]
        for msg in sent_down:
            a.send(msg)
        for msg in sent_up:
            b.send(msg)
        assert fam.run_until(lambda: len(at_b) == 5 and len(at_a) == 5)
        assert at_b == sent_down  # order preserved, payloads intact
        assert at_a == sent_up

    def test_close_notifies_the_peer(self, fam):
        a, b = fam.make_channel_pair()
        closed = []
        a.on_message(lambda m: None)
        b.on_message(lambda m: None)
        b.on_close(lambda: closed.append("b"))
        a.close()
        assert fam.run_until(lambda: "b" in closed)

    def test_send_after_close_is_silent_loss_not_an_error(self, fam):
        a, b = fam.make_channel_pair()
        a.on_message(lambda m: None)
        b.on_message(lambda m: None)
        a.close()
        fam.run_for(10.0)
        a.send({"dropped": True})  # loss is legal; raising is not
        fam.run_for(10.0)


# ---------------------------------------------------------------------------
# Substrate-specific clauses
# ---------------------------------------------------------------------------
class TestSimClockExactness:
    """Virtual time makes the grid contract exactly checkable."""

    def test_every_firings_land_on_the_anchor_grid(self):
        sched = Scheduler()
        fired = []
        sched.every(0.1, lambda: fired.append(sched.now))
        sched.run_until(100.0)
        assert len(fired) == 1000
        # The satellite drift fix: the 1000th firing is exactly on the
        # grid, not 1000 accumulated float additions away from it.
        assert fired[-1] == 100.0
        assert all(abs(t - 0.1 * (i + 1)) < 1e-9 for i, t in enumerate(fired))


class TestRtTransportSpecifics:
    """TCP framing: corruption severs, retries ride out dead windows."""

    def test_corrupt_frame_closes_connection_without_delivery(self):
        async def main():
            listener = TcpListener()
            accepted, delivered = [], []
            listener.on_connection(accepted.append)
            port = await listener.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                while not accepted:
                    await asyncio.sleep(0.002)
                accepted[0].on_message(delivered.append)
                good = encode_frame({"n": 1})
                writer.write(good)
                await writer.drain()
                deadline = asyncio.get_event_loop().time() + 5.0
                while not delivered and asyncio.get_event_loop().time() < deadline:
                    await asyncio.sleep(0.002)
                assert delivered == [{"n": 1}]
                # Flip one payload byte: header CRC mismatch => the
                # stream has lost sync and the session must die rather
                # than deliver garbage.
                bad = good[:-1] + bytes([good[-1] ^ 0xFF])
                writer.write(bad)
                await writer.drain()
                deadline = asyncio.get_event_loop().time() + 5.0
                while not accepted[0].closed and asyncio.get_event_loop().time() < deadline:
                    await asyncio.sleep(0.002)
                assert accepted[0].closed
                assert delivered == [{"n": 1}]
            finally:
                writer.close()
                listener.close()

        asyncio.run(main())

    def test_open_connection_retries_until_listener_appears(self):
        async def main():
            probe = TcpListener()
            port = await probe.start()
            probe.close()  # free the port; we now know it is connectable
            await asyncio.sleep(0.05)

            async def connect():
                return await open_connection(
                    "127.0.0.1", port, retry_ms=25.0, timeout_ms=5000.0
                )

            task = asyncio.ensure_future(connect())
            await asyncio.sleep(0.1)  # several refused attempts happen here
            assert not task.done()
            listener = TcpListener()
            accepted = []
            listener.on_connection(accepted.append)
            await listener.start(port=port)
            client = await task
            try:
                client.send({"hello": True})
                got = []
                while not accepted:
                    await asyncio.sleep(0.002)
                accepted[0].on_message(got.append)
                deadline = asyncio.get_event_loop().time() + 5.0
                while not got and asyncio.get_event_loop().time() < deadline:
                    await asyncio.sleep(0.002)
                assert got == [{"hello": True}]
            finally:
                client.close()
                listener.close()

        asyncio.run(main())


class TestRtStorageSpecifics:
    """RealDisk: the fsync happens before any callback; torn tails heal."""

    def test_data_is_on_disk_before_the_callback_fires(self, tmp_path):
        async def main():
            clock = AsyncioClock(asyncio.get_event_loop())
            disk = RealDisk(clock, sync_interval_ms=5.0)
            path = os.path.join(str(tmp_path), "vol.log")
            volume = LogVolume.at_path(path)
            disk.attach_volume(volume)
            stream = volume.stream("s")
            record = b"needle-0123456789"
            observed = []

            def on_durable() -> None:
                # An independent reader must already see the record: the
                # contract is flush+fsync strictly before the ack.
                with open(path, "rb") as fh:
                    observed.append(record in fh.read())

            stream.append(record)
            disk.write(len(record), on_durable)
            deadline = asyncio.get_event_loop().time() + 5.0
            while not observed and asyncio.get_event_loop().time() < deadline:
                await asyncio.sleep(0.002)
            assert observed == [True]
            disk.close()

        asyncio.run(main())

    def test_torn_tail_truncates_to_complete_frames_on_reopen(self, tmp_path):
        path = os.path.join(str(tmp_path), "vol.log")
        volume = LogVolume.at_path(path)
        stream = volume.stream("s")
        records = [b"rec-%d" % i for i in range(3)]
        for record in records:
            stream.append(record)
        volume.flush()
        volume.close()
        with open(path, "ab") as fh:
            # Half a frame header: what a kill -9 mid-append leaves.
            fh.write(b"GLV1\x00\x00")
        reopened = LogVolume.at_path(path)
        recovered = reopened.stream("s")
        assert len(recovered) == 3
        assert [recovered.read(i) for i in range(3)] == records
        # The healed log accepts appends exactly where the acked
        # prefix ended.
        assert recovered.append(b"rec-3") == 3
        reopened.close()
