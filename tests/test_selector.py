"""Tests for the JMS message-selector parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching.predicates import Eq, In, Prefix
from repro.matching.selector import SelectorSyntaxError, parse_selector


def matches(selector, attrs):
    return parse_selector(selector).matches(attrs)


class TestComparisons:
    def test_equality(self):
        assert matches("symbol = 'IBM'", {"symbol": "IBM"})
        assert not matches("symbol = 'IBM'", {"symbol": "MSFT"})

    def test_inequality(self):
        assert matches("qty <> 5", {"qty": 6})
        assert not matches("qty <> 5", {"qty": 5})
        assert not matches("qty <> 5", {})  # absent attr never matches

    def test_ordering(self):
        assert matches("price > 10", {"price": 11})
        assert matches("price >= 10", {"price": 10})
        assert matches("price < 10", {"price": 9.5})
        assert matches("price <= 10", {"price": 10})
        assert not matches("price > 10", {"price": 10})

    def test_float_literals(self):
        assert matches("price >= 10.5", {"price": 10.5})
        assert matches("price < .75", {"price": 0.5})

    def test_string_escaping(self):
        assert matches("name = 'O''Brien'", {"name": "O'Brien"})

    def test_boolean_literals(self):
        assert matches("active = TRUE", {"active": True})
        assert matches("active = false", {"active": False})

    def test_bare_boolean_attribute(self):
        assert matches("active", {"active": True})
        assert not matches("active", {"active": False})


class TestCompound:
    def test_and_or_precedence(self):
        # AND binds tighter than OR.
        sel = "a = 1 OR b = 2 AND c = 3"
        assert matches(sel, {"a": 1})
        assert matches(sel, {"b": 2, "c": 3})
        assert not matches(sel, {"b": 2})

    def test_parentheses(self):
        sel = "(a = 1 OR b = 2) AND c = 3"
        assert matches(sel, {"a": 1, "c": 3})
        assert not matches(sel, {"a": 1})

    def test_not(self):
        assert matches("NOT a = 1", {"a": 2})
        assert not matches("NOT a = 1", {"a": 1})
        assert matches("NOT (a = 1 AND b = 2)", {"a": 1})

    def test_between(self):
        assert matches("x BETWEEN 2 AND 5", {"x": 3})
        assert matches("x BETWEEN 2 AND 5", {"x": 2})
        assert not matches("x BETWEEN 2 AND 5", {"x": 6})
        assert matches("x NOT BETWEEN 2 AND 5", {"x": 6})

    def test_in(self):
        assert matches("g IN (1, 3, 5)", {"g": 3})
        assert not matches("g IN (1, 3, 5)", {"g": 2})
        assert matches("g NOT IN (1, 3)", {"g": 2})
        assert matches("sym IN ('IBM', 'MSFT')", {"sym": "IBM"})

    def test_is_null(self):
        assert matches("x IS NULL", {"y": 1})
        assert not matches("x IS NULL", {"x": 1})
        assert matches("x IS NOT NULL", {"x": 1})

    def test_like_prefix(self):
        pred = parse_selector("sym LIKE 'IBM%'")
        assert isinstance(pred, Prefix)  # indexed-friendly compile
        assert pred.matches({"sym": "IBM.N"})
        assert not pred.matches({"sym": "MSFT"})

    def test_like_general(self):
        assert matches("sym LIKE '%X_Z'", {"sym": "abcXYZ"})
        assert not matches("sym LIKE '%X_Z'", {"sym": "abcXZ"})
        assert matches("sym NOT LIKE 'A%'", {"sym": "B"})

    def test_case_insensitive_keywords(self):
        assert matches("a = 1 and not b = 2", {"a": 1, "b": 3})


class TestCompileTargets:
    def test_equality_compiles_to_eq(self):
        assert parse_selector("g = 5") == Eq("g", 5)

    def test_in_compiles_to_in(self):
        assert parse_selector("g IN (1, 2)") == In("g", [1, 2])

    def test_indexability_preserved(self):
        pred = parse_selector("g = 1 AND price > 5")
        assert pred.indexable_equalities() == ("g", frozenset([1]))


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "= 5",
        "a =",
        "a BETWEEN 1",
        "a IN 1",
        "a IN ()",
        "a LIKE 5",
        "a IS 5",
        "(a = 1",
        "a = 1 extra garbage =",
        "a NOT = 1",
        "a = 'unterminated",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(SelectorSyntaxError):
            parse_selector(bad)


@given(
    st.integers(0, 5), st.integers(0, 5),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
)
@settings(max_examples=100)
def test_comparison_agrees_with_python(attr_value, bound, op):
    pred = parse_selector(f"x {op} {bound}")
    py = {"=": "==", "<>": "!="}.get(op, op)
    expected = eval(f"{attr_value} {py} {bound}")
    assert pred.matches({"x": attr_value}) == expected
