"""Unit and property tests for the tick map (knowledge representation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.tickmap import TickMap
from repro.core.ticks import Tick


def ev(t):
    return Event("P1", t, {"g": t % 4})


class TestKinds:
    def test_default_is_q(self):
        tm = TickMap()
        assert tm.kind(5) is Tick.Q

    def test_set_d(self):
        tm = TickMap()
        assert tm.set_d(5, ev(5)) is True
        assert tm.kind(5) is Tick.D
        assert tm.event_at(5).timestamp == 5

    def test_set_d_idempotent(self):
        tm = TickMap()
        tm.set_d(5, ev(5))
        assert tm.set_d(5, ev(5)) is False
        assert tm.d_count == 1

    def test_set_s_range(self):
        tm = TickMap()
        tm.set_s(3, 7)
        for t in range(3, 8):
            assert tm.kind(t) is Tick.S
        assert tm.kind(2) is Tick.Q
        assert tm.kind(8) is Tick.Q

    def test_d_survives_s_assertion(self):
        tm = TickMap()
        tm.set_d(5, ev(5))
        tm.set_s(3, 7)
        assert tm.kind(5) is Tick.D
        assert tm.s_over_d_conflicts == 1

    def test_d_upgrades_s(self):
        tm = TickMap()
        tm.set_s(3, 7)
        tm.set_d(5, ev(5))
        assert tm.kind(5) is Tick.D
        assert tm.d_over_s_upgrades == 1

    def test_lost_prefix(self):
        tm = TickMap()
        tm.set_s(1, 10)
        tm.set_d(12, ev(12))
        tm.set_lost_below(12)
        assert tm.kind(5) is Tick.L
        assert tm.kind(11) is Tick.L
        assert tm.kind(12) is Tick.D

    def test_lost_prefix_monotone(self):
        tm = TickMap()
        tm.set_lost_below(10)
        tm.set_lost_below(5)  # no regression
        assert tm.lost_below == 10

    def test_stale_info_below_lost_ignored(self):
        tm = TickMap()
        tm.set_lost_below(10)
        assert tm.set_d(5, ev(5)) is False
        tm.set_s(3, 7)
        assert tm.kind(5) is Tick.L


class TestDoubtHorizon:
    def test_initial(self):
        assert TickMap().doubt_horizon(0) == 0

    def test_advances_over_contiguous_knowledge(self):
        tm = TickMap()
        tm.set_s(1, 4)
        tm.set_d(5, ev(5))
        assert tm.doubt_horizon(0) == 5

    def test_stops_at_gap(self):
        tm = TickMap()
        tm.set_s(1, 3)
        tm.set_s(5, 9)
        assert tm.doubt_horizon(0) == 3
        tm.set_d(4, ev(4))
        assert tm.doubt_horizon(0) == 9

    def test_through_lost_prefix(self):
        tm = TickMap()
        tm.set_lost_below(5)
        assert tm.doubt_horizon(0) == 4
        tm.set_s(5, 8)
        assert tm.doubt_horizon(0) == 8

    def test_from_nonzero_base(self):
        tm = TickMap()
        tm.set_s(10, 20)
        assert tm.doubt_horizon(9) == 20
        assert tm.doubt_horizon(5) == 5


class TestRuns:
    def test_runs_partition_span(self):
        tm = TickMap()
        tm.set_lost_below(3)
        tm.set_s(4, 6)
        tm.set_d(7, ev(7))
        tm.set_s(8, 8)
        runs = list(tm.runs_between(1, 10))
        spans = [(r.start, r.end, r.kind) for r in runs]
        assert spans == [
            (1, 2, Tick.L),
            (3, 3, Tick.Q),
            (4, 6, Tick.S),
            (7, 7, Tick.D),
            (8, 8, Tick.S),
            (9, 10, Tick.Q),
        ]
        assert runs[3].event.timestamp == 7

    def test_runs_empty_span(self):
        assert list(TickMap().runs_between(5, 4)) == []

    def test_events_between(self):
        tm = TickMap()
        for t in (3, 6, 9):
            tm.set_d(t, ev(t))
        assert [e.timestamp for e in tm.events_between(4, 9)] == [6, 9]

    def test_unknown_within(self):
        tm = TickMap()
        tm.set_s(3, 5)
        tm.set_d(8, ev(8))
        assert tm.unknown_within(1, 10).as_tuples() == [(1, 2), (6, 7), (9, 10)]

    def test_unknown_within_respects_lost(self):
        tm = TickMap()
        tm.set_lost_below(5)
        assert tm.unknown_within(1, 8).as_tuples() == [(5, 8)]

    def test_forget_below(self):
        tm = TickMap()
        tm.set_s(1, 5)
        tm.set_d(6, ev(6))
        tm.forget_below(6)
        assert tm.kind(3) is Tick.Q  # forgotten, reads as unknown
        assert tm.kind(6) is Tick.D

    def test_max_known(self):
        tm = TickMap()
        assert tm.max_known() == -1
        tm.set_lost_below(4)
        assert tm.max_known() == 3
        tm.set_s(7, 9)
        assert tm.max_known() == 9


# ---------------------------------------------------------------------------
# Property tests: accumulation lattice
# ---------------------------------------------------------------------------
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("d"), st.integers(0, 60), st.just(0)),
        st.tuples(st.just("s"), st.integers(0, 60), st.integers(0, 8)),
        st.tuples(st.just("l"), st.integers(0, 30), st.just(0)),
    ),
    max_size=30,
)


def _apply(ops):
    tm = TickMap()
    for op, a, length in ops:
        if op == "d":
            tm.set_d(a, ev(a))
        elif op == "s":
            tm.set_s(a, a + length)
        else:
            tm.set_lost_below(a)
    return tm


@given(_ops)
@settings(max_examples=150)
def test_accumulation_is_monotone(ops):
    """Once a tick is non-Q it never returns to Q, and L is a prefix."""
    tm = TickMap()
    known = {}
    max_lost = 0
    for op, a, length in ops:
        if op == "d":
            tm.set_d(a, ev(a))
        elif op == "s":
            tm.set_s(a, a + length)
        else:
            tm.set_lost_below(a)
            max_lost = max(max_lost, a)
        for t in range(0, 75):
            kind = tm.kind(t)
            if t < max_lost:
                assert kind is Tick.L
            elif t in known and known[t] is not Tick.Q and kind is not Tick.L:
                # D is terminal; S may upgrade to D only.
                if known[t] is Tick.D:
                    assert kind is Tick.D
                else:
                    assert kind in (Tick.S, Tick.D)
            known[t] = kind


@given(_ops, st.integers(0, 40), st.integers(0, 40))
@settings(max_examples=150)
def test_runs_partition_and_agree_with_kind(ops, lo, span):
    tm = _apply(ops)
    hi = lo + span
    runs = list(tm.runs_between(lo, hi))
    # Runs exactly tile [lo, hi] in order.
    cursor = lo
    for run in runs:
        assert run.start == cursor
        assert run.end >= run.start
        cursor = run.end + 1
        for t in range(run.start, min(run.end, run.start + 5) + 1):
            assert tm.kind(t) is run.kind
        if run.kind is Tick.D:
            assert run.start == run.end
            assert run.event is not None
    assert cursor == hi + 1


@given(_ops, st.integers(0, 60))
@settings(max_examples=150)
def test_doubt_horizon_correct(ops, base):
    tm = _apply(ops)
    h = tm.doubt_horizon(base)
    assert h >= base
    for t in range(base + 1, h + 1):
        assert tm.kind(t) is not Tick.Q
    assert tm.kind(h + 1) is Tick.Q or True  # next tick may be known only if
    # h+1 is part of an interval not adjacent — verify directly:
    if tm.kind(h + 1) is not Tick.Q:
        # horizon must be maximal
        raise AssertionError(f"horizon {h} not maximal; {h+1} is {tm.kind(h+1)}")
