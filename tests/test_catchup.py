"""Tests for catchup streams: PFS-driven recovery and switchover."""

import pytest

from repro.core.catchup import CatchupStream
from repro.core.constream import ConsolidatedStream
from repro.core.events import Event
from repro.core.messages import (
    EventMessage,
    GapMessage,
    KnowledgeUpdate,
    SilenceMessage,
)
from repro.core.subscription import SubscriptionRegistry
from repro.matching.engine import MatchingEngine
from repro.matching.predicates import Eq, Everything
from repro.net.simtime import Scheduler
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.table import PersistentTable


def ev(t, g=0):
    return Event("P1", t, {"g": g})


def upd(d=(), s=(), l=()):
    return KnowledgeUpdate(
        "P1",
        d_events=[e if isinstance(e, Event) else ev(e) for e in d],
        s_ranges=list(s),
        l_ranges=list(l),
    )


class Env:
    """A constream that has progressed, plus one catchup subscriber."""

    def __init__(self, buffer_qs=5000, nack_window=256):
        self.sim = Scheduler()
        self.registry = SubscriptionRegistry(PersistentTable("s"), PersistentTable("r"))
        self.engine = MatchingEngine()
        self.pfs = PersistentFilteringSubsystem()
        self.meta = PersistentTable("meta")
        self.cs = ConsolidatedStream(
            "P1", self.sim, self.registry, self.engine, self.pfs, self.meta,
            deliver=lambda *a: None,
        )
        self.sub = self.registry.create("s1", Everything())
        self.engine.add("s1", Everything())
        self.buffer_qs = buffer_qs
        self.nack_window = nack_window
        self.delivered = []
        self.nacks = []
        self.switched = []

    def feed_constream(self, d=(), s=()):
        self.cs.accumulate(upd(d=d, s=s))

    def start_catchup(self, start_ts):
        self.catchup = CatchupStream(
            self.sim, "P1", self.sub, start_ts, self.pfs, self.cs,
            deliver=self.delivered.append,
            send_nack=lambda r: self.nacks.append(r.copy()),
            on_switchover=lambda: self.switched.append(self.sim.now),
            buffer_qs=self.buffer_qs,
            nack_window_ticks=self.nack_window,
        )
        return self.catchup

    def answer_nacks(self, events_by_ts, lost_below=0):
        """Act as the upstream: answer outstanding nacks from a dict."""
        while self.nacks:
            ranges = self.nacks.pop(0)
            reply = upd()
            for iv in ranges:
                for t in range(iv.start, iv.end + 1):
                    if t < lost_below:
                        reply.l_ranges.append((t, t))
                    elif t in events_by_ts:
                        reply.d_events.append(events_by_ts[t])
                    else:
                        reply.s_ranges.append((t, t))
            self.catchup.on_knowledge(reply)


class TestCatchupFlow:
    def test_recovers_missed_events_in_order(self):
        env = Env()
        events = {t: ev(t) for t in (10, 20, 30)}
        env.feed_constream(d=list(events.values()), s=[(1, 9), (11, 19), (21, 29), (31, 40)])
        assert env.cs.latest_delivered == 40
        env.start_catchup(0)
        env.sim.run_until(50)   # curiosity poll fires
        env.answer_nacks(events)
        got = [m for m in env.delivered if isinstance(m, EventMessage)]
        assert [m.t for m in got] == [10, 20, 30]
        assert env.switched  # caught up and switched over

    def test_silence_from_pfs_needs_no_nacks(self):
        env = Env()
        env.feed_constream(s=[(1, 100)])  # nothing matched anyone
        env.start_catchup(0)
        env.sim.run_until(50)
        # No Q ticks: catchup completes without any nack at all.
        assert env.nacks == []
        assert env.switched
        silences = [m for m in env.delivered if isinstance(m, SilenceMessage)]
        assert silences and silences[-1].t == 100

    def test_partial_start_point(self):
        env = Env()
        events = {t: ev(t) for t in (10, 20, 30)}
        env.feed_constream(d=list(events.values()), s=[(1, 9), (11, 19), (21, 29)])
        env.start_catchup(15)
        env.sim.run_until(50)
        env.answer_nacks(events)
        got = [m.t for m in env.delivered if isinstance(m, EventMessage)]
        assert got == [20, 30]

    def test_gap_for_released_ticks(self):
        env = Env()
        # PFS chopped below 20: catchup from 0 must nack (1, 19) and turn
        # the L reply into an explicit gap message.
        events = {t: ev(t) for t in (10, 25)}
        env.feed_constream(d=list(events.values()), s=[(1, 9), (11, 24), (26, 30)])
        env.pfs.chop_below("P1", 20)
        env.start_catchup(0)
        env.sim.run_until(50)
        env.answer_nacks(events, lost_below=20)
        gaps = [m for m in env.delivered if isinstance(m, GapMessage)]
        assert gaps, "expected an explicit gap for the released region"
        events_got = [m.t for m in env.delivered if isinstance(m, EventMessage)]
        assert events_got == [25]
        assert env.catchup.gap_ticks >= 19

    def test_switchover_exactly_at_delivery_cursor(self):
        env = Env()
        env.feed_constream(s=[(1, 50)])
        env.start_catchup(0)
        env.sim.run_until(20)
        assert env.switched
        assert env.catchup.cursor == env.cs.delivered_cursor

    def test_target_advances_during_catchup(self):
        env = Env()
        events = {10: ev(10)}
        env.feed_constream(d=[events[10]], s=[(1, 9), (11, 20)])
        env.start_catchup(0)
        env.sim.run_until(30)
        # Constream advances while catchup is in flight.
        events[25] = ev(25)
        env.feed_constream(d=[events[25]], s=[(21, 24), (26, 30)])
        env.answer_nacks(events)
        env.sim.run_until(100)
        env.answer_nacks(events)
        got = [m.t for m in env.delivered if isinstance(m, EventMessage)]
        assert got == [10, 25]
        assert env.switched

    def test_catchup_duration_measured(self):
        env = Env()
        env.feed_constream(s=[(1, 10)])
        stream = env.start_catchup(0)
        env.sim.run_until(50)
        assert env.switched
        assert stream.catchup_duration_ms <= 50


class TestFlowControl:
    def test_nacks_respect_window(self):
        env = Env(nack_window=3)
        events = {t: ev(t) for t in range(10, 100, 10)}
        s_ranges = [(1, 9)] + [(t + 1, t + 9) for t in range(10, 100, 10)]
        env.feed_constream(d=list(events.values()), s=s_ranges)
        env.start_catchup(0)
        env.sim.run_until(25)
        # Only the first window of Q ticks is nacked at once.
        assert env.nacks
        assert sum(r.tick_count() for r in env.nacks) <= 3

    def test_progress_releases_more_nacks(self):
        env = Env(nack_window=3)
        events = {t: ev(t) for t in range(10, 100, 10)}
        s_ranges = [(1, 9)] + [(t + 1, t + 9) for t in range(10, 100, 10)]
        env.feed_constream(d=list(events.values()), s=s_ranges)
        env.start_catchup(0)
        for _ in range(20):
            env.sim.run_until(env.sim.now + 25)
            env.answer_nacks(events)
        got = [m.t for m in env.delivered if isinstance(m, EventMessage)]
        assert got == sorted(events)
        assert env.switched

    def test_small_read_buffer_triggers_multiple_reads(self):
        env = Env(buffer_qs=2)
        events = {t: ev(t) for t in range(10, 100, 10)}
        s_ranges = [(1, 9)] + [(t + 1, t + 9) for t in range(10, 100, 10)]
        env.feed_constream(d=list(events.values()), s=s_ranges)
        stream = env.start_catchup(0)
        for _ in range(30):
            env.sim.run_until(env.sim.now + 25)
            env.answer_nacks(events)
        assert stream.pfs_reads >= 4
        got = [m.t for m in env.delivered if isinstance(m, EventMessage)]
        assert got == sorted(events)


class TestClose:
    def test_close_stops_nacking(self):
        env = Env()
        events = {10: ev(10)}
        env.feed_constream(d=[events[10]], s=[(1, 9), (11, 20)])
        stream = env.start_catchup(0)
        stream.close()
        env.sim.run_until(200)
        # Any nacks sent before close are fine; none after.
        count = len(env.nacks)
        env.sim.run_until(2_000)
        assert len(env.nacks) == count

    def test_knowledge_after_close_ignored(self):
        env = Env()
        env.feed_constream(s=[(1, 10)])
        stream = env.start_catchup(0)
        stream.close()
        stream.on_knowledge(upd(d=[ev(5)]))
        assert all(not isinstance(m, EventMessage) for m in env.delivered)
