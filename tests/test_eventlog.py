"""Tests for the PHB's persistent event log."""

import pytest

from repro.core.events import Event
from repro.net.simtime import Scheduler
from repro.storage.disk import SimDisk
from repro.storage.eventlog import PersistentEventLog
from repro.util.errors import StorageError


def ev(t, pubend="P1"):
    return Event(pubend, t, {"g": t % 4})


class TestBasics:
    def test_append_and_get(self):
        log = PersistentEventLog("P1")
        log.append(ev(10))
        assert log.get(10).timestamp == 10
        assert log.get(11) is None

    def test_wrong_pubend_rejected(self):
        log = PersistentEventLog("P1")
        with pytest.raises(StorageError):
            log.append(ev(10, pubend="P2"))

    def test_non_monotonic_append_rejected(self):
        log = PersistentEventLog("P1")
        log.append(ev(10))
        with pytest.raises(StorageError):
            log.append(ev(10))
        with pytest.raises(StorageError):
            log.append(ev(9))

    def test_read_range_inclusive(self):
        log = PersistentEventLog("P1")
        for t in [5, 10, 15, 20]:
            log.append(ev(t))
        assert [e.timestamp for e in log.read_range(10, 15)] == [10, 15]
        assert [e.timestamp for e in log.read_range(6, 19)] == [10, 15]
        assert log.read_range(21, 30) == []

    def test_max_timestamp_and_count(self):
        log = PersistentEventLog("P1")
        assert log.max_timestamp is None
        log.append(ev(5))
        log.append(ev(9))
        assert log.max_timestamp == 9
        assert log.live_event_count == 2

    def test_bytes_logged(self):
        log = PersistentEventLog("P1")
        log.append(ev(5))
        assert log.bytes_logged == ev(5).size_bytes


class TestChop:
    def test_chop_discards_prefix(self):
        log = PersistentEventLog("P1")
        for t in [5, 10, 15]:
            log.append(ev(t))
        assert log.chop_below(11) == 2
        assert log.get(5) is None
        assert log.get(15) is not None
        assert log.chopped_below == 11

    def test_chop_is_monotone(self):
        log = PersistentEventLog("P1")
        log.append(ev(5))
        log.chop_below(10)
        assert log.chop_below(8) == 0
        assert log.chopped_below == 10

    def test_append_below_chop_rejected(self):
        log = PersistentEventLog("P1")
        log.chop_below(100)
        with pytest.raises(StorageError):
            log.append(ev(50))


class TestDurability:
    def test_durable_callback_via_disk(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=10, sync_duration_ms=20)
        log = PersistentEventLog("P1", disk)
        done = []
        log.append(ev(5), on_durable=lambda: done.append(sim.now))
        assert log.get(5) is None  # not yet durable, not yet visible
        sim.run()
        assert done == [pytest.approx(30.0, abs=0.1)]
        assert log.get(5) is not None

    def test_crash_loses_staged_events(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=10, sync_duration_ms=20)
        log = PersistentEventLog("P1", disk)
        log.append(ev(5))
        sim.run_until(5)
        disk.crash_reset()
        log.crash_reset()
        sim.run()
        assert log.get(5) is None
        assert log.live_event_count == 0

    def test_durable_events_survive_crash(self):
        sim = Scheduler()
        disk = SimDisk(sim, "d", sync_interval_ms=10, sync_duration_ms=20)
        log = PersistentEventLog("P1", disk)
        log.append(ev(5))
        sim.run()   # durable
        log.append(ev(6))
        disk.crash_reset()
        log.crash_reset()
        sim.run()
        assert log.get(5) is not None
        assert log.get(6) is None
