"""Tests for metric collection and reporting helpers."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_series, format_table, percentile, summarize_series
from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.util.rate import BusyTracker, GaugeRate, RateCounter, Series


class TestRateHelpers:
    def test_rate_counter_window_rate(self):
        c = RateCounter("x")
        c.record(10)
        assert c.rate(1_000.0) == pytest.approx(10.0)
        c.record(5)
        assert c.rate(2_000.0) == pytest.approx(5.0)
        assert c.total == 15

    def test_rate_counter_zero_window(self):
        c = RateCounter("x")
        c.record()
        assert c.rate(0.0) == 0.0

    def test_gauge_rate(self):
        g = GaugeRate("ld")
        assert g.sample(0.0, 100.0) == 0.0  # first sample: no window
        assert g.sample(1_000.0, 1_100.0) == pytest.approx(1_000.0)
        assert g.sample(2_000.0, 1_600.0) == pytest.approx(500.0)

    def test_busy_tracker(self):
        b = BusyTracker()
        b.add_busy(250.0)
        assert b.idle_fraction(1_000.0) == pytest.approx(0.75)
        assert b.idle_fraction(2_000.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            b.add_busy(-1.0)

    def test_series_reductions(self):
        s = Series("x")
        for t, v in [(0, 1.0), (1, 3.0), (2, 5.0)]:
            s.append(t, v)
        assert s.mean() == 3.0
        assert s.min() == 1.0
        assert s.max() == 5.0
        assert len(s.between(1, 2)) == 2


class TestCollector:
    def test_gauge_and_counter_rate_sampling(self):
        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        state = {"count": 0, "gauge": 0.0}
        sim.every(10, lambda: state.__setitem__("count", state["count"] + 1))
        col.gauge("g", lambda: state["count"])
        col.counter_rate("r", lambda: float(state["count"]))
        col.start()
        sim.run_until(1_000)
        g = col.get("g")
        assert len(g) == 10
        assert g.values()[-1] == pytest.approx(100, abs=2)
        r = col.get("r")
        # ~1 increment per 10ms = 100/s.
        assert r.values()[-1] == pytest.approx(100.0, rel=0.1)

    def test_cpu_idle_probe(self):
        sim = Scheduler()
        node = Node(sim, "n")
        col = MetricsCollector(sim, interval_ms=100.0)
        col.cpu_idle("idle", node)
        col.start()
        sim.every(10, lambda: node.try_submit(5.0, lambda: None))
        sim.run_until(1_000)
        idle = col.get("idle")
        assert idle.values()[-1] == pytest.approx(0.5, abs=0.1)

    def test_matcher_probe(self):
        from repro.matching.engine import MatchingEngine
        from repro.matching.predicates import And, Eq, Everything, Gt, Or

        sim = Scheduler()
        eng = MatchingEngine()
        eng.add("narrow", And([Eq("g", 1), Gt("x", 5)]))
        eng.add("broad", Eq("g", 1))
        eng.add("opaque", Or([Eq("g", 2), Gt("x", 8)]))  # scan bucket
        col = MetricsCollector(sim, interval_ms=100.0)
        col.matcher("shb.match", eng)
        state = {"i": 0}

        def pump():
            state["i"] += 1
            eng.match({"g": state["i"] % 3, "x": state["i"] % 10})
            eng.matches_any({"g": state["i"] % 3, "x": state["i"] % 10})

        sim.every(10, pump)
        col.start()
        sim.run_until(1_000)
        # The opaque Or is evaluated per match call -> >=1 residual
        # eval per event on average (match + matches_any both count).
        assert col.get("shb.match.residual_evals_per_event").values()[-1] >= 0.5
        assert col.get("shb.match.atoms_per_event").values()[-1] > 0
        assert col.get("shb.match.scan_subs").values()[-1] == 1.0
        # "broad" covers "narrow": the aggregate consults 2 signatures
        # (broad + the opaque one), not 3.
        assert col.get("shb.match.aggregate_active").values()[-1] == 2.0

    def test_stop(self):
        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        col.gauge("g", lambda: 1.0)
        col.start()
        sim.run_until(250)
        col.stop()
        sim.run_until(1_000)
        assert len(col.get("g")) == 2


class TestReport:
    def test_format_table_alignment(self):
        out = format_table("Title", ["a", "bee"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bee" in lines[2]
        assert len(lines) == 6

    def test_summarize_series(self):
        s = Series("x")
        for i in range(10):
            s.append(i, float(i))
        summary = summarize_series(s, skip_warmup=2)
        assert summary["n"] == 8
        assert summary["min"] == 2.0
        assert summarize_series(Series("empty"))["n"] == 0

    def test_format_series_downsamples(self):
        s = Series("x")
        for i in range(10):
            s.append(i * 1000.0, float(i))
        out = format_series(s, every=2)
        assert out.count("t=") == 5

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
