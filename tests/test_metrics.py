"""Tests for metric collection and reporting helpers."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.metrics.report import format_series, format_table, percentile, summarize_series
from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.util.rate import BusyTracker, GaugeRate, RateCounter, Series


class TestRateHelpers:
    def test_rate_counter_window_rate(self):
        c = RateCounter("x")
        c.record(10)
        # First call has no baseline: it primes and emits nothing
        # (treating time 0 as a previous sample would dilute a counter
        # first consulted mid-run over a window nobody observed).
        assert c.rate(1_000.0) is None
        c.record(5)
        assert c.rate(2_000.0) == pytest.approx(5.0)
        c.record(4)
        assert c.rate(4_000.0) == pytest.approx(2.0)
        assert c.total == 19

    def test_rate_counter_primed(self):
        c = RateCounter("x")
        c.prime(0.0)
        c.record(10)
        assert c.rate(1_000.0) == pytest.approx(10.0)

    def test_rate_counter_zero_window(self):
        c = RateCounter("x")
        c.prime(0.0)
        c.record()
        assert c.rate(0.0) == 0.0

    def test_gauge_rate(self):
        g = GaugeRate("ld")
        assert g.sample(0.0, 100.0) is None  # no baseline yet
        assert g.sample(1_000.0, 1_100.0) == pytest.approx(1_000.0)
        assert g.sample(2_000.0, 1_600.0) == pytest.approx(500.0)

    def test_gauge_rate_primed(self):
        g = GaugeRate("ld")
        g.prime(1_000.0, 500.0)
        assert g.sample(2_000.0, 700.0) == pytest.approx(200.0)

    def test_busy_tracker(self):
        b = BusyTracker()
        b.add_busy(250.0)
        assert b.idle_fraction(1_000.0) == pytest.approx(0.75)
        assert b.idle_fraction(2_000.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            b.add_busy(-1.0)

    def test_series_reductions(self):
        s = Series("x")
        for t, v in [(0, 1.0), (1, 3.0), (2, 5.0)]:
            s.append(t, v)
        assert s.mean() == 3.0
        assert s.min() == 1.0
        assert s.max() == 5.0
        assert len(s.between(1, 2)) == 2


class TestCollector:
    def test_gauge_and_counter_rate_sampling(self):
        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        state = {"count": 0, "gauge": 0.0}
        sim.every(10, lambda: state.__setitem__("count", state["count"] + 1))
        col.gauge("g", lambda: state["count"])
        col.counter_rate("r", lambda: float(state["count"]))
        col.start()
        sim.run_until(1_000)
        g = col.get("g")
        assert len(g) == 10
        assert g.values()[-1] == pytest.approx(100, abs=2)
        r = col.get("r")
        # ~1 increment per 10ms = 100/s.
        assert r.values()[-1] == pytest.approx(100.0, rel=0.1)

    def test_cpu_idle_probe(self):
        sim = Scheduler()
        node = Node(sim, "n")
        col = MetricsCollector(sim, interval_ms=100.0)
        col.cpu_idle("idle", node)
        col.start()
        sim.every(10, lambda: node.try_submit(5.0, lambda: None))
        sim.run_until(1_000)
        idle = col.get("idle")
        assert idle.values()[-1] == pytest.approx(0.5, abs=0.1)

    def test_matcher_probe(self):
        from repro.matching.engine import MatchingEngine
        from repro.matching.predicates import And, Eq, Everything, Gt, Or

        sim = Scheduler()
        eng = MatchingEngine()
        eng.add("narrow", And([Eq("g", 1), Gt("x", 5)]))
        eng.add("broad", Eq("g", 1))
        eng.add("opaque", Or([Eq("g", 2), Gt("x", 8)]))  # scan bucket
        col = MetricsCollector(sim, interval_ms=100.0)
        col.matcher("shb.match", eng)
        state = {"i": 0}

        def pump():
            state["i"] += 1
            eng.match({"g": state["i"] % 3, "x": state["i"] % 10})
            eng.matches_any({"g": state["i"] % 3, "x": state["i"] % 10})

        sim.every(10, pump)
        col.start()
        sim.run_until(1_000)
        # The opaque Or is evaluated per match call -> >=1 residual
        # eval per event on average (match + matches_any both count).
        assert col.get("shb.match.residual_evals_per_event").values()[-1] >= 0.5
        assert col.get("shb.match.atoms_per_event").values()[-1] > 0
        assert col.get("shb.match.scan_subs").values()[-1] == 1.0
        # "broad" covers "narrow": the aggregate consults 2 signatures
        # (broad + the opaque one), not 3.
        assert col.get("shb.match.aggregate_active").values()[-1] == 2.0

    def test_stop(self):
        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        col.gauge("g", lambda: 1.0)
        col.start()
        sim.run_until(250)
        col.stop()
        sim.run_until(1_000)
        assert len(col.get("g")) == 2

    def test_counter_rate_primed_on_midrun_start(self):
        """Regression: a collector started mid-run used to report a
        first window diluted over everything since time 0."""
        sim = Scheduler()
        state = {"count": 0}
        sim.every(10, lambda: state.__setitem__("count", state["count"] + 1))
        col = MetricsCollector(sim, interval_ms=100.0)
        col.counter_rate("r", lambda: float(state["count"]))
        sim.run_until(5_000)   # 500 increments before the collector starts
        col.start()
        sim.run_until(6_000)
        values = col.get("r").values()
        assert len(values) == 10
        # Every window is ~100/s; the old behavior made the first sample
        # (500 counts + 1 window) / 5.1s ≈ 98... at rate 100 that hides,
        # so check directly: no window may see the pre-start backlog.
        for v in values:
            assert v == pytest.approx(100.0, rel=0.15)

    def test_probe_added_to_running_collector_primes_immediately(self):
        sim = Scheduler()
        state = {"count": 0}
        sim.every(10, lambda: state.__setitem__("count", state["count"] + 1))
        col = MetricsCollector(sim, interval_ms=100.0)
        col.start()
        sim.run_until(2_000)
        col.counter_rate("late", lambda: float(state["count"]))
        sim.run_until(3_000)
        values = col.get("late").values()
        assert values  # the probe did sample
        for v in values:
            assert v == pytest.approx(100.0, rel=0.15)

    def test_ratio_skips_zero_denominator_window(self):
        """Regression: ratio used to append 0.0 when the denominator
        window was empty, conflating idle windows with zero ratios."""
        sim = Scheduler()
        state = {"num": 0.0, "den": 0.0}

        def pump():
            if 300 <= sim.now <= 600:
                return  # stall: neither counter moves
            state["num"] += 20.0
            state["den"] += 10.0

        sim.every(10, pump)
        col = MetricsCollector(sim, interval_ms=100.0)
        col.ratio("r", lambda: state["num"], lambda: state["den"])
        col.start()
        sim.run_until(1_000)
        values = col.get("r").values()
        # Three windows were stalled and must be skipped, not 0.0.
        assert len(values) < 10
        assert values
        for v in values:
            assert v == pytest.approx(2.0)

    def test_get_unknown_series_raises(self):
        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        col.gauge("present", lambda: 1.0)
        with pytest.raises(KeyError) as exc:
            col.get("presnet")  # typo
        assert "presnet" in str(exc.value)
        assert "present" in str(exc.value)  # registered names aid the fix

    def test_latency_probe(self):
        sim = Scheduler()
        samples = []
        col = MetricsCollector(sim, interval_ms=100.0)
        hist = col.latency("lat", lambda: samples)
        samples.extend([5.0, 5.0])  # pre-start samples must not count
        col.start()
        sim.every(40, lambda: samples.append(10.0))
        sim.run_until(1_000)
        # Probes ran through t=1000; the t=1000 append lands after the
        # t=1000 probe, so 24 of the 25 samples are consumed — and none
        # of the pre-start ones.
        assert hist.count == 24
        assert hist.max == pytest.approx(10.0)
        series = col.get("lat")
        assert series.values()
        for v in series.values():
            assert v == pytest.approx(10.0)

    def test_histogram_registration_reuses_instance(self):
        from repro.metrics.histogram import LatencyHistogram

        sim = Scheduler()
        col = MetricsCollector(sim, interval_ms=100.0)
        h1 = col.histogram("h")
        h2 = col.histogram("h")
        assert h1 is h2
        external = LatencyHistogram("ext")
        assert col.histogram("ext", external) is external
        assert col.histograms["ext"] is external


class TestRatioPartitionRegression:
    def test_link_batch_size_skips_partition_windows(self):
        """Chaos regression for the zero-denominator fix: while the only
        trafficked link is partitioned, no transmissions happen, so the
        batch-size ratio must skip those windows instead of logging 0.0
        (with window 0 every legitimate sample is exactly 1.0)."""
        from repro.broker.topology import build_two_broker
        from repro.client.publisher import PeriodicPublisher
        from repro.sim.failures import FailureSchedule

        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        pub = PeriodicPublisher(
            sim, overlay.phb, "P1", 100.0, attribute_fn=lambda i: {"g": i % 4}
        )
        col = MetricsCollector(sim, interval_ms=500.0)
        col.link_batching(sim, lambda: float(pub.published))
        faults = FailureSchedule(sim)
        faults.partition_link(overlay.links[0], at_ms=4_100.5, duration_ms=4_000.0)
        pub.start()
        col.start()
        sim.run_until(12_000)
        values = col.get("link.batch_size").values()
        assert values
        # The partition spans ~8 windows; they must be absent entirely.
        assert len(values) < 24
        for v in values:
            assert v >= 1.0  # 0.0 fabrications would fail here


class TestReport:
    def test_format_table_alignment(self):
        out = format_table("Title", ["a", "bee"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bee" in lines[2]
        assert len(lines) == 6

    def test_summarize_series(self):
        s = Series("x")
        for i in range(10):
            s.append(i, float(i))
        summary = summarize_series(s, skip_warmup=2)
        assert summary["n"] == 8
        assert summary["min"] == 2.0
        assert summarize_series(Series("empty"))["n"] == 0

    def test_format_series_downsamples(self):
        s = Series("x")
        for i in range(10):
            s.append(i * 1000.0, float(i))
        out = format_series(s, every=2)
        assert out.count("t=") == 5

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 100
        assert percentile([], 50) == 0.0
