"""Differential batch-vs-single property suite for the matching engine.

The batch entry points (``match_batch``, ``matches_any_batch``,
``match_at_batch``) are pure performance transforms: amortizing index
probes and counting loops across a batch must change *nothing* about
the answers.  These tests drive seeded subscription churn (adds,
removes, bulk ``replace_all`` refreshes) interleaved with event
batches, asserting three-way agreement after every step:

* ``match_batch`` ≡ one ``match`` call per event, in order;
* ``matches_any_batch`` ≡ one ``matches_any`` call per event;
* both ≡ the naive model (evaluate every predicate tree per event).

Churn matters because it is exactly what invalidates the batch caches
(probe cache, signature memo): a stale entry surviving an add/remove
is the bug class this suite exists to catch.  The predicate generator
covers the decomposable forms (equality, membership, ranges), the
opaque ones (``Or`` mixing attributes, negated ``Exists``), and
``Nothing()`` — the NeverAtom corner, whose atom indexes nowhere and
must never surface from a batch.

Batch sizes {1, 7, 64} cover the degenerate single-event batch, a
size that straddles churn boundaries, and one larger than most event
streams between churn steps (forcing ragged final chunks).  The quick
tests run one seed per batch size; the full sweep across every
(seed, batch size) pair is ``@pytest.mark.soak``.
"""

from __future__ import annotations

import random
from typing import Dict, List

import pytest

from repro.matching.engine import MATCH_CACHE_LIMIT, MatchingEngine
from repro.matching.predicates import (
    And, Between, Eq, Everything, Exists, Gt, In, Ne, Nothing, Or,
    Predicate, Prefix,
)
from repro.matching.topics import Topic

BATCH_SIZES = [1, 7, 64]
SEEDS = [13, 52, 907]
N_STEPS = 80


def _random_predicate(rng: random.Random) -> Predicate:
    """Every predicate family, weighted toward the hot decomposable
    forms but with the opaque and NeverAtom corners always in play."""
    roll = rng.random()
    if roll < 0.20:
        return Eq("g", rng.randrange(6))
    if roll < 0.34:
        return In("g", rng.sample(range(6), rng.randrange(1, 4)))
    if roll < 0.44:
        return Gt("x", rng.randrange(8))
    if roll < 0.52:
        return Between("x", rng.randrange(4), rng.randrange(4, 9))
    if roll < 0.66:
        return And(
            [Eq("g", rng.randrange(6)), Between("x", rng.randrange(4), rng.randrange(4, 9))]
        )
    if roll < 0.72:
        return Or([Eq("g", rng.randrange(6)), Gt("x", rng.randrange(8))])  # opaque
    if roll < 0.78:
        return Ne("g", rng.randrange(6))
    if roll < 0.82:
        return Prefix("sym", rng.choice(["IBM", "MS", "A"]))
    if roll < 0.86:
        return Topic(rng.choice(["a.b", "a.*", "a.#", "b.c"]))
    if roll < 0.90:
        return Exists("opt")
    if roll < 0.93:
        return ~Exists("opt")  # opaque Not
    if roll < 0.96:
        return Everything()
    return Nothing()  # NeverAtom: indexed nowhere, matches nothing


def _random_event(rng: random.Random) -> Dict[str, object]:
    attrs: Dict[str, object] = {
        "g": rng.randrange(7),
        "x": rng.randrange(10),
        "sym": rng.choice(["IBM.N", "MSFT", "AAPL", ""]),
        "_topic": rng.choice(["a.b", "a.b.c", "b.c", "a"]),
    }
    if rng.random() < 0.3:
        attrs["opt"] = rng.randrange(3)
    if rng.random() < 0.1:
        attrs["g"] = None
    if rng.random() < 0.05:
        attrs["x"] = [1, 2]  # unhashable: must bypass the probe cache
    return attrs


def _churn_step(rng: random.Random, eng: MatchingEngine, model: Dict[str, Predicate]) -> None:
    op = rng.random()
    if op < 0.55 or not model:
        sid = f"s{rng.randrange(40)}"
        pred = _random_predicate(rng)
        eng.add(sid, pred)
        model[sid] = pred
    elif op < 0.85:
        sid = rng.choice(list(model))
        eng.remove(sid)
        del model[sid]
    else:
        staged = dict(model)
        for sid in list(staged):
            r = rng.random()
            if r < 0.15:
                del staged[sid]
            elif r < 0.3:
                staged[sid] = _random_predicate(rng)
        staged[f"s{rng.randrange(40)}"] = _random_predicate(rng)
        eng.replace_all(staged)
        model.clear()
        model.update(staged)


def _drive(seed: int, batch_size: int, n_steps: int) -> None:
    rng = random.Random(seed)
    eng, model = MatchingEngine(), {}
    for step in range(n_steps):
        _churn_step(rng, eng, model)
        batch = [_random_event(rng) for _ in range(batch_size)]
        tag = f"seed={seed} bs={batch_size} step={step}"

        naive = [
            {sid for sid, p in model.items() if p.matches(attrs)} for attrs in batch
        ]
        got = eng.match_batch(batch)
        assert got == naive, f"{tag}: match_batch diverged from model"
        assert got == [eng.match(attrs) for attrs in batch], (
            f"{tag}: match_batch diverged from per-event match"
        )

        any_got = eng.matches_any_batch(batch)
        assert any_got == [bool(expected) for expected in naive], (
            f"{tag}: matches_any_batch diverged from model"
        )
        assert any_got == [eng.matches_any(attrs) for attrs in batch], (
            f"{tag}: matches_any_batch diverged from per-event matches_any"
        )


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_equals_single_under_churn(batch_size):
    _drive(SEEDS[0], batch_size, N_STEPS)


@pytest.mark.soak
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_equals_single_full_sweep(seed, batch_size):
    _drive(seed, batch_size, 4 * N_STEPS)


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batch_toggle_is_invisible(batch_size):
    """``batch_matching = False`` must be indistinguishable: same
    results from the same call sequence, fresh engines either way."""
    def run(enabled: bool) -> List[List[object]]:
        rng = random.Random(SEEDS[1])
        eng, model = MatchingEngine(), {}
        out: List[List[object]] = []
        try:
            MatchingEngine.batch_matching = enabled
            for _ in range(N_STEPS // 2):
                _churn_step(rng, eng, model)
                batch = [_random_event(rng) for _ in range(batch_size)]
                out.append(
                    [eng.match_batch(batch), eng.matches_any_batch(batch)]
                )
        finally:
            MatchingEngine.batch_matching = True
        return out

    assert run(True) == run(False)


def test_match_at_batch_equals_match_at():
    """Mixed hit/miss batches must return what per-event ``match_at``
    would, and leave the cache able to serve every event as a hit."""
    rng = random.Random(SEEDS[2])
    eng, model = MatchingEngine(), {}
    for _ in range(20):
        _churn_step(rng, eng, model)
    events = [(f"p:{i}", _random_event(rng)) for i in range(30)]
    # Prime a prefix so the batch sees hits and misses interleaved.
    for eid, attrs in events[:10][::2]:
        eng.match_at(eid, attrs)
    cold = MatchingEngine()
    cold.replace_all(model)
    expected = [cold.match_at(eid, attrs) for eid, attrs in events]
    assert eng.match_at_batch(events) == expected
    # Every id is now cached: a second pass is all hits.
    hits_before = eng.cache_hits
    assert eng.match_at_batch(events) == expected
    assert eng.cache_hits == hits_before + len(events)


def test_match_at_batch_under_eviction(monkeypatch):
    """Eviction mid-batch must not corrupt answers: with the FIFO bound
    shrunk below the batch size, every result still matches a cold
    engine even though early insertions are evicted by later ones."""
    monkeypatch.setattr("repro.matching.engine.MATCH_CACHE_LIMIT", 4)
    rng = random.Random(SEEDS[0])
    eng, model = MatchingEngine(), {}
    for _ in range(15):
        _churn_step(rng, eng, model)
    events = [(f"p:{i}", _random_event(rng)) for i in range(12)]
    cold = MatchingEngine()
    cold.replace_all(model)
    expected = [cold.match_at(eid, attrs) for eid, attrs in events]
    assert eng.match_at_batch(events) == expected
    assert len(eng._match_cache) <= 4


def test_never_atom_only_engine_batches_empty():
    """An engine holding only ``Nothing()`` subscriptions: the batch
    path must surface no keys (NeverAtom indexes nowhere) while an
    ``Everything()`` arriving mid-stream flips every later answer."""
    eng = MatchingEngine()
    eng.add("never1", Nothing())
    eng.add("never2", And([Eq("g", 1), Nothing()]))
    batch = [{"g": 1}, {"g": 2}]
    assert eng.match_batch(batch) == [set(), set()]
    assert eng.matches_any_batch(batch) == [False, False]
    eng.add("all", Everything())
    assert eng.match_batch(batch) == [{"all"}, {"all"}]
    assert eng.matches_any_batch(batch) == [True, True]


def test_module_limit_is_the_default():
    # The eviction tests above monkeypatch the bound; pin the real one
    # so an accidental production shrink is loud.
    assert MATCH_CACHE_LIMIT == 4096
