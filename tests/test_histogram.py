"""Unit tests for the fixed-bucket log-scale latency histogram."""

import random

import pytest

from repro.metrics.histogram import BUCKET_FACTOR, LatencyHistogram
from repro.metrics.report import percentile


class TestBuckets:
    def test_bounds_are_log_scale(self):
        bounds = LatencyHistogram.bounds
        assert bounds[0] == pytest.approx(0.05)
        assert bounds[-1] == pytest.approx(120_000.0)
        for lo, hi in zip(bounds, bounds[1:-1]):
            assert hi / lo == pytest.approx(BUCKET_FACTOR)

    def test_boundary_value_lands_in_its_bucket(self):
        # A value exactly on a bucket bound belongs to that bucket
        # (bisect_left): observing bound b must report percentiles <= b.
        h = LatencyHistogram("h")
        bound = LatencyHistogram.bounds[10]
        h.observe(bound)
        assert h.p50 == pytest.approx(bound)

    def test_negative_clamped_to_zero(self):
        h = LatencyHistogram("h")
        h.observe(-5.0)
        assert h.count == 1
        assert h.min == 0.0
        assert h.p99 == 0.0

    def test_overflow_bucket(self):
        h = LatencyHistogram("h")
        h.observe(500_000.0)
        assert h.count == 1
        assert h.p99 == pytest.approx(500_000.0)  # overflow reports max
        assert h.snapshot()["buckets"]["inf"] == 1

    def test_empty(self):
        h = LatencyHistogram("empty")
        assert h.count == 0
        assert h.sum == 0.0
        assert h.p50 == 0.0 and h.p99 == 0.0
        assert h.mean == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == {}


class TestMerge:
    def test_merge_adds_counts(self):
        a, b = LatencyHistogram("a"), LatencyHistogram("b")
        for v in [1.0, 2.0, 3.0]:
            a.observe(v)
        for v in [100.0, 200.0]:
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.sum == pytest.approx(306.0)
        assert a.max == pytest.approx(200.0)
        assert a.min == pytest.approx(1.0)
        # b is untouched.
        assert b.count == 2

    def test_merge_percentiles_match_combined(self):
        rng = random.Random(42)
        values = [rng.uniform(0.1, 5_000.0) for _ in range(2_000)]
        combined = LatencyHistogram("combined")
        parts = [LatencyHistogram(f"part{i}") for i in range(4)]
        for i, v in enumerate(values):
            combined.observe(v)
            parts[i % 4].observe(v)
        merged = LatencyHistogram("merged")
        for part in parts:
            merged.merge(part)
        for pct in (50, 95, 99):
            assert merged.percentile(pct) == pytest.approx(combined.percentile(pct))
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)

    def test_merge_rejects_mismatched_bounds(self):
        class ShorterBounds(LatencyHistogram):
            bounds = LatencyHistogram.bounds[:-1]  # simulated drift

        a = LatencyHistogram("a")
        b = ShorterBounds("b")
        with pytest.raises(ValueError):
            a.merge(b)


class TestPercentiles:
    def test_monotone_in_pct(self):
        rng = random.Random(7)
        h = LatencyHistogram("h")
        for _ in range(5_000):
            h.observe(rng.expovariate(1 / 40.0))
        last = 0.0
        for pct in range(1, 101):
            p = h.percentile(pct)
            assert p >= last
            last = p

    def test_vs_exact_percentile_within_bucket_factor(self):
        """The histogram's percentile must bracket the exact (raw-data)
        percentile: never below it, never beyond one bucket factor."""
        rng = random.Random(99)
        values = [rng.uniform(0.5, 10_000.0) for _ in range(5_000)]
        h = LatencyHistogram("h")
        for v in values:
            h.observe(v)
        for pct in (50, 90, 95, 99):
            exact = percentile(values, pct)
            approx = h.percentile(pct)
            assert approx >= exact * 0.999
            assert approx <= exact * BUCKET_FACTOR

    def test_percentile_clamped_to_observed_max(self):
        h = LatencyHistogram("h")
        h.observe(10.0)
        assert h.p99 <= 10.0 * BUCKET_FACTOR
        assert h.p99 >= 10.0 or h.p99 == pytest.approx(10.0)
        assert h.max == pytest.approx(10.0)
        # Single observation: every percentile is that bucket.
        assert h.percentile(1) == h.percentile(99)

    def test_pct_zero_returns_min(self):
        h = LatencyHistogram("h")
        h.observe(3.0)
        h.observe(300.0)
        assert h.percentile(0) == pytest.approx(3.0)


class TestSnapshot:
    def test_snapshot_fields(self):
        h = LatencyHistogram("lat")
        for v in [1.0, 10.0, 100.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["name"] == "lat"
        assert snap["count"] == 3
        assert snap["sum_ms"] == pytest.approx(111.0)
        assert snap["mean_ms"] == pytest.approx(37.0)
        assert snap["min_ms"] == pytest.approx(1.0)
        assert snap["max_ms"] == pytest.approx(100.0)
        assert sum(snap["buckets"].values()) == 3
        # Only non-empty buckets are serialized.
        assert len(snap["buckets"]) == 3
