"""Scale topology generators: forests, headless durables, failover.

Covers the wide/deep overlay generator (:func:`build_deep_overlay`),
deterministic seeded subscriber placement, headless durable
registration (:meth:`SubscriberHostingBroker.register_durable`),
redundant-path failover onto spares, and — because generated
topologies must be exactly as deterministic as the hand-built ones —
a byte-identical double run plus a recorded digest on a deep forest.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
from typing import List

import pytest

from repro import DurableSubscriber, In, Node, PeriodicPublisher, Scheduler
from repro.broker.topology import build_deep_overlay, place_durable_subscribers
from repro.core import messages as M
from repro.metrics.collector import MetricsCollector
from repro.util.errors import ProtocolError


def _small_forest(sim, **kwargs):
    kwargs.setdefault("n_trees", 2)
    kwargs.setdefault("pubends_per_tree", 1)
    kwargs.setdefault("fanout", (2,))
    kwargs.setdefault("shbs_per_leaf", 2)
    kwargs.setdefault("spares_per_level", 1)
    return build_deep_overlay(sim, **kwargs)


class TestBuildDeepOverlay:
    def test_shape_and_naming(self):
        sim = Scheduler()
        fed = _small_forest(sim)
        assert len(fed.trees) == 2
        # Per tree: 2 intermediates + 1 spare, 2 leaves x 2 SHBs.
        for k, tree in enumerate(fed.trees):
            assert tree.phb.name == f"phb{k + 1}"
            assert tree.pubend_names == [f"p{k + 1}.1"]
            assert len(tree.intermediates) == 3  # 2 live + 1 spare
            assert len(tree.shbs) == 4
        assert len(fed.shbs) == 8
        assert set(fed.spares) == {(0, 1), (1, 1)}
        # Spares are childless and cold at their parent.
        for (k, _level), spares in fed.spares.items():
            for spare in spares:
                assert not spare.child_names
                parent = fed.trees[k].parent_of(spare)
                assert parent.child_filter_ready[spare.name] is False

    def test_star_per_tree_with_empty_fanout(self):
        sim = Scheduler()
        fed = build_deep_overlay(sim, n_trees=1, fanout=(), shbs_per_leaf=3)
        tree = fed.trees[0]
        assert tree.phb.name == "phb"
        assert tree.pubend_names == ["p1"]
        assert not tree.intermediates
        assert [s.name for s in tree.shbs] == ["shb1", "shb2", "shb3"]
        assert all(s.parent_name == "phb" for s in tree.shbs)

    def test_lookup_helpers(self):
        sim = Scheduler()
        fed = _small_forest(sim)
        shb = fed.shbs[5]
        assert fed.shb_by_name(shb.name) is shb
        assert fed.broker_by_name(shb.name) is shb
        assert fed.tree_of(shb) is fed.trees[1]


class TestPlacement:
    def test_same_seed_places_identically(self):
        placements = []
        for _ in range(2):
            sim = Scheduler()
            fed = _small_forest(sim)
            preds = [In("group", (g,)) for g in range(4)]
            placements.append(
                place_durable_subscribers(fed, 40, preds, seed=9)
            )
        assert placements[0] == placements[1]

    def test_different_seeds_place_differently(self):
        sim = Scheduler()
        fed_a = _small_forest(sim)
        fed_b = _small_forest(Scheduler())
        preds = [In("group", (g,)) for g in range(4)]
        a = place_durable_subscribers(fed_a, 40, preds, seed=1)
        b = place_durable_subscribers(fed_b, 40, preds, seed=2)
        assert a != b

    def test_every_subscriber_lands_exactly_once(self):
        sim = Scheduler()
        fed = _small_forest(sim)
        preds = [In("group", (g,)) for g in range(4)]
        placed = place_durable_subscribers(fed, 30, preds, seed=3)
        all_ids = [s for ids in placed.values() for s in ids]
        assert sorted(all_ids) == sorted(f"sub{i}" for i in range(30))
        for shb_name, ids in placed.items():
            shb = fed.shb_by_name(shb_name)
            for sub_id in ids:
                assert sub_id in shb.registry


class TestRegisterDurable:
    def _star(self):
        sim = Scheduler()
        fed = build_deep_overlay(sim, n_trees=1, fanout=(), shbs_per_leaf=2)
        return sim, fed, fed.trees[0]

    def test_duplicate_refused(self):
        _sim, fed, _tree = self._star()
        shb = fed.shbs[0]
        shb.register_durable("h1", In("group", (0,)))
        with pytest.raises(ProtocolError):
            shb.register_durable("h1", In("group", (1,)))

    def test_draining_refused(self):
        _sim, fed, _tree = self._star()
        shb = fed.shbs[0]
        shb.begin_drain()
        with pytest.raises(ProtocolError):
            shb.register_durable("h1", In("group", (0,)))

    def test_headless_durable_is_matched_and_pfs_logged(self):
        sim, fed, tree = self._star()
        shb = fed.shbs[0]
        shb.register_durable("h1", In("group", (0,)))
        pub = PeriodicPublisher(
            sim, tree.phb, "p1", rate_per_s=100,
            attribute_fn=lambda i: {"group": i % 2},
        )
        pub.start()
        sim.run_until(3_000.0)
        pub.stop()
        sim.run_until(4_000.0)
        # No client ever connected, yet the subscription was matched
        # and its Q ticks durably logged (8 + 16n byte records).
        assert shb.pfs.writes > 0
        pairs = (shb.pfs.bytes_written - 8 * shb.pfs.writes) // 16
        assert pairs > 0
        # Never-acking headless durables pin the release floor at
        # their registration cursor.
        assert shb.registry.min_released("p1") == 0

    def test_mid_stream_registration_owes_nothing_below_cursor(self):
        sim, fed, tree = self._star()
        shb = fed.shbs[0]
        pub = PeriodicPublisher(
            sim, tree.phb, "p1", rate_per_s=100,
            attribute_fn=lambda i: {"group": 0},
        )
        pub.start()
        sim.run_until(3_000.0)
        cursor = shb.constreams["p1"].delivered_cursor
        assert cursor > 0
        shb.register_durable("late", In("group", (0,)))
        sub = shb.registry.get("late")
        # Registered at the current cursor: acked there (owed nothing
        # below) and PFS coverage claimed from there.
        assert sub.released_for("p1") == cursor
        assert sub.pfs_from["p1"] >= cursor
        assert shb.registry.min_released("p1") == cursor
        pub.stop()


class TestFailOver:
    def test_subtree_moves_onto_spare_and_delivery_continues(self):
        sim = Scheduler()
        fed = build_deep_overlay(
            sim, n_trees=1, fanout=(2,), shbs_per_leaf=2, spares_per_level=1,
        )
        tree = fed.trees[0]
        spare = fed.spares[(0, 1)][0]
        # A live subscriber on an SHB whose uplink we will fail over.
        shb = tree.shbs[0]
        machine = Node(sim, "fo-machine")
        sub = DurableSubscriber(
            sim, "fo-s1", machine, In("group", (0,)), record_events=True
        )
        sub.connect(shb)
        pub = PeriodicPublisher(
            sim, tree.phb, "p1", rate_per_s=100,
            attribute_fn=lambda i: {"group": i % 2},
        )
        pub.start()
        sim.run_until(3_000.0)
        before = sub.stats.events
        assert before > 0

        fed.fail_over(shb, spare)
        assert spare not in fed.spares[(0, 1)]
        assert shb.parent_name == spare.name
        assert spare.name in {b.name for b in tree.intermediates}

        sim.run_until(8_000.0)
        pub.stop()
        sim.run_until(10_000.0)
        assert sub.stats.events > before          # delivery resumed
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_failover_races_in_flight_forward_job(self):
        # A dissemination forward is a queued CPU job holding the child
        # name; failing the child over between submit and execution must
        # drop the forward (the resync re-nacks it), not KeyError the
        # parent.  run_until(2000) parks exactly such a job: the publish
        # at t=2000 is logged but its forward to t1.ib1 has not fired.
        sim = Scheduler()
        fed = build_deep_overlay(
            sim, n_trees=1, fanout=(2,), shbs_per_leaf=2, spares_per_level=1,
        )
        tree = fed.trees[0]
        machine = Node(sim, "fo-machine")
        sub = DurableSubscriber(
            sim, "fo-s2", machine, In("group", (0, 1)), record_events=True
        )
        sub.connect(tree.shbs[0])
        pub = PeriodicPublisher(
            sim, tree.phb, "p1", rate_per_s=100,
            attribute_fn=lambda i: {"group": i % 2},
        )
        pub.start()
        sim.run_until(2_000.0)
        fed.fail_over(tree.intermediates[0], fed.spares[(0, 1)][0])
        sim.run_until(6_000.0)
        pub.stop()
        sim.run_until(8_000.0)
        assert sub.stats.events == pub.published
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        assert sub.stats.gaps == 0


# ---------------------------------------------------------------------------
# Determinism on generated topologies
# ---------------------------------------------------------------------------
def _record_transcript(sim: Scheduler, sub: DurableSubscriber, out: List[str]):
    inner = sub._on_message

    def wrapped(msg: object) -> None:
        if isinstance(msg, M.EventMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} E {msg.pubend} {msg.t}")
        elif isinstance(msg, M.SilenceMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} S {msg.pubend} {msg.t}")
        elif isinstance(msg, M.GapMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} G {msg.pubend} {msg.t}")
        inner(msg)

    sub._on_message = wrapped  # type: ignore[method-assign]


def _run_deep_forest(seed: int) -> bytes:
    """A generated 2-tree forest under load, churn and failover.

    Exercises the whole generated-topology stack — attach-grown trees,
    headless placement, live clients, a mid-run fail_over — and
    serializes the delivery transcript, metric series and final
    registry floors.
    """
    rng = random.Random(seed)
    sim = Scheduler()
    fed = build_deep_overlay(
        sim, n_trees=2, pubends_per_tree=1, fanout=(2,), shbs_per_leaf=2,
        spares_per_level=1,
    )
    predicates = [In("group", (g,)) for g in range(4)]
    place_durable_subscribers(fed, 12, predicates, seed=seed, prefix="deep-h")

    transcript: List[str] = []
    machine = Node(sim, "deep-machine")
    subs = []
    for i, shb in enumerate([fed.trees[0].shbs[0], fed.trees[1].shbs[-1]]):
        sub = DurableSubscriber(
            sim, f"deep-s{i + 1}", machine, In("group", (i, (i + 1) % 4)),
            record_events=True,
        )
        _record_transcript(sim, sub, transcript)
        sub.connect(shb)
        subs.append(sub)

    publishers = []
    for tree in fed.trees:
        for pubend in tree.pubend_names:
            pub = PeriodicPublisher(
                sim, tree.phb, pubend, rate_per_s=100,
                attribute_fn=lambda i: {"group": i % 4},
            )
            pub.start()
            publishers.append(pub)

    collector = MetricsCollector(sim, interval_ms=500.0)
    for k, tree in enumerate(fed.trees):
        pubend = tree.pubend_names[0]
        shb = tree.shbs[0]
        collector.gauge(
            f"latestDelivered.{pubend}",
            lambda s=shb, p=pubend: float(s.latest_delivered(p)),
        )
    collector.start()

    # Seeded churn plus a mid-run failover of a live subtree.
    down_at = rng.uniform(2_000.0, 4_000.0)
    down_for = rng.uniform(500.0, 1_500.0)
    sim.at(down_at, subs[0].disconnect)
    sim.at(down_at + down_for, lambda: subs[0].connect(fed.trees[0].shbs[0]))
    shb_fo = fed.trees[0].shbs[0]
    spare = fed.spares[(0, 1)][0]
    sim.at(rng.uniform(4_500.0, 6_000.0), lambda: fed.fail_over(shb_fo, spare))

    sim.run_until(9_000.0)
    for pub in publishers:
        pub.stop()
    sim.run_until(12_000.0)
    collector.stop()

    for sub in subs:
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        assert sub.stats.events > 0

    floors = []
    for shb in sorted(fed.shbs, key=lambda s: s.name):
        for pubend in sorted(shb.pubend_names):
            floors.append(f"{shb.name} {pubend} {shb.registry.min_released(pubend)}")
    series = []
    for name in sorted(collector.series):
        for t, v in collector.get(name).points:
            series.append(f"{name} {t:.6f} {v!r}")
    body = "\n".join(transcript) + "\n---\n" + "\n".join(series) \
        + "\n---\n" + "\n".join(floors)
    return body.encode()


def test_deep_forest_deterministic():
    assert _run_deep_forest(seed=7) == _run_deep_forest(seed=7)


_DIGEST_FIXTURE = (
    pathlib.Path(__file__).parent / "fixtures" / "determinism_digests.json"
)

needs_pinned_hashes = pytest.mark.skipif(
    os.environ.get("PYTHONHASHSEED") != "0",
    reason="digest fixtures require PYTHONHASHSEED=0 (set iteration order)",
)


@needs_pinned_hashes
def test_deep_forest_matches_recorded_digest():
    """Generated topologies are part of the pinned determinism surface:
    the same seed must produce this byte stream forever."""
    digests = json.loads(_DIGEST_FIXTURE.read_text())
    got = hashlib.sha256(_run_deep_forest(seed=7)).hexdigest()
    assert got == digests["deep_forest/seed7"]
