"""Tests for the durable subscriber client."""

import pytest

from repro import (
    DurableSubscriber,
    Everything,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.core import messages as M
from repro.util.errors import NotConnectedError


@pytest.fixture
def env():
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    machine = Node(sim, "client")
    return sim, overlay, machine


class TestConnection:
    def test_double_connect_rejected(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything())
        sub.connect(overlay.shbs[0])
        with pytest.raises(NotConnectedError):
            sub.connect(overlay.shbs[0])

    def test_disconnect_when_not_connected_is_noop(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything())
        sub.disconnect()

    def test_adopts_assigned_ct_on_first_connect(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything())
        sub.connect(overlay.shbs[0])
        sim.run_until(50)
        assert "P1" in dict(sub.ct.items())

    def test_shb_crash_marks_client_disconnected(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything())
        sub.connect(overlay.shbs[0])
        sim.run_until(50)
        overlay.shbs[0].crash()
        assert not sub.connected


class TestCheckpointHandling:
    def test_ct_advances_with_consumption(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything())
        sub.connect(overlay.shbs[0])
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(2_000)
        assert sub.ct.get("P1") > 1_000
        assert sub.committed_ct.get("P1") > 1_000

    def test_commit_every_batches_snapshots(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything(), commit_every=1000)
        sub.connect(overlay.shbs[0])
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(2_000)
        assert sub.committed_ct.get("P1") < sub.ct.get("P1")

    def test_crash_rolls_back_to_committed(self, env):
        sim, overlay, machine = env
        sub = DurableSubscriber(sim, "s1", machine, Everything(), commit_every=1000)
        sub.connect(overlay.shbs[0])
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(2_000)
        committed = sub.committed_ct.get("P1")
        sub.crash()
        assert sub.ct.get("P1") == committed

    def test_silence_advances_ct_for_idle_subscriber(self, env):
        sim, overlay, machine = env
        # Matches nothing: only silence messages flow.
        sub = DurableSubscriber(sim, "s1", machine, In("group", [99]))
        sub.connect(overlay.shbs[0])
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(3_000)
        assert sub.stats.events == 0
        assert sub.stats.silences > 0
        assert sub.ct.get("P1") > 1_000
