"""Tests for the release protocol: policies and aggregation."""

import pytest

from repro.core.release import (
    MaxRetainPolicy,
    NoEarlyRelease,
    ReleaseAggregator,
)
from repro.util.errors import ProtocolError


class TestPolicies:
    def test_no_early_release_bound_is_tr(self):
        policy = NoEarlyRelease()
        assert policy.release_bound(now=10_000, t_r=500, t_d=900) == 500

    def test_max_retain_releases_aged_ticks(self):
        policy = MaxRetainPolicy(max_retain_ms=1000)
        # now - t > 1000 and t <= Td
        assert policy.release_bound(now=10_000, t_r=500, t_d=9_500) == 8_999

    def test_max_retain_capped_at_td(self):
        policy = MaxRetainPolicy(max_retain_ms=1000)
        assert policy.release_bound(now=10_000, t_r=500, t_d=5_000) == 5_000

    def test_max_retain_never_below_tr(self):
        policy = MaxRetainPolicy(max_retain_ms=1000)
        assert policy.release_bound(now=1_500, t_r=700, t_d=800) == 700

    def test_max_retain_invariant_tr_le_bound(self):
        policy = MaxRetainPolicy(max_retain_ms=100)
        for now in range(0, 3000, 137):
            for t_r in range(0, 500, 91):
                t_d = t_r + 300
                bound = policy.release_bound(now, t_r, t_d)
                assert bound >= t_r
                assert bound <= max(t_r, t_d)

    def test_invalid_max_retain(self):
        with pytest.raises(ValueError):
            MaxRetainPolicy(0)


class TestAggregator:
    def test_aggregate_none_until_all_report(self):
        agg = ReleaseAggregator("P1")
        agg.register_child("c1")
        agg.register_child("c2")
        agg.update("c1", 10, 20)
        assert agg.aggregate() is None
        agg.update("c2", 5, 30)
        assert agg.aggregate() == (5, 20)

    def test_empty_aggregator_is_none(self):
        assert ReleaseAggregator("P1").aggregate() is None

    def test_reports_are_monotone(self):
        agg = ReleaseAggregator("P1")
        agg.register_child("c1")
        agg.update("c1", 10, 20)
        agg.update("c1", 5, 15)   # regressing report is clamped
        assert agg.aggregate() == (10, 20)

    def test_invariant_enforced(self):
        agg = ReleaseAggregator("P1")
        with pytest.raises(ProtocolError):
            agg.update("c1", released=30, latest_delivered=20)

    def test_unregister_child(self):
        agg = ReleaseAggregator("P1")
        agg.register_child("c1")
        agg.register_child("c2")
        agg.update("c1", 10, 20)
        agg.unregister_child("c2")
        assert agg.aggregate() == (10, 20)

    def test_update_implicitly_registers(self):
        agg = ReleaseAggregator("P1")
        agg.update("c1", 10, 20)
        assert agg.aggregate() == (10, 20)
        assert agg.child_count == 1
