"""Tests for the discrete-event scheduler."""

import pytest

from repro.net.simtime import Scheduler


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Scheduler().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Scheduler()
        fired = []
        sim.at(30, fired.append, "c")
        sim.at(10, fired.append, "a")
        sim.at(20, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        sim = Scheduler()
        fired = []
        for tag in "abcde":
            sim.at(5, fired.append, tag)
        sim.run()
        assert fired == list("abcde")

    def test_after_is_relative(self):
        sim = Scheduler()
        times = []
        sim.after(10, lambda: sim.after(10, lambda: times.append(sim.now)))
        sim.run()
        assert times == [20.0]

    def test_cannot_schedule_in_past(self):
        sim = Scheduler()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().after(-1, lambda: None)

    def test_run_until_advances_clock_past_last_event(self):
        sim = Scheduler()
        sim.at(5, lambda: None)
        sim.run_until(100)
        assert sim.now == 100.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Scheduler()
        fired = []
        sim.at(5, fired.append, "early")
        sim.at(50, fired.append, "late")
        sim.run_until(10)
        assert fired == ["early"]
        sim.run_until(60)
        assert fired == ["early", "late"]

    def test_event_at_boundary_fires(self):
        sim = Scheduler()
        fired = []
        sim.at(10, fired.append, "x")
        sim.run_until(10)
        assert fired == ["x"]

    def test_events_executed_counter(self):
        sim = Scheduler()
        for _ in range(7):
            sim.after(1, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Scheduler()
        fired = []
        handle = sim.at(10, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Scheduler()
        handle = sim.at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        sim.run()


class TestPeriodic:
    def test_every_fires_repeatedly(self):
        sim = Scheduler()
        times = []
        sim.every(10, lambda: times.append(sim.now))
        sim.run_until(35)
        assert times == [10.0, 20.0, 30.0]

    def test_every_first_delay(self):
        sim = Scheduler()
        times = []
        sim.every(10, lambda: times.append(sim.now), first_delay=3)
        sim.run_until(25)
        assert times == [3.0, 13.0, 23.0]

    def test_periodic_cancel_stops_firing(self):
        sim = Scheduler()
        count = [0]
        handle = sim.every(10, lambda: count.__setitem__(0, count[0] + 1))
        sim.run_until(25)
        handle.cancel()
        sim.run_until(100)
        assert count[0] == 2

    def test_cancel_from_inside_callback(self):
        sim = Scheduler()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] == 3:
                handle.cancel()

        handle = sim.every(5, tick)
        sim.run_until(1000)
        assert count[0] == 3

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().every(0, lambda: None)

    def test_periodic_stays_on_grid_without_drift(self):
        # Interval 0.1 is not exactly representable in binary floating
        # point; re-arming via repeated relative `after(interval)` lets
        # the rounding error accumulate, and by a million ticks the
        # firing time is visibly off the n*0.1 grid.  The grid-anchored
        # scheduler computes each target as one multiply-add, so every
        # firing is within one ulp of n*0.1.
        import math

        sim = Scheduler()
        worst = [0.0]
        n = [0]

        def tick():
            n[0] += 1
            exact = n[0] * 0.1
            worst[0] = max(worst[0], abs(sim.now - exact))

        sim.every(0.1, tick)
        sim.run(max_events=1_000_000)
        assert n[0] == 1_000_000
        # one ulp at the final firing time (~1e5 ms)
        assert worst[0] <= math.ulp(100_000.0)

    def test_periodic_grid_anchor_respects_first_delay(self):
        sim = Scheduler()
        times = []
        sim.run_until(5)  # non-zero start time
        sim.every(0.1, lambda: times.append(sim.now), first_delay=0.25)
        sim.run_until(5.66)
        assert times[0] == 5.25
        assert times == [5.25 + i * 0.1 for i in range(len(times))]

    def test_raising_callback_marks_periodic_dead(self):
        sim = Scheduler()

        def boom():
            raise RuntimeError("kaput")

        handle = sim.every(10, boom)
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run()
        assert handle.dead
        # post-death cancel is safe (the consumed EventHandle is gone)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        sim.run_until(100)  # nothing further fires

    def test_on_error_hook_keeps_periodic_alive(self):
        sim = Scheduler()
        fired = []
        errors = []

        def flaky():
            fired.append(sim.now)
            if len(fired) == 2:
                raise RuntimeError("transient")

        handle = sim.every(10, flaky, on_error=errors.append)
        sim.run_until(45)
        assert fired == [10.0, 20.0, 30.0, 40.0]
        assert len(errors) == 1 and str(errors[0]) == "transient"
        assert not handle.dead
        handle.cancel()


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run():
            sim = Scheduler()
            trace = []
            sim.every(7, lambda: trace.append(("a", sim.now)))
            sim.every(11, lambda: trace.append(("b", sim.now)))
            sim.after(50, lambda: sim.after(3, lambda: trace.append(("c", sim.now))))
            sim.run_until(200)
            return trace

        assert run() == run()
