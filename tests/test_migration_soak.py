"""Seeded dynamic-topology soaks and handoff-window crash sweeps.

Tier 1 runs one seeded migration soak (join + mid-catchup migration +
drain under faults, every oracle family checked) and a small crash-point
sweep over the handoff durability boundaries.  The full stratified
sweep and the many-seed soak ride the ``soak`` marker and the
``migration-chaos-smoke`` CI job (``python -m repro.sim.crashpoints
--scenario migration --sites migrate.``).
"""

import pytest

from repro.sim import crashpoints
from repro.sim.experiments import run_migration_soak


def test_migration_soak_faultless():
    result = run_migration_soak(seed=1, with_faults=False)
    assert result.ok, "; ".join(result.violations)
    assert result.migrations_done == result.migrations > 0
    assert result.source_detached
    assert result.stalled_subscribers == []


def test_migration_soak_with_faults():
    result = run_migration_soak(seed=7)
    assert result.ok, "; ".join(result.violations)
    assert result.migrations_done == result.migrations > 0
    assert result.source_detached
    assert len(result.faults) > 0


def test_migration_soak_same_seed_is_deterministic():
    a = run_migration_soak(seed=3)
    b = run_migration_soak(seed=3)
    assert a.ok and b.ok
    assert [(f.kind, f.target, f.at_ms) for f in a.faults] == [
        (f.kind, f.target, f.at_ms) for f in b.faults
    ]
    assert a.final_placement == b.final_placement


def test_crash_sweep_handoff_boundaries_smoke():
    """Crashing at the install staging and the commit tombstone — the
    two ends of the handoff's durability window — loses nothing."""
    summary = crashpoints.explore(
        scenario="migration",
        sites=["migrate.install.pre", "migrate.commit.tombstone"],
    )
    assert len(summary.outcomes) > 0
    assert summary.violations == []


@pytest.mark.soak
def test_crash_sweep_all_handoff_sites():
    summary = crashpoints.explore(scenario="migration", sites=["migrate."])
    assert len(summary.outcomes) >= 12
    assert summary.violations == []


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(1, 13))
def test_migration_soak_many_seeds(seed):
    result = run_migration_soak(seed=seed)
    assert result.ok, f"seed {seed}: " + "; ".join(result.violations)
