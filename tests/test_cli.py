"""Smoke tests for the ``python -m repro`` experiment CLI."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_latency_command(self, capsys):
        assert main(["latency", "--duration", "3", "--rate", "30"]) == 0
        out = capsys.readouterr().out
        assert "End-to-end latency" in out
        assert "PHB logging" in out

    def test_scalability_command(self, capsys):
        assert main(["scalability", "--shbs", "1", "--subs", "6",
                     "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "achieved rate" in out

    def test_jms_command(self, capsys):
        assert main(["jms", "--subs", "4", "--input-rate", "200",
                     "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "consumed rate" in out

    def test_stream_rates_command(self, capsys):
        assert main(["stream-rates", "--subs", "4", "--duration", "8"]) == 0
        out = capsys.readouterr().out
        assert "latestDelivered mean" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
