"""Tests for exactly-once publishing and event expiration."""

import pytest

from repro import (
    DurableSubscriber,
    Everything,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.client.publisher import ReliablePublisher


def make_env():
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    pub_node = Node(sim, "pub-machine")
    sub_node = Node(sim, "sub-machine")
    sub = DurableSubscriber(sim, "s1", sub_node, Everything(), record_events=True)
    sub.connect(overlay.shbs[0])
    publisher = ReliablePublisher(sim, overlay.phb, pub_node, "pub1", "P1")
    return sim, overlay, publisher, sub


class TestReliablePublishing:
    def test_publish_ack_cycle(self):
        sim, overlay, publisher, sub = make_env()
        for i in range(10):
            publisher.publish({"group": i % 4})
        sim.run_until(2_000)
        assert publisher.unacknowledged == 0
        assert publisher.retransmissions == 0
        assert sub.stats.events == 10

    def test_window_throttles_transmission(self):
        sim, overlay, publisher, sub = make_env()
        publisher.window = 4
        for i in range(20):
            publisher.publish({"group": 0})
        # Immediately after queuing, at most `window` are in flight.
        assert len(publisher._unacked) <= 4
        sim.run_until(3_000)
        assert sub.stats.events == 20

    def test_phb_crash_before_sync_retransmits(self):
        """Events staged but unsynced die with the PHB; the publisher's
        retransmission delivers them exactly once after recovery."""
        sim, overlay, publisher, sub = make_env()
        for i in range(5):
            publisher.publish({"group": i % 4})
        sim.run_until(2)          # requests arrive, events staged
        overlay.phb.crash()       # group-commit sync never completes
        sim.run_until(500)
        overlay.phb.recover()
        for i in range(5):
            publisher.publish({"group": i % 4})
        sim.run_until(8_000)
        assert publisher.unacknowledged == 0
        assert publisher.retransmissions > 0
        assert sub.stats.events == 10
        assert sub.duplicate_events == 0

    def test_duplicate_transmissions_rejected(self):
        sim, overlay, publisher, sub = make_env()
        publisher.publish({"group": 0})
        sim.run_until(200)
        # Force a spurious retransmission of an already-acked request.
        publisher.retransmit_ms = 1.0
        publisher._unacked.append(
            __import__("repro.core.messages", fromlist=["PublishRequest"]).PublishRequest(
                {"group": 0}, 250, publisher="pub1", seq=1, pubend="P1"
            )
        )
        publisher._last_progress = -10_000
        sim.run_until(1_500)
        assert overlay.phb.duplicates_rejected >= 1
        sim.run_until(3_000)
        assert sub.stats.events == 1
        assert sub.duplicate_events == 0

    def test_repeated_phb_crashes_no_loss_no_dups(self):
        sim, overlay, publisher, sub = make_env()
        total = 0
        for round_no in range(3):
            for i in range(8):
                publisher.publish({"group": i % 4})
                total += 1
            sim.run_until(sim.now + 30)
            overlay.phb.fail_for(300)
            sim.run_until(sim.now + 2_000)
        sim.run_until(sim.now + 8_000)
        assert publisher.unacknowledged == 0
        assert sub.stats.events == total
        assert sub.duplicate_events == 0

    def test_seq_floor_survives_phb_crash(self):
        """After recovery the PHB still rejects stale retransmissions of
        events that were durably logged before the crash."""
        sim, overlay, publisher, sub = make_env()
        publisher.publish({"group": 0})
        sim.run_until(1_000)      # durably logged, acked, table committed
        overlay.phb.fail_for(200)
        sim.run_until(2_000)
        # Replay seq 1 by hand.
        from repro.core.messages import PublishRequest
        publisher._send.send(PublishRequest({"group": 0}, 250, publisher="pub1",
                                            seq=1, pubend="P1"))
        sim.run_until(4_000)
        assert sub.stats.events == 1
        assert sub.duplicate_events == 0
        assert overlay.phb.duplicates_rejected >= 1


class TestExpiration:
    def test_expired_event_not_delivered_live(self):
        """An event whose TTL lapses while queued (here: while the PHB
        log sync is slow) is silently skipped at the constream."""
        sim, overlay, publisher, sub = make_env()
        publisher.publish({"group": 0}, ttl_ms=5)   # expires before sync
        publisher.publish({"group": 1}, ttl_ms=60_000)
        sim.run_until(2_000)
        assert sub.stats.events == 1
        assert overlay.shbs[0].constreams["P1"].expired_skipped == 1
        # CT still advanced past the skipped tick.
        assert sub.stats.order_violations == 0

    def test_expired_event_not_delivered_in_catchup(self):
        sim, overlay, publisher, sub = make_env()
        sub.disconnect()
        sim.run_until(100)
        publisher.publish({"group": 0}, ttl_ms=1_000)   # will expire
        publisher.publish({"group": 1})                  # never expires
        sim.run_until(3_000)   # TTL lapses while the subscriber is away
        sub.connect(overlay.shbs[0])
        sim.run_until(6_000)
        assert sub.stats.events == 1
        got = [e for e in sub.received_event_ids]
        assert len(got) == 1

    def test_unexpired_event_survives_catchup(self):
        sim, overlay, publisher, sub = make_env()
        sub.disconnect()
        sim.run_until(100)
        publisher.publish({"group": 0}, ttl_ms=600_000)
        sim.run_until(2_000)
        sub.connect(overlay.shbs[0])
        sim.run_until(5_000)
        assert sub.stats.events == 1
