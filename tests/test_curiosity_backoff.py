"""Re-nack backoff, jitter, and the retry budget.

These are the control-plane retry policies added for lossy links: a
nack that keeps repeating without any knowledge arriving backs off
exponentially, stays bounded, and is eventually suppressed by the
budget — while *fresh* curiosity (never-nacked ranges) always flows.
"""

import random

import pytest

from repro.core.curiosity import CuriosityStream
from repro.net.simtime import Scheduler
from repro.util.intervals import IntervalSet


def _stream(sim, sent, **kwargs):
    return CuriosityStream(
        sim, "P1", lambda iv: sent.append((sim.now, iv.copy())),
        poll_ms=20.0, retry_ms=200.0, **kwargs,
    )


class TestBackoffGrowth:
    def test_renack_gaps_grow_by_factor_up_to_cap(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, backoff_factor=2.0, backoff_max_ms=1_600.0)
        cur.want(10, 20)
        sim.run_until(20_000.0)
        assert len(sent) >= 5
        gaps = [t1 - t0 for (t0, _), (t1, _) in zip(sent, sent[1:])]
        # Each retry waits roughly twice as long as the previous one
        # (the suppression generations quantize to the poll beat, so
        # allow one poll interval of slack), until the cap kicks in.
        growing = [g for g in gaps if g < 1_600.0]
        for earlier, later in zip(growing, growing[1:]):
            assert later >= earlier * 2 - 20.0 - 1e-9
        # Bounded: once at the cap the gap stops growing.
        assert max(gaps) <= 2 * 1_600.0 + 20.0
        assert cur.renacks == len(sent) - 1

    def test_default_factor_keeps_fixed_interval(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent)  # factor 1.0: legacy fixed retry
        cur.want(0, 5)
        sim.run_until(2_000.0)
        gaps = [t1 - t0 for (t0, _), (t1, _) in zip(sent, sent[1:])]
        assert gaps
        # Two-generation suppression re-nacks after one to two retry
        # periods (quantized to the poll beat) — but never grows.
        for g in gaps:
            assert 200.0 - 20.0 - 1e-9 <= g <= 400.0 + 20.0 + 1e-9
        cur.close()

    def test_progress_resets_the_streak(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, backoff_factor=2.0)
        cur.want(0, 100)
        sim.run_until(1_500.0)   # a few retries: streak > 0
        assert cur._retry_streak > 0
        cur.resolve(0, 100)
        assert cur._retry_streak == 0
        cur.want(200, 300)       # new doubt retries at base pace again
        t0 = sim.now
        sim.run_until(t0 + 500.0)
        fresh = [t for t, _ in sent if t > t0]
        assert len(fresh) >= 2
        assert fresh[1] - fresh[0] <= 200.0 + 20.0 + 1e-9


class TestJitter:
    def test_jitter_spreads_retries_but_stays_bounded(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, jitter_ms=40.0, rng=random.Random("t"))
        cur.want(0, 5)
        sim.run_until(3_000.0)
        gaps = [t1 - t0 for (t0, _), (t1, _) in zip(sent, sent[1:])]
        assert gaps
        for g in gaps:
            # One to two jittered rotations, plus the poll quantum.
            assert 200.0 - 20.0 - 1e-9 <= g <= 2 * (200.0 + 40.0) + 20.0 + 1e-9
        assert len(set(round(g, 3) for g in gaps)) > 1  # actually jittered

    def test_validation(self):
        sim = Scheduler()
        with pytest.raises(ValueError):
            _stream(sim, [], backoff_factor=0.5)
        with pytest.raises(ValueError):
            _stream(sim, [], jitter_ms=-1.0)


class TestRetryBudget:
    def test_budget_caps_repeat_traffic(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, retry_budget=3)
        cur.want(0, 10)
        sim.run_until(10_000.0)
        # 1 initial nack + at most 3 retries; then suppressed.
        assert len(sent) == 4
        assert cur.budget_suppressed > 0

    def test_fresh_curiosity_flows_past_an_exhausted_budget(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, retry_budget=1)
        cur.want(0, 10)
        sim.run_until(2_000.0)
        n = len(sent)
        assert n == 2  # initial + one retry, then the budget bites
        cur.want(50, 60)
        sim.run_until(2_200.0)
        assert len(sent) == n + 1
        assert sent[-1][1].as_tuples() == [(50, 60)]

    def test_knowledge_arrival_rearms_suppressed_retries(self):
        sim = Scheduler()
        sent = []
        cur = _stream(sim, sent, retry_budget=1)
        cur.want(0, 10)
        sim.run_until(2_000.0)
        assert len(sent) == 2
        cur.resolve(0, 4)        # partial knowledge: progress
        sim.run_until(4_000.0)
        later = [iv for t, iv in sent if t > 2_000.0]
        assert later and later[0].as_tuples() == [(5, 10)]


class TestCoalescingRatio:
    def test_well_defined_before_any_nack(self):
        sim = Scheduler()
        cur = _stream(sim, [])
        assert cur.coalescing_ratio == 0.0

    def test_ratio_counts_ticks_per_range(self):
        sim = Scheduler()
        cur = _stream(sim, [])
        want = IntervalSet()
        want.add(0, 9)      # 10 ticks, 1 range
        want.add(20, 29)    # 10 ticks, 1 range
        cur.want_set(want)
        sim.run_until(50.0)
        cur.close()
        assert cur.nacks_sent == 1
        assert cur.ranges_nacked == 2
        assert cur.ticks_nacked == 20
        assert cur.coalescing_ratio == pytest.approx(10.0)
