"""Differential tests for the scale representation work.

The registry sharding, the interned cursor maps, the released column
store and the sharded PFS index are all *representation-only*: every
observable — membership, nums, released timestamps, coverage cursors,
minima, crash/reopen results — must be identical to what a naive
unsharded implementation produces.  These tests drive the real
:class:`~repro.core.subscription.SubscriptionRegistry` and a
deliberately dumb reference model through the same seeded operation
stream (registration, acks, cursor raises, drops, commits, crashes)
over both storage backends (bare tables and SimDisk-backed tables) and
require observational equality at every checkpoint.

The sharded PFS index gets the same treatment against a flat dict,
including the chop-time ``prune_below`` sweep the shard floors exist
to accelerate.
"""

from __future__ import annotations

import random

import pytest

from repro.core.subscription import SHARD_BITS, SubscriptionRegistry
from repro.matching.predicates import In
from repro.net.simtime import Scheduler
from repro.pfs.pfs import _ShardedIndex
from repro.storage.disk import SimDisk
from repro.storage.table import PersistentTable
from repro.util.errors import SubscriptionError

PUBENDS = ("P1", "P2")


class ReferenceRegistry:
    """Unsharded, uncached, per-row-dict reference model.

    Implements exactly the registry's observable contract with the
    most obvious data structures: one dict per row, a committed
    snapshot per commit, full scans for minima.  No shards, no caches,
    no interning — if the real registry ever diverges from this, the
    representation work changed behaviour.
    """

    def __init__(self):
        self.rows = {}       # sub_id -> dict(num, predicate, released, pfs_from)
        self.next_num = 0
        self.committed = {"rows": {}, "next_num": 0}

    @staticmethod
    def _copy(rows):
        return {
            sub_id: {
                "num": r["num"],
                "predicate": r["predicate"],
                "released": dict(r["released"]),
                "pfs_from": dict(r["pfs_from"]),
            }
            for sub_id, r in rows.items()
        }

    def create(self, sub_id, predicate, pfs_from=None):
        if sub_id in self.rows:
            raise SubscriptionError(sub_id)
        self.rows[sub_id] = {
            "num": self.next_num,
            "predicate": predicate,
            "released": {},
            "pfs_from": dict(pfs_from or {}),
        }
        self.next_num += 1

    def ack(self, sub_id, pubend, t):
        row = self.rows[sub_id]
        if t > row["released"].get(pubend, -1):
            row["released"][pubend] = t

    def set_pfs_from(self, sub_id, pfs_from):
        row = self.rows[sub_id]
        for pubend, t in pfs_from.items():
            if t > row["pfs_from"].get(pubend, 0):
                row["pfs_from"][pubend] = t

    def drop(self, sub_id):
        self.rows.pop(sub_id, None)

    def min_released(self, pubend):
        if not self.rows:
            return None
        return min(r["released"].get(pubend, 0) for r in self.rows.values())

    def commit(self):
        # next_num does NOT persist independently: the real registry
        # recovers it as max(committed nums) + 1, so a crash after
        # dropping the highest-num row reuses that num.  Mirror that.
        self.committed = {"rows": self._copy(self.rows)}

    def crash_reset(self):
        self.rows = self._copy(self.committed["rows"])
        self.next_num = max(
            (r["num"] for r in self.rows.values()), default=-1
        ) + 1


def _assert_equivalent(reg: SubscriptionRegistry, ref: ReferenceRegistry):
    assert len(reg) == len(ref.rows)
    seen_nums = set()
    for sub_id, row in ref.rows.items():
        sub = reg.get(sub_id)
        assert sub is not None, sub_id
        assert sub.num == row["num"]
        assert sub.predicate == row["predicate"]
        assert dict(sub.pfs_from) == row["pfs_from"]
        assert reg.by_num(sub.num) is sub
        seen_nums.add(sub.num)
        for pubend in PUBENDS:
            assert sub.released_for(pubend) == row["released"].get(pubend, 0)
    for pubend in PUBENDS:
        assert reg.min_released(pubend) == ref.min_released(pubend)
    # by_num must miss for nums the reference doesn't host, including
    # nums in occupied shards (a stale entry would alias PFS records).
    for num in range(ref.next_num + 2):
        if num not in seen_nums:
            assert reg.by_num(num) is None


def _run_op_stream(seed: int, backend: str, n_ops: int = 400):
    sim = Scheduler()
    if backend == "disk":
        disk = SimDisk(sim, "diff-store")
        subs_t = PersistentTable("diff.subs", disk)
        rel_t = PersistentTable("diff.released", disk)
    else:
        subs_t = PersistentTable("diff.subs")
        rel_t = PersistentTable("diff.released")
    reg = SubscriptionRegistry(subs_t, rel_t)
    ref = ReferenceRegistry()
    rng = random.Random(f"registry-diff:{seed}")
    predicates = [In("group", (g,)) for g in range(8)]
    created = 0

    def settle():
        # Land any in-flight commit so both backends expose the same
        # synchronous commit semantics to the crash step.
        if backend == "disk":
            sim.run_until(sim.now + 1_000.0)

    for step in range(n_ops):
        op = rng.random()
        live = sorted(ref.rows)
        if op < 0.35 or not live:
            sub_id = f"d{created}"
            created += 1
            pfs_from = {
                p: rng.randrange(50) for p in PUBENDS if rng.random() < 0.7
            }
            predicate = predicates[rng.randrange(len(predicates))]
            reg.create(sub_id, predicate, pfs_from=pfs_from)
            ref.create(sub_id, predicate, pfs_from=pfs_from)
        elif op < 0.70:
            sub_id = live[rng.randrange(len(live))]
            pubend = PUBENDS[rng.randrange(len(PUBENDS))]
            t = rng.randrange(200)  # non-monotone on purpose
            reg.ack(sub_id, pubend, t)
            ref.ack(sub_id, pubend, t)
        elif op < 0.80:
            sub_id = live[rng.randrange(len(live))]
            raised = {p: rng.randrange(300) for p in PUBENDS}
            reg.set_pfs_from(sub_id, raised)
            ref.set_pfs_from(sub_id, raised)
        elif op < 0.88:
            sub_id = live[rng.randrange(len(live))]
            reg.drop(sub_id)
            ref.drop(sub_id)
        elif op < 0.95:
            reg.commit()
            settle()
            ref.commit()
        else:
            reg.commit()
            settle()
            ref.commit()
            reg.crash_reset()
            ref.crash_reset()
        if step % 25 == 0:
            _assert_equivalent(reg, ref)
    _assert_equivalent(reg, ref)
    # Final crash/reopen: committed state must round-trip exactly.
    reg.commit()
    settle()
    ref.commit()
    reg.crash_reset()
    ref.crash_reset()
    _assert_equivalent(reg, ref)


@pytest.mark.parametrize("backend", ["memory", "disk"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_registry_matches_unsharded_reference(backend, seed):
    _run_op_stream(seed, backend)


def test_registry_reload_matches_reference_after_churn():
    """A fresh registry over the same tables (new SHB process) sees
    exactly what the reference's committed snapshot holds."""
    subs_t = PersistentTable("reload.subs")
    rel_t = PersistentTable("reload.released")
    reg = SubscriptionRegistry(subs_t, rel_t)
    ref = ReferenceRegistry()
    rng = random.Random("reload-diff")
    for i in range(60):
        pfs_from = {"P1": rng.randrange(20)}
        reg.create(f"r{i}", In("group", (i % 5,)), pfs_from=pfs_from)
        ref.create(f"r{i}", reg.get(f"r{i}").predicate, pfs_from=pfs_from)
        if rng.random() < 0.5:
            t = rng.randrange(100)
            reg.ack(f"r{i}", "P1", t)
            ref.ack(f"r{i}", "P1", t)
        if rng.random() < 0.2:
            victim = f"r{rng.randrange(i + 1)}"
            reg.drop(victim)
            ref.drop(victim)
    reg.commit()
    ref.commit()
    ref.crash_reset()  # reference's committed view
    reg2 = SubscriptionRegistry(subs_t, rel_t)
    _assert_equivalent(reg2, ref)


class TestShardedIndexDifferential:
    """_ShardedIndex vs a flat ``{num: index}`` dict."""

    @pytest.mark.parametrize("seed", [11, 12])
    def test_random_ops_match_flat_dict(self, seed):
        rng = random.Random(f"index-diff:{seed}")
        sharded = _ShardedIndex()
        flat = {}
        # Spread nums over several shards, indexes mostly increasing
        # (PFS entries only move to newer records) with occasional
        # out-of-order writes to stress the floor maintenance.
        for step in range(2_000):
            op = rng.random()
            if op < 0.60:
                num = rng.randrange(5 << SHARD_BITS)
                idx = step * 8 if rng.random() < 0.9 else rng.randrange(200)
                sharded[num] = idx
                flat[num] = idx
            elif op < 0.80 and flat:
                num = rng.choice(sorted(flat))
                assert sharded[num] == flat[num]
                assert sharded.get(num) == flat[num]
            elif op < 0.90:
                chop = rng.randrange(step * 8 + 1)
                sharded.prune_below(chop)
                flat = {n: i for n, i in flat.items() if i > chop}
            else:
                num = rng.randrange(5 << SHARD_BITS)
                assert (num in sharded) == (num in flat)
                assert sharded.get(num, -1) == flat.get(num, -1)
            if step % 200 == 0:
                assert len(sharded) == len(flat)
                assert dict(sharded.items()) == flat
                assert sorted(sharded) == sorted(flat)
        assert dict(sharded.items()) == flat

    def test_prune_below_drops_at_or_below(self):
        idx = _ShardedIndex()
        for num, i in [(0, 10), (1, 20), (300, 5), (301, 40)]:
            idx[num] = i
        idx.prune_below(10)
        assert 0 not in idx and 300 not in idx
        assert idx[1] == 20 and idx[301] == 40

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_floor_lifecycle_through_prune_to_empty_cycles(self, seed):
        """The per-shard floor invariant across the full shard
        lifecycle: create → prune-to-empty (shard and floor both
        deleted) → re-create (floor re-seeded from the first write).

        A floor that survived an emptied shard, or drifted above its
        shard's true minimum, would make ``prune_below`` skip stale
        entries — catchup walks would then chase chopped indexes.  The
        churn here forces many empty/re-create cycles (tiny index
        range, aggressive chops) and checks the floor is a valid lower
        bound and the shard/floor key sets agree after every op.
        """
        rng = random.Random(f"floor-cycle:{seed}")
        sharded = _ShardedIndex()
        flat = {}
        for step in range(1_500):
            op = rng.random()
            if op < 0.5:
                num = rng.randrange(4 << SHARD_BITS)
                idx = rng.randrange(64)  # tiny range → frequent full prunes
                sharded[num] = idx
                flat[num] = idx
            elif op < 0.9:
                chop = rng.randrange(70)  # often empties every shard
                sharded.prune_below(chop)
                flat = {n: i for n, i in flat.items() if i > chop}
            else:
                assert dict(sharded.items()) == flat
            # Invariants after *every* op, not only at checkpoints:
            assert set(sharded._shards) == set(sharded._floor)
            for sid, shard in sharded._shards.items():
                assert shard, "empty shard must have been deleted"
                assert sharded._floor[sid] <= min(shard.values())
        assert dict(sharded.items()) == flat
