"""Tests for the benchmark regression gate (`benchmarks/check_baseline.py`).

The gate's job is to make silent metric loss impossible: a metric named
in ``HIGHER_IS_WORSE`` that is missing from either ``baseline.json`` or
the measured results must produce a clear per-metric failure (and a
nonzero exit from ``main``), never a crash or a silent skip.
"""

import io
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))

import check_baseline


def _full_metrics(value: float = 100.0) -> dict:
    return {name: value for name in check_baseline.HIGHER_IS_WORSE}


class TestCompare:
    def test_identical_metrics_pass(self):
        metrics = _full_metrics()
        failures = check_baseline.compare(metrics, metrics, out=io.StringIO())
        assert failures == []

    def test_missing_from_baseline_fails_per_metric(self):
        current = _full_metrics()
        baseline = dict(current)
        del baseline["events_delivered"]
        failures = check_baseline.compare(baseline, current, out=io.StringIO())
        assert len(failures) == 1
        assert "events_delivered" in failures[0]
        assert "missing from baseline" in failures[0]

    def test_missing_from_results_fails_per_metric_not_crash(self):
        baseline = _full_metrics()
        current = dict(baseline)
        del current["latency_e2e_p50_ms"]
        del current["reduction"]
        failures = check_baseline.compare(baseline, current, out=io.StringIO())
        assert len(failures) == 2
        assert any("latency_e2e_p50_ms" in f and "missing from results" in f
                   for f in failures)
        assert any("reduction" in f and "missing from results" in f
                   for f in failures)

    def test_regression_beyond_tolerance_fails(self):
        baseline = _full_metrics(100.0)
        current = dict(baseline)
        # events_delivered is higher-is-better with the default 20%
        # tolerance; a 50% drop must fail.
        current["events_delivered"] = 50.0
        failures = check_baseline.compare(baseline, current, out=io.StringIO())
        assert len(failures) == 1
        assert "events_delivered" in failures[0]

    def test_improvement_passes(self):
        baseline = _full_metrics(100.0)
        current = dict(baseline)
        current["events_delivered"] = 150.0       # higher is better
        current["latency_e2e_p99_ms"] = 50.0      # lower is better
        failures = check_baseline.compare(baseline, current, out=io.StringIO())
        assert failures == []

    def test_main_exits_nonzero_on_missing_metric(self, tmp_path, monkeypatch):
        baseline = _full_metrics()
        current = dict(baseline)
        del current["events_delivered"]
        path = tmp_path / "baseline.json"
        import json
        path.write_text(json.dumps(baseline))
        monkeypatch.setattr(check_baseline, "BASELINE_PATH", path)
        monkeypatch.setattr(check_baseline, "measure", lambda: current)
        assert check_baseline.main([]) == 1
