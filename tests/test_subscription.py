"""Tests for durable subscription records and the persistent registry."""

import pytest

from repro.core.subscription import SubscriptionRegistry
from repro.matching.predicates import Eq
from repro.storage.table import PersistentTable
from repro.util.errors import SubscriptionError


def make_registry():
    return SubscriptionRegistry(PersistentTable("subs"), PersistentTable("released"))


class TestRegistration:
    def test_create_assigns_compact_nums(self):
        reg = make_registry()
        a = reg.create("a", Eq("g", 1))
        b = reg.create("b", Eq("g", 2))
        assert (a.num, b.num) == (0, 1)
        assert reg.by_num(1) is b
        assert len(reg) == 2

    def test_duplicate_create_rejected(self):
        reg = make_registry()
        reg.create("a", Eq("g", 1))
        with pytest.raises(SubscriptionError):
            reg.create("a", Eq("g", 2))

    def test_drop(self):
        reg = make_registry()
        sub = reg.create("a", Eq("g", 1))
        reg.ack("a", "P1", 10)
        reg.drop("a")
        assert reg.get("a") is None
        assert reg.by_num(sub.num) is None
        reg.drop("a")  # idempotent

    def test_contains(self):
        reg = make_registry()
        reg.create("a", Eq("g", 1))
        assert "a" in reg
        assert "b" not in reg


class TestAcks:
    def test_ack_is_monotone(self):
        reg = make_registry()
        reg.create("a", Eq("g", 1))
        reg.ack("a", "P1", 10)
        reg.ack("a", "P1", 5)   # stale, ignored
        assert reg.get("a").released_for("P1") == 10

    def test_ack_unknown_sub_raises(self):
        reg = make_registry()
        with pytest.raises(SubscriptionError):
            reg.ack("nope", "P1", 10)

    def test_min_released_includes_disconnected(self):
        reg = make_registry()
        reg.create("a", Eq("g", 1))
        reg.create("b", Eq("g", 2))
        reg.ack("a", "P1", 50)
        # b never acked: min is 0 — disconnected/quiet subs hold release.
        assert reg.min_released("P1") == 0
        reg.ack("b", "P1", 30)
        assert reg.min_released("P1") == 30

    def test_min_released_none_when_empty(self):
        assert make_registry().min_released("P1") is None


class TestCrashRecovery:
    def test_committed_state_survives(self):
        subs_t = PersistentTable("subs")
        rel_t = PersistentTable("released")
        reg = SubscriptionRegistry(subs_t, rel_t)
        reg.create("a", Eq("g", 1))
        reg.ack("a", "P1", 42)
        reg.commit()
        reg.create("b", Eq("g", 2))      # never committed
        reg.ack("a", "P1", 99)           # dirty ack
        reg.crash_reset()
        assert "a" in reg
        assert "b" not in reg
        assert reg.get("a").released_for("P1") == 42
        assert reg.get("a").connected is False

    def test_nums_stable_across_recovery(self):
        subs_t = PersistentTable("subs")
        rel_t = PersistentTable("released")
        reg = SubscriptionRegistry(subs_t, rel_t)
        a = reg.create("a", Eq("g", 1))
        b = reg.create("b", Eq("g", 2))
        reg.commit()
        reg.crash_reset()
        assert reg.get("a").num == a.num
        assert reg.get("b").num == b.num
        # New subscriptions continue from the next free num.
        c = reg.create("c", Eq("g", 3))
        assert c.num == 2

    def test_registry_reload_from_existing_tables(self):
        subs_t = PersistentTable("subs")
        rel_t = PersistentTable("released")
        reg = SubscriptionRegistry(subs_t, rel_t)
        reg.create("a", Eq("g", 1))
        reg.ack("a", "P1", 7)
        reg.commit()
        # A second registry over the same tables (fresh SHB process).
        reg2 = SubscriptionRegistry(subs_t, rel_t)
        assert reg2.get("a").released_for("P1") == 7
