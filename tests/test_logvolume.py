"""Tests for the Log Volume (memory and real-file backends)."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.logvolume import FileBackend, LogVolume
from repro.util.errors import RecordNotFoundError


class TestMemoryVolume:
    def test_append_assigns_monotonic_indexes(self):
        stream = LogVolume.in_memory().stream("s1")
        assert stream.append(b"a") == 0
        assert stream.append(b"b") == 1
        assert stream.append(b"c") == 2

    def test_read_returns_record(self):
        stream = LogVolume.in_memory().stream("s1")
        stream.append(b"hello")
        assert stream.read(0) == b"hello"

    def test_read_range(self):
        stream = LogVolume.in_memory().stream("s1")
        for i in range(5):
            stream.append(bytes([i]))
        assert stream.read_range(1, 3) == [b"\x01", b"\x02", b"\x03"]

    def test_streams_are_independent(self):
        vol = LogVolume.in_memory()
        s1, s2 = vol.stream("a"), vol.stream("b")
        s1.append(b"one")
        s2.append(b"two")
        assert s1.read(0) == b"one"
        assert s2.read(0) == b"two"

    def test_stream_is_cached_by_name(self):
        vol = LogVolume.in_memory()
        assert vol.stream("x") is vol.stream("x")

    def test_chop_discards_prefix(self):
        stream = LogVolume.in_memory().stream("s1")
        for i in range(5):
            stream.append(bytes([i]))
        stream.chop(2)
        with pytest.raises(RecordNotFoundError):
            stream.read(2)
        assert stream.read(3) == b"\x03"
        assert len(stream) == 2

    def test_chop_is_idempotent_and_monotone(self):
        stream = LogVolume.in_memory().stream("s1")
        for i in range(5):
            stream.append(bytes([i]))
        stream.chop(3)
        stream.chop(1)  # already chopped further; no-op
        assert stream.chopped_below == 4

    def test_read_past_end_raises(self):
        stream = LogVolume.in_memory().stream("s1")
        with pytest.raises(RecordNotFoundError):
            stream.read(0)

    def test_crash_truncate_discards_tail(self):
        stream = LogVolume.in_memory().stream("s1")
        for i in range(5):
            stream.append(bytes([i]))
        stream.crash_truncate(3)
        assert stream.next_index == 3
        assert stream.read(2) == b"\x02"
        with pytest.raises(RecordNotFoundError):
            stream.read(3)
        # New appends reuse the truncated indexes.
        assert stream.append(b"new") == 3

    def test_bytes_appended(self):
        vol = LogVolume.in_memory()
        vol.stream("s").append(b"12345")
        assert vol.bytes_appended == 5


class TestFileVolume:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        stream = vol.stream("s1")
        for i in range(10):
            stream.append(f"record-{i}".encode())
        vol.flush()
        assert stream.read(3) == b"record-3"
        vol.close()

    def test_recovery_rebuilds_streams(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        s1 = vol.stream("alpha")
        s2 = vol.stream("beta")
        for i in range(5):
            s1.append(f"a{i}".encode())
            s2.append(f"b{i}".encode())
        vol.flush()
        vol.close()

        # Reopen: streams must be created in the same order.
        vol2 = LogVolume.at_path(path, fsync=False)
        r1 = vol2.stream("alpha")
        r2 = vol2.stream("beta")
        assert r1.next_index == 5
        assert r2.read(4) == b"b4"
        assert r1.read(0) == b"a0"
        vol2.close()

    def test_recovery_applies_chops(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        stream = vol.stream("s")
        for i in range(6):
            stream.append(bytes([i]))
        stream.chop(2)
        vol.flush()
        vol.close()

        vol2 = LogVolume.at_path(path, fsync=False)
        stream2 = vol2.stream("s")
        assert stream2.chopped_below == 3
        with pytest.raises(RecordNotFoundError):
            stream2.read(1)
        assert stream2.read(4) == b"\x04"
        vol2.close()

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        stream = vol.stream("s")
        for i in range(5):
            stream.append(f"rec{i}".encode())
        vol.flush()
        vol.close()

        # Corrupt the file by truncating mid-record.
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size - 3)

        vol2 = LogVolume.at_path(path, fsync=False)
        stream2 = vol2.stream("s")
        assert stream2.next_index == 4  # last record lost
        assert stream2.read(3) == b"rec3"
        # Appends continue from the recovered index.
        assert stream2.append(b"rec4b") == 4
        vol2.close()

    def test_corrupt_payload_detected(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        stream = vol.stream("s")
        stream.append(b"AAAA")
        stream.append(b"BBBB")
        vol.flush()
        vol.close()
        # Flip a payload byte of the *last* record: CRC check must drop it.
        with open(path, "r+b") as f:
            f.seek(-1, os.SEEK_END)
            f.write(b"X")
        vol2 = LogVolume.at_path(path, fsync=False)
        assert vol2.stream("s").next_index == 1
        vol2.close()

    def test_flush_counts(self, tmp_path):
        path = str(tmp_path / "vol.log")
        vol = LogVolume.at_path(path, fsync=False)
        vol.stream("s").append(b"x")
        vol.flush()
        vol.flush()
        assert vol._backend.flush_count == 2  # type: ignore[attr-defined]
        vol.close()


@given(
    st.lists(
        st.tuples(st.integers(0, 2), st.binary(min_size=0, max_size=40)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=50, deadline=None)
def test_file_volume_roundtrip_property(tmp_path_factory, records):
    """Whatever is appended before a flush is readable after reopen."""
    path = str(tmp_path_factory.mktemp("lv") / "vol.log")
    vol = LogVolume.at_path(path, fsync=False)
    streams = [vol.stream(f"s{i}") for i in range(3)]
    expected = {0: [], 1: [], 2: []}
    for sid, payload in records:
        streams[sid].append(payload)
        expected[sid].append(payload)
    vol.flush()
    vol.close()

    vol2 = LogVolume.at_path(path, fsync=False)
    for sid in range(3):
        stream = vol2.stream(f"s{sid}")
        assert stream.next_index == len(expected[sid])
        for i, payload in enumerate(expected[sid]):
            assert stream.read(i) == payload
    vol2.close()


class TestCrashTruncateClamp:
    """Regression: crash losses must not double-count chopped records.

    The durable horizon can lag the chop point (records may be chopped
    before their covering sync completes).  crash_truncate used to count
    every index from the stale horizon up, including records the chop
    had already discarded — skewing writes_lost_in_crash accounting.
    """

    def test_dropped_excludes_already_chopped_records(self):
        stream = LogVolume.in_memory().stream("s")
        for i in range(10):
            stream.append(bytes([i]))
        stream.chop(5)  # indexes 0..5 discarded by the release
        # A crash whose durable horizon (3) trails the chop point: only
        # the four live records (6..9) are crash losses.
        dropped = stream.crash_truncate(durable_next_index=3)
        assert dropped == 4
        assert stream.next_index == 6

    def test_truncate_above_chop_counts_exact_tail(self):
        stream = LogVolume.in_memory().stream("s")
        for i in range(10):
            stream.append(bytes([i]))
        stream.chop(5)
        dropped = stream.crash_truncate(durable_next_index=8)
        assert dropped == 2  # records 8 and 9
        assert stream.next_index == 8
        assert stream.read(6) == bytes([6])
        assert stream.read(7) == bytes([7])

    def test_fully_durable_stream_loses_nothing(self):
        stream = LogVolume.in_memory().stream("s")
        for i in range(4):
            stream.append(bytes([i]))
        assert stream.crash_truncate(durable_next_index=4) == 0
        assert stream.next_index == 4


def test_volume_counts_physical_payload_bytes():
    # ``bytes_appended`` is the *physical* footprint (where a columnar
    # PFS batch's compaction shows up), distinct from the PFS's logical
    # footnote-2 accounting.
    from repro.storage.logvolume import LogVolume

    volume = LogVolume.in_memory()
    a = volume.stream("a")
    b = volume.stream("b")
    a.append(b"abcd")
    b.append(b"")
    b.append(b"xy")
    assert volume.bytes_appended == 6
