"""Property test: gap honesty under early release with random schedules.

With a ``maxRetain`` policy and arbitrary disconnect windows, every
matching event is either delivered exactly once or covered by an
explicit gap range — never silently dropped, never duplicated — and the
well-behaved (always connected) subscriber is never shown a gap.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DurableSubscriber,
    Everything,
    MaxRetainPolicy,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.util.intervals import IntervalSet

# Delivery batching must not change which events are delivered vs
# gapped; the honesty invariant is checked in all three regimes.
BATCH_WINDOWS = [0.0, 1.0, 10.0]


@pytest.mark.parametrize("batch_window_ms", BATCH_WINDOWS)
@given(
    max_retain_s=st.sampled_from([2, 4]),
    away_pairs=st.lists(
        st.tuples(st.integers(1_000, 6_000), st.integers(500, 9_000)),
        min_size=1,
        max_size=2,
    ),
    rate=st.sampled_from([50, 100]),
)
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.differing_executors,
    ],
)
def test_gap_honesty_random_schedules(batch_window_ms, max_retain_s, away_pairs, rate):
    sim = Scheduler()
    overlay = build_two_broker(
        sim, ["P1"],
        policy=MaxRetainPolicy(max_retain_s * 1_000),
        event_cache_span_ms=max_retain_s * 1_000,
        batch_window_ms=batch_window_ms,
    )
    shb = overlay.shbs[0]
    machine = Node(sim, "clients")
    good = DurableSubscriber(sim, "good", machine, Everything(), record_events=True)
    flaky = DurableSubscriber(sim, "flaky", machine, Everything(), record_events=True)
    good.connect(shb)
    flaky.connect(shb)
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()

    horizon = 2_000
    t = 0
    for start_gap, down in away_pairs:
        t += start_gap
        sim.at(t, lambda: flaky.disconnect() if flaky.connected else None)
        t += down
        sim.at(t, lambda: flaky.connect(shb) if not flaky.connected else None)
        horizon = t + 2_000
    sim.run_until(horizon)
    pub.stop()
    if not flaky.connected:
        flaky.connect(shb)
    sim.run_until(horizon + 30_000)

    # Well-behaved subscriber: complete, gapless.
    assert good.stats.events == pub.published
    assert good.stats.gaps == 0
    assert good.duplicate_events == 0

    # Flaky subscriber: exactly-once-or-explicit-gap.
    assert flaky.duplicate_events == 0
    assert flaky.stats.order_violations == 0
    delivered = {int(e.split(":")[1]) for e in flaky.received_event_ids}
    gap_cover = IntervalSet()
    for _p, start, end in flaky.stats.gap_ranges:
        gap_cover.add(start, end)
    for event_id in good.received_event_ids:
        ts = int(event_id.split(":")[1])
        assert ts in delivered or ts in gap_cover, f"event {ts} silently lost"
    for ts in delivered:
        assert ts not in gap_cover, f"event {ts} both delivered and gapped"
