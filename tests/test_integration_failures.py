"""Integration tests: exactly-once delivery under broker failures.

These drive full overlays (PHB + SHB + clients) through crash/recovery
schedules and verify the end-to-end guarantee: every subscriber
receives every matching event exactly once, in per-pubend timestamp
order, with no gaps (early release is disabled here, as in the paper's
experiments).
"""

from collections import Counter

import pytest

from repro import (
    DurableSubscriber,
    FailureSchedule,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_chain,
    build_two_broker,
)


def build(sim, pubends=("P1",), intermediates=0, **shb_kwargs):
    if intermediates:
        return build_chain(sim, list(pubends), n_intermediates=intermediates, **shb_kwargs)
    return build_two_broker(sim, list(pubends), **shb_kwargs)


def make_world(sim, overlay, n_subs=4, rate=200):
    machine = Node(sim, "clients")
    subs = []
    for i in range(n_subs):
        sub = DurableSubscriber(
            sim, f"s{i}", machine, In("group", [i % 2, 2 + i % 2]), record_events=True
        )
        sub.connect(overlay.shbs[0])
        subs.append(sub)
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    return subs, pub


def assert_exactly_once(subs, pub, matches_per_event=2):
    counts = Counter()
    for sub in subs:
        assert sub.stats.order_violations == 0
        assert sub.duplicate_events == 0
        assert sub.stats.gaps == 0
        for event_id in sub.received_event_ids:
            counts[event_id] += 1
    assert len(counts) == pub.published
    assert all(c == matches_per_event for c in counts.values())


class TestSHBFailure:
    @pytest.mark.parametrize("crash_at,down", [
        (5_000, 3_000),
        (5_130, 2_511),
        (5_001, 100),
        (3_333, 7_777),
    ])
    def test_shb_crash_recovery_exactly_once(self, crash_at, down):
        sim = Scheduler()
        overlay = build(sim)
        shb = overlay.shbs[0]
        subs, pub = make_world(sim, overlay)
        faults = FailureSchedule(sim)
        faults.crash_broker(shb, crash_at, down)
        sim.run_until(crash_at + down + 500)
        for sub in subs:
            if not sub.connected:
                sub.connect(shb)
        sim.run_until(crash_at + down + 12_000)
        pub.stop()
        sim.run_until(crash_at + down + 17_000)
        # Exactly the scheduled fault happened, inside the crash window.
        window = faults.records_between(crash_at, crash_at + down)
        assert [(r.kind, r.target, r.at_ms) for r in window] == [
            ("crash", shb.name, crash_at)
        ]
        assert faults.records_between(0, crash_at - 1) == []
        assert_exactly_once(subs, pub)

    def test_repeated_shb_crashes(self):
        sim = Scheduler()
        overlay = build(sim)
        shb = overlay.shbs[0]
        subs, pub = make_world(sim, overlay)
        faults = FailureSchedule(sim)
        faults.repeated_crashes(shb, first_at_ms=3_000, down_ms=1_000,
                                period_ms=6_000, count=3)
        t = 3_000
        for _ in range(3):
            sim.run_until(t + 1_500)
            for sub in subs:
                if not sub.connected:
                    sub.connect(shb)
            t += 6_000
        sim.run_until(t + 5_000)
        pub.stop()
        sim.run_until(t + 10_000)
        # One crash per cycle; records_between slices the cycles apart.
        assert len(faults.records_between(0, t)) == 3
        for k in range(3):
            cycle = faults.records_between(3_000 + k * 6_000, 3_000 + k * 6_000 + 5_999)
            assert len(cycle) == 1 and cycle[0].at_ms == 3_000 + k * 6_000
        assert_exactly_once(subs, pub)

    def test_mass_catchup_after_recovery(self):
        """All subscribers reconnect at once (the Section 5.3 scenario)."""
        sim = Scheduler()
        overlay = build(sim)
        shb = overlay.shbs[0]
        subs, pub = make_world(sim, overlay, n_subs=8)
        faults = FailureSchedule(sim)
        faults.crash_broker(shb, 5_000, 4_000)
        sim.run_until(12_000)  # constream recovers first
        for sub in subs:
            sub.connect(shb)
        sim.run_until(25_000)
        pub.stop()
        sim.run_until(30_000)
        assert [r.target for r in faults.records_between(5_000, 9_000)] == [shb.name]
        assert_exactly_once(subs, pub, matches_per_event=4)
        # 8 subscribers x 1 pubend catchups completed
        assert len(shb.catchup_durations_ms) == 8


class TestPHBFailure:
    def test_phb_crash_loses_only_unlogged_events(self):
        """Events staged but unsynced at the PHB die with it (publishers
        would retransmit in a full deployment); everything logged is
        delivered exactly once."""
        sim = Scheduler()
        overlay = build(sim)
        subs, pub = make_world(sim, overlay)
        sim.run_until(5_000)
        overlay.phb.fail_for(2_000)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(25_000)
        lost = overlay.phb.pubends["P1"].events_lost_in_crash
        published_down = sum(
            1 for _ in range(1)
        )
        counts = Counter()
        for sub in subs:
            assert sub.stats.order_violations == 0
            assert sub.duplicate_events == 0
            for event_id in sub.received_event_ids:
                counts[event_id] += 1
        # Each delivered event delivered exactly twice (2 matching subs);
        # no partial deliveries.
        assert all(c == 2 for c in counts.values())
        # Everything the PHB durably accepted was delivered.
        accepted = overlay.phb.pubends["P1"].events_published
        assert len(counts) == accepted

    def test_intermediate_broker_crash(self):
        sim = Scheduler()
        overlay = build(sim, intermediates=1)
        subs, pub = make_world(sim, overlay)
        sim.run_until(5_000)
        overlay.intermediates[0].fail_for(2_000)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(26_000)
        assert_exactly_once(subs, pub)


class TestClientChurnDuringFailures:
    def test_subscriber_disconnected_across_shb_crash(self):
        sim = Scheduler()
        overlay = build(sim)
        shb = overlay.shbs[0]
        subs, pub = make_world(sim, overlay)
        victim = subs[0]
        sim.run_until(3_000)
        victim.disconnect()
        sim.run_until(4_000)
        shb.fail_for(2_000)
        sim.run_until(7_000)
        for sub in subs:
            if not sub.connected:
                sub.connect(shb)
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(25_000)
        assert_exactly_once(subs, pub)

    def test_churn_while_shb_crashes(self):
        sim = Scheduler()
        overlay = build(sim)
        shb = overlay.shbs[0]
        subs, pub = make_world(sim, overlay, n_subs=6)
        # Staggered disconnect/reconnects crossing a crash window.
        for i, sub in enumerate(subs):
            sim.after(2_000 + 400 * i, sub.disconnect)

        def reconnect(s):
            if not s.connected and not shb.node.is_down:
                s.connect(shb)

        for i, sub in enumerate(subs):
            sim.after(6_500 + 300 * i, reconnect, sub)
            sim.after(12_000 + 100 * i, reconnect, sub)
        sim.after(4_000, lambda: shb.fail_for(3_000))
        sim.run_until(20_000)
        pub.stop()
        sim.run_until(26_000)
        for sub in subs:
            if not sub.connected:
                sub.connect(shb)
        sim.run_until(32_000)
        assert_exactly_once(subs, pub, matches_per_event=3)
