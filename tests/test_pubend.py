"""Tests for pubends: timestamping, dissemination, nack service, release."""

import pytest

from repro.core.messages import KnowledgeUpdate
from repro.core.pubend import Pubend
from repro.core.release import MaxRetainPolicy
from repro.net.simtime import Scheduler
from repro.storage.disk import SimDisk
from repro.util.intervals import IntervalSet


@pytest.fixture
def sim():
    return Scheduler()


def make_pubend(sim, disk=False, policy=None):
    d = SimDisk(sim, "d", sync_interval_ms=5, sync_duration_ms=10) if disk else None
    pubend = Pubend("P1", sim, disk=d, policy=policy, silence_interval_ms=25)
    updates = []
    pubend.on_knowledge = updates.append
    return pubend, updates, d


class TestPublish:
    def test_timestamps_strictly_increase(self, sim):
        pubend, updates, _ = make_pubend(sim)
        events = [pubend.publish({"g": i}) for i in range(5)]
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(set(stamps))

    def test_timestamp_tracks_sim_time(self, sim):
        pubend, updates, _ = make_pubend(sim)
        sim.run_until(500)
        e = pubend.publish({"g": 0})
        assert e.timestamp >= 500

    def test_dissemination_carries_event_and_silence(self, sim):
        pubend, updates, _ = make_pubend(sim)
        sim.run_until(100)
        pubend.publish({"g": 0})
        assert len(updates) >= 1
        upd = updates[-1]
        assert len(upd.d_events) == 1
        t = upd.d_events[0].timestamp
        assert upd.max_tick() == t
        # The union of everything disseminated covers [1, t] with no gaps
        # (silence fills every tick that carries no event).
        covered = IntervalSet()
        for u in updates:
            for s, e in u.s_ranges:
                covered.add(s, e)
            for ev in u.d_events:
                covered.add(ev.timestamp)
        assert covered.as_tuples() == [(1, t)]

    def test_dissemination_waits_for_durability(self, sim):
        pubend, updates, disk = make_pubend(sim, disk=True)
        pubend.publish({"g": 0})
        assert updates == []     # staged, not yet durable
        sim.run_until(20)
        assert len(updates) == 1

    def test_silence_flush_advances_horizon(self, sim):
        pubend, updates, _ = make_pubend(sim)
        sim.run_until(100)
        assert any(u.s_ranges for u in updates)
        assert pubend.disseminated >= 74  # silence up to ~now-1

    def test_silence_never_covers_staged_events(self, sim):
        pubend, updates, disk = make_pubend(sim, disk=True)
        sim.run_until(50)
        e = pubend.publish({"g": 0})
        sim.run_until(52)  # silence timer may fire before the sync (at 65)
        for u in updates:
            for start, end in u.s_ranges:
                assert not (start <= e.timestamp <= end)

    def test_events_published_counter(self, sim):
        pubend, _, _ = make_pubend(sim)
        pubend.publish({"g": 0})
        pubend.publish({"g": 1})
        assert pubend.events_published == 2


def pubend_initial_gap_start(upd):
    return upd.s_ranges[0][0] if upd.s_ranges else 1


class TestServeNack:
    def test_serves_events_and_silence(self, sim):
        pubend, updates, _ = make_pubend(sim)
        sim.run_until(10)
        e1 = pubend.publish({"g": 0})
        sim.run_until(30)
        e2 = pubend.publish({"g": 1})
        sim.run_until(60)
        reply = pubend.serve_nack(IntervalSet([(1, pubend.disseminated)]))
        assert [e.timestamp for e in reply.d_events] == [e1.timestamp, e2.timestamp]
        covered = IntervalSet(reply.s_ranges)
        for e in (e1, e2):
            assert e.timestamp not in covered

    def test_does_not_answer_beyond_dissemination(self, sim):
        pubend, _, _ = make_pubend(sim)
        sim.run_until(50)
        reply = pubend.serve_nack(IntervalSet([(1, 10_000)]))
        assert reply.max_tick() is None or reply.max_tick() <= pubend.disseminated

    def test_serves_l_for_released_ticks(self, sim):
        pubend, _, _ = make_pubend(sim)
        sim.run_until(10)
        pubend.publish({"g": 0})
        sim.run_until(100)
        pubend.release_agg.register_child("c")
        pubend.on_release_report("c", released=50, latest_delivered=60)
        assert pubend.lost_below == 51
        reply = pubend.serve_nack(IntervalSet([(1, 60)]))
        assert reply.l_ranges == [(1, 50)]

    def test_max_events_cap(self, sim):
        pubend, _, _ = make_pubend(sim)
        for i in range(10):
            sim.run_until(sim.now + 5)
            pubend.publish({"g": i})
        sim.run_until(100)
        reply = pubend.serve_nack(IntervalSet([(1, pubend.disseminated)]), max_events=3)
        assert len(reply.d_events) == 3
        # Covered span stops at the last served event; the rest stays
        # unanswered for the retry.
        assert reply.max_tick() == reply.d_events[-1].timestamp


class TestRelease:
    def test_chops_log_for_acked_prefix(self, sim):
        pubend, _, _ = make_pubend(sim)
        sim.run_until(10)
        e = pubend.publish({"g": 0})
        sim.run_until(50)
        pubend.on_release_report("c", released=e.timestamp, latest_delivered=e.timestamp + 5)
        assert pubend.log.live_event_count == 0
        assert pubend.lost_below == e.timestamp + 1

    def test_max_retain_releases_unacked_old_ticks(self, sim):
        policy = MaxRetainPolicy(max_retain_ms=100)
        pubend, _, _ = make_pubend(sim, policy=policy)
        sim.run_until(10)
        e = pubend.publish({"g": 0})
        sim.run_until(1_000)
        # Subscriber never acked (released stuck at 0) but Td advanced.
        pubend.on_release_report("c", released=0, latest_delivered=900)
        assert pubend.apply_release() == 0  # already applied by report
        assert pubend.lost_below > e.timestamp
        assert pubend.log.live_event_count == 0

    def test_never_releases_beyond_td(self, sim):
        policy = MaxRetainPolicy(max_retain_ms=10)
        pubend, _, _ = make_pubend(sim, policy=policy)
        sim.run_until(500)
        pubend.on_release_report("c", released=0, latest_delivered=100)
        assert pubend.lost_below <= 101


class TestCrash:
    def test_staged_events_lost(self, sim):
        pubend, updates, disk = make_pubend(sim, disk=True)
        pubend.publish({"g": 0})
        disk.crash_reset()
        pubend.crash_reset()
        sim.run_until(200)
        pubend.recover()
        assert pubend.events_lost_in_crash == 1
        assert pubend.log.live_event_count == 0

    def test_recovery_resumes_publishing(self, sim):
        pubend, updates, disk = make_pubend(sim, disk=True)
        pubend.publish({"g": 0})
        sim.run_until(50)  # durable
        disk.crash_reset()
        pubend.crash_reset()
        sim.run_until(200)
        pubend.recover()
        e = pubend.publish({"g": 1})
        sim.run_until(300)
        assert e.timestamp >= 200
        assert pubend.log.get(e.timestamp) is not None

    def test_recovered_log_serves_nacks(self, sim):
        pubend, updates, disk = make_pubend(sim, disk=True)
        e = pubend.publish({"g": 0})
        sim.run_until(50)
        disk.crash_reset()
        pubend.crash_reset()
        sim.run_until(200)
        pubend.recover()
        reply = pubend.serve_nack(IntervalSet([(1, 199)]))
        assert [x.timestamp for x in reply.d_events] == [e.timestamp]
