"""Lossy-link fault injection: drop, duplication, reordering, corruption.

The fault layer sits under the protocol's recovery machinery, so these
tests pin down its mechanics in isolation: which knob produces which
observable effect, that everything is counted, that the RNG is seeded
per direction (same seed → same loss pattern), and that with the knobs
cleared the link returns to the exact legacy FIFO path.
"""

import pytest

from repro.net.link import FaultSpec, Link, link_stats
from repro.net.node import Node
from repro.net.simtime import Scheduler


@pytest.fixture
def env():
    sim = Scheduler()
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(sim, a, b, latency_ms=2.0)
    return sim, a, b, link


def _collect(link_end, cost=0.1):
    inbox = []
    link_end.on_receive(inbox.append, lambda _m: cost)
    return inbox


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_p=1.5)
        with pytest.raises(ValueError):
            FaultSpec(dup_p=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(reorder_p=0.5, reorder_max_ms=-1.0)

    def test_active(self):
        assert not FaultSpec().active
        assert FaultSpec(drop_p=0.1).active
        assert FaultSpec(corrupt_p=0.1).active


class TestDrop:
    def test_drop_all(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(FaultSpec(drop_p=1.0))
        for i in range(20):
            link.a_to_b.send(i)
        sim.run()
        assert inbox == []
        assert link.a_to_b.fault_dropped == 20
        assert link_stats(sim).fault_dropped == 20

    def test_drop_partial_is_seeded(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(FaultSpec(drop_p=0.5), seed=7)
        for i in range(40):
            link.a_to_b.send(i)
        sim.run()
        assert 0 < len(inbox) < 40

        # Same seed, fresh world: identical survivors in identical order.
        sim2 = Scheduler()
        link2 = Link(sim2, Node(sim2, "a"), Node(sim2, "b"), latency_ms=2.0)
        inbox2 = _collect(link2.a_to_b)
        link2.a_to_b.set_faults(FaultSpec(drop_p=0.5), seed=7)
        for i in range(40):
            link2.a_to_b.send(i)
        sim2.run()
        assert inbox2 == inbox

    def test_directions_draw_independently(self, env):
        """The two directions of one link get distinct RNG streams."""
        sim, a, b, link = env
        fwd = _collect(link.a_to_b)
        rev = _collect(link.b_to_a)
        link.set_faults(FaultSpec(drop_p=0.5), FaultSpec(drop_p=0.5), seed=3)
        for i in range(40):
            link.a_to_b.send(i)
            link.b_to_a.send(i)
        sim.run()
        assert fwd != rev  # astronomically unlikely to coincide


class TestDuplication:
    def test_dup_all(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(FaultSpec(dup_p=1.0))
        for i in range(5):
            link.a_to_b.send(i)
        sim.run()
        assert sorted(inbox) == sorted([0, 0, 1, 1, 2, 2, 3, 3, 4, 4])
        assert link.a_to_b.duplicated == 5


class TestReordering:
    def test_reorder_breaks_fifo(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(
            FaultSpec(reorder_p=0.5, reorder_max_ms=50.0), seed=11
        )
        for i in range(30):
            link.a_to_b.send(i)
        sim.run()
        assert sorted(inbox) == list(range(30))  # nothing lost
        assert inbox != list(range(30))          # but not FIFO
        assert link.a_to_b.reordered > 0


class TestCorruption:
    def test_corrupt_all_dropped_by_crc(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(FaultSpec(corrupt_p=1.0))
        for i in range(10):
            link.a_to_b.send(i)
        sim.run()
        assert inbox == []
        assert link.a_to_b.corrupt_dropped == 10
        assert link_stats(sim).corrupt_dropped == 10

    def test_corruption_composes_with_batching(self):
        sim = Scheduler()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = Link(sim, a, b, latency_ms=2.0, batch_window_ms=5.0)
        inbox = _collect(link.a_to_b)
        link.a_to_b.set_faults(FaultSpec(corrupt_p=1.0))
        for i in range(8):
            link.a_to_b.send(i)
        sim.run()
        assert inbox == []
        # A corrupted batch loses all the messages it carried.
        assert link.a_to_b.corrupt_dropped == 8


class TestClearAndRestore:
    def test_clear_faults_restores_legacy_path(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.set_faults(FaultSpec(drop_p=1.0), FaultSpec(drop_p=1.0))
        link.a_to_b.send("lost")
        sim.run()
        link.clear_faults()
        for i in range(10):
            link.a_to_b.send(i)
        sim.run()
        assert inbox == list(range(10))
        assert link.a_to_b._faults is None  # back on the exact fast path

    def test_on_restore_fires_only_after_down(self, env):
        sim, a, b, link = env
        fired = []
        link.on_restore(lambda: fired.append(sim.now))
        link.restore()          # not down: no-op
        assert fired == []
        link.sever()
        link.restore()
        assert len(fired) == 1

    def test_sever_counts_buffered_batch_as_dropped(self):
        """A batch sitting in the flush buffer when the link is severed
        is accounted under ``dropped`` (it never reached the wire)."""
        sim = Scheduler()
        a, b = Node(sim, "a"), Node(sim, "b")
        link = Link(sim, a, b, latency_ms=2.0, batch_window_ms=50.0)
        _collect(link.a_to_b)
        before = link_stats(sim).dropped
        for i in range(4):
            link.a_to_b.send(i)
        link.sever()            # window still open: 4 messages buffered
        sim.run()
        assert link_stats(sim).dropped == before + 4
