"""Pinned regressions for bugs the crash-point explorer flushed out.

Each of the three bugs below was found by `repro.sim.crashpoints`
as a silent-loss oracle violation, diagnosed, and fixed; the unit
tests pin the fixed mechanism and the end-to-end tests replay the
exact crash boundaries that exposed them.

1. **Nack replies union-filtered against not-yet-registered
   subscriptions.**  A nack carrying ``refilter_below`` is (partly) on
   behalf of a subscription the upstream union may not include yet —
   a reconnect-anywhere registration, or a re-registration racing
   nacks already in flight through the SHB's consolidator after the
   SHB lost its registry in a crash.  The PHB (and the intermediate
   relay) converted those D events to S, which the catchup stream
   trusted as "nothing matched here": silent loss.  Fix: honor
   ``refilter_below`` at every serve point.

2. **PFS silence trusted below the registration cursor.**  A
   subscription re-created after a registry-losing crash enters the
   matching engine at the current delivery cursor; PFS records below
   that point were matched without it, so "no record ⇒ silence" is
   meaningless there.  Fix: persist the per-pubend registration cursor
   (``pfs_from``) in the subscription row and refilter below it on any
   reconnect whose CT is older.

3. **Empty-registry refresh emptied the upstream union.**  A recovered
   SHB whose registry rows died uncommitted sent an authoritative
   epoch refresh with zero subscriptions; the PHB replaced its warm
   union with nothing and converted every live D tick to S during the
   window before clients re-registered.  Fix: detect the loss (the
   recovered PFS references subscriber nums the registry cannot name),
   hold union refreshes and release reports while suspect, and clear
   once re-registrations cover every PFS-referenced num.
"""

import pytest

from repro.broker.phb import PublisherHostingBroker
from repro.broker.topology import build_two_broker
from repro.client.subscriber import DurableSubscriber
from repro.core import messages as M
from repro.core.events import Event
from repro.core.subscription import SubscriptionRegistry
from repro.matching.predicates import Eq, In
from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.sim import crashpoints as cp
from repro.sim.failures import FailureSchedule
from repro.storage.table import PersistentTable


@pytest.fixture(scope="module")
def census_points():
    return cp.census()


def _first_point(census, site, owner, ordinal=0):
    group = [p for p in census if p.site == site and p.owner == owner]
    assert len(group) > ordinal, f"no firing #{ordinal} of {site}@{owner}"
    return group[ordinal]


# ---------------------------------------------------------------------------
# Bug 1: refilter_below honored when serving nacks
# ---------------------------------------------------------------------------
class TestNackRefilterBelowHonored:
    def _phb_with_child(self):
        sim = Scheduler()
        phb = PublisherHostingBroker(sim, "phb")
        from repro.matching.engine import MatchingEngine

        phb.child_engines["c1"] = MatchingEngine()
        phb.child_engines["c1"].add("s1", Eq("group", 0))
        phb.child_filter_ready["c1"] = True
        return phb

    def _update(self):
        update = M.KnowledgeUpdate("P1")
        update.d_events = [
            Event("P1", 5, {"group": 2}),
            Event("P1", 50, {"group": 2}),
        ]
        return update

    def test_d_events_below_keep_below_pass_unfiltered(self):
        phb = self._phb_with_child()
        out = phb._filter_for_child("c1", self._update(), keep_below=10)
        # Tick 5 is below the refilter boundary: the requesting
        # subscription may not be in the union yet, so the event must
        # travel even though the union matches nothing at it.  Tick 50
        # is above the boundary and is filtered normally.
        assert [e.timestamp for e in out.d_events] == [5]
        assert (50, 50) in [tuple(r) for r in out.s_ranges]

    def test_without_keep_below_both_filtered(self):
        phb = self._phb_with_child()
        out = phb._filter_for_child("c1", self._update())
        assert out.d_events == []

    def test_serve_path_threads_refilter_below(self, census_points):
        # End to end: crash the SHB's store disk mid-sync before the
        # first table commit — registry and tables are lost, clients
        # re-register mid-flight, and their first nack window races the
        # re-registration through the consolidator.  Pre-fix this lost
        # the un-registered groups' events silently.
        point = _first_point(census_points, "disk.sync.begin", "shb1")
        outcome = cp._explore_one(point, down_ms=450.0, grace_ms=20_000.0)
        assert outcome.ok, outcome.violations


# ---------------------------------------------------------------------------
# Bug 2: pfs_from persisted and enforced on reconnect
# ---------------------------------------------------------------------------
class TestPfsFromRegistrationCursor:
    def test_pfs_from_survives_commit_and_reload(self):
        subs = PersistentTable("subs")
        released = PersistentTable("released")
        registry = SubscriptionRegistry(subs, released)
        registry.create("s1", Eq("g", 1), pfs_from={"P1": 42})
        registry.commit()

        reloaded = SubscriptionRegistry(subs, released)
        sub = reloaded.get("s1")
        assert sub is not None
        assert sub.pfs_from == {"P1": 42}

    def test_legacy_two_tuple_rows_still_load(self):
        subs = PersistentTable("subs")
        released = PersistentTable("released")
        subs.put("old", (7, Eq("g", 1)))
        subs.commit()
        registry = SubscriptionRegistry(subs, released)
        sub = registry.get("old")
        assert sub is not None and sub.num == 7
        assert sub.pfs_from == {}

    def test_registration_covers_only_above_existing_pfs_records(self):
        # During a recovery replay the PFS can be ahead of the delivery
        # cursor, and its records were written under the old life's num
        # assignment; a subscription created in that window must not
        # trust them.
        sim = Scheduler()
        overlay = build_two_broker(sim, pubends=["P1"])
        shb = overlay.shbs[0]
        shb.pfs.write("P1", 500, [7])  # old-life record, cursor still 0
        sub = DurableSubscriber(
            sim, "late", Node(sim, "m-late"), Eq("group", 0), record_events=True
        )
        sub.connect(shb)
        sim.run_until(10.0)
        assert shb.registry.get("late").pfs_from["P1"] == 500

    def test_reconnect_below_registration_cursor_recovers(self, census_points):
        # End to end: the registry-losing crash re-creates xp-s2's row
        # at the post-recovery cursor; its next reconnect presents a CT
        # from *before* the crash.  Pre-fix the catchup trusted PFS
        # silence across the replayed span and lost it.
        point = _first_point(census_points, "table.commit.pre", "shb1")
        outcome = cp._explore_one(point, down_ms=450.0, grace_ms=20_000.0)
        assert outcome.ok, outcome.violations


# ---------------------------------------------------------------------------
# Bug 3: suspect-registry mode after a registry-losing crash
# ---------------------------------------------------------------------------
class TestSuspectRegistryMode:
    def _overlay(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, pubends=["P1"])
        shb = overlay.shbs[0]
        subscriber = DurableSubscriber(
            sim, "s1", Node(sim, "m1"), In("group", [0, 1]),
            record_events=True, connect_retry_ms=200.0,
        )
        subscriber.connect(shb)
        for i in range(30):
            sim.at(5.0 + 5.0 * i, lambda i=i: overlay.phb.publish(
                "P1", {"group": i % 2}
            ))
        return sim, overlay, shb, subscriber

    def test_registry_loss_detected_and_union_preserved(self):
        sim, overlay, shb, subscriber = self._overlay()
        schedule = FailureSchedule(sim)
        # Crash before the first 250 ms table commit: the registry row
        # dies uncommitted, but PFS records (durable after ~33 ms disk
        # syncs) survive and reference the lost subscription's num.
        sim.at(150.0, lambda: schedule.crash_now(shb, 100.0))
        sim.run_until(300.0)

        assert shb.registry_suspect is True
        assert len(shb.registry) == 0
        # The parent's union was NOT emptied by a recovery refresh: it
        # still matches the lost subscription's events, so live D ticks
        # keep flowing instead of being converted to silence.
        child = overlay.phb.child_names[0]
        assert overlay.phb.child_engines[child].matches_any({"group": 0})

    def test_suspect_clears_on_reregistration(self):
        sim, overlay, shb, subscriber = self._overlay()
        schedule = FailureSchedule(sim)
        sim.at(150.0, lambda: schedule.crash_now(shb, 100.0))
        sim.at(400.0, lambda: (
            subscriber.connect(shb) if not subscriber.connected else None
        ))
        sim.run_until(1000.0)

        assert shb.registry_suspect is False
        assert len(shb.registry) == 1
        assert subscriber.connected

    def test_refresh_and_release_held_while_suspect(self):
        sim, overlay, shb, _subscriber = self._overlay()
        sim.run_until(50.0)
        sent = []
        shb.send_up = lambda msg: sent.append(msg)

        shb.registry_suspect = True
        shb._refresh_subscriptions()
        shb._report_release()
        assert sent == []

        shb.registry_suspect = False
        shb._refresh_subscriptions()
        shb._report_release()
        kinds = {type(m) for m in sent}
        assert M.SubscriptionSync in kinds
        assert M.ReleaseUpdate in kinds

    def test_live_dissemination_during_recovery_window(self, census_points):
        # End to end: crash at a pfs.write_batch boundary ~174 ms in
        # (after PFS records are durable, before the first registry
        # commit).  Pre-fix, the recovered SHB's count-0 epoch refresh
        # emptied the PHB union and live events disseminated as S while
        # clients were still reconnecting — accepted as final silence.
        point = _first_point(census_points, "pfs.write_batch.pre", "shb1", ordinal=16)
        outcome = cp._explore_one(point, down_ms=450.0, grace_ms=20_000.0)
        assert outcome.ok, outcome.violations
