"""Tests for the simulated node's CPU service model and crash semantics."""

import pytest

from repro.net.node import Node
from repro.net.simtime import Scheduler
from repro.util.errors import NodeDownError


@pytest.fixture
def sim():
    return Scheduler()


class TestServiceModel:
    def test_work_completes_after_service_time(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(5.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [5.0]

    def test_fifo_queueing_serializes_service(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(5.0, lambda: done.append(("a", sim.now)))
        node.submit(3.0, lambda: done.append(("b", sim.now)))
        node.submit(2.0, lambda: done.append(("c", sim.now)))
        sim.run()
        assert done == [("a", 5.0), ("b", 8.0), ("c", 10.0)]

    def test_speed_scales_cost(self, sim):
        node = Node(sim, "fast", speed=2.0)
        done = []
        node.submit(10.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [5.0]

    def test_zero_cost_work_runs_immediately_in_order(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(0.0, lambda: done.append("a"))
        node.submit(0.0, lambda: done.append("b"))
        sim.run()
        assert done == ["a", "b"]

    def test_busy_time_accounting(self, sim):
        node = Node(sim, "n1")
        node.submit(5.0, lambda: None)
        node.submit(7.0, lambda: None)
        sim.run()
        assert node.busy.total_busy_ms == pytest.approx(12.0)

    def test_idle_fraction(self, sim):
        node = Node(sim, "n1")
        node.submit(25.0, lambda: None)
        sim.run_until(100)
        assert node.busy.idle_fraction(sim.now) == pytest.approx(0.75)

    def test_negative_cost_rejected(self, sim):
        node = Node(sim, "n1")
        with pytest.raises(ValueError):
            node.submit(-1.0, lambda: None)

    def test_work_submitted_from_callback_queues(self, sim):
        node = Node(sim, "n1")
        done = []

        def first():
            done.append(("first", sim.now))
            node.submit(4.0, lambda: done.append(("second", sim.now)))

        node.submit(6.0, first)
        sim.run()
        assert done == [("first", 6.0), ("second", 10.0)]


class TestCrash:
    def test_submit_to_down_node_raises(self, sim):
        node = Node(sim, "n1")
        node.crash()
        with pytest.raises(NodeDownError):
            node.submit(1.0, lambda: None)

    def test_try_submit_returns_false_when_down(self, sim):
        node = Node(sim, "n1")
        node.crash()
        assert node.try_submit(1.0, lambda: None) is False

    def test_crash_discards_queued_work(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(5.0, lambda: done.append("a"))
        node.submit(5.0, lambda: done.append("b"))
        sim.run_until(2)
        node.crash()
        node.recover()
        sim.run()
        assert done == []

    def test_in_service_work_lost_on_crash(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(10.0, lambda: done.append("x"))
        sim.run_until(5)
        node.crash()
        sim.run()
        assert done == []

    def test_work_after_recovery_runs(self, sim):
        node = Node(sim, "n1")
        done = []
        node.crash()
        node.recover()
        node.submit(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [sim.now]

    def test_fail_for_auto_recovers(self, sim):
        node = Node(sim, "n1")
        node.fail_for(50.0)
        assert node.is_down
        sim.run_until(49)
        assert node.is_down
        sim.run_until(51)
        assert not node.is_down

    def test_crash_and_recover_listeners(self, sim):
        node = Node(sim, "n1")
        events = []
        node.on_crash(lambda: events.append("crash"))
        node.on_recover(lambda: events.append("recover"))
        node.fail_for(10.0)
        sim.run_until(20)
        assert events == ["crash", "recover"]

    def test_crash_idempotent(self, sim):
        node = Node(sim, "n1")
        events = []
        node.on_crash(lambda: events.append("crash"))
        node.crash()
        node.crash()
        assert events == ["crash"]


class TestStall:
    def test_stall_delays_next_service(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(5.0, lambda: done.append(("a", sim.now)))
        node.submit(5.0, lambda: done.append(("b", sim.now)))
        sim.run_until(6)   # 'a' done at 5, 'b' started at 5
        node.stall(20.0)   # does not affect 'b' (already in service)
        sim.run()
        assert done == [("a", 5.0), ("b", 10.0)]

    def test_stall_blocks_idle_node_until_expiry(self, sim):
        node = Node(sim, "n1")
        done = []
        node.stall(20.0)
        node.submit(5.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [25.0]

    def test_stall_with_queued_work_resumes(self, sim):
        node = Node(sim, "n1")
        done = []
        node.submit(5.0, lambda: done.append(("a", sim.now)))
        sim.run_until(5)
        node.stall(10.0)
        node.submit(5.0, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 5.0), ("b", 20.0)]
