"""Determinism: identical runs produce byte-identical transcripts.

The whole simulation is a deterministic function of its inputs: the
scheduler breaks timestamp ties by insertion order, publishers are
periodic, and the only randomness is what a scenario injects through an
explicitly seeded ``random.Random``.  These tests run each scenario
twice — in the same process, so they also catch accidental dependence
on object identity or hash iteration order — and require the full
delivery transcript and every sampled metric series to serialize to the
same bytes.  Parametrized over batch windows because batching
introduces new scheduling (flush timers, per-batch callbacks) that must
be just as deterministic as the per-message path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
from typing import List

import pytest

from repro import (
    DurableSubscriber,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)
from repro.core import messages as M
from repro.matching.engine import MatchingEngine
from repro.metrics.collector import MetricsCollector

# 0 = per-message path, 1 = sub-tick flush timers, 10 = steady batching.
WINDOWS = [0.0, 1.0, 10.0]


def _record_transcript(sim: Scheduler, sub: DurableSubscriber, out: List[str]) -> None:
    """Wrap ``sub._on_message`` so every consumed message is logged.

    Must be installed before ``connect()`` wires the link handler.
    """
    inner = sub._on_message

    def wrapped(msg: object) -> None:
        if isinstance(msg, M.EventMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} E {msg.pubend} {msg.t}")
        elif isinstance(msg, M.SilenceMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} S {msg.pubend} {msg.t}")
        elif isinstance(msg, M.GapMessage):
            out.append(f"{sim.now:.6f} {sub.sub_id} G {msg.pubend} {msg.t}")
        inner(msg)

    sub._on_message = wrapped  # type: ignore[method-assign]


def _serialize_series(collector: MetricsCollector) -> str:
    lines = []
    for name in sorted(collector.series):
        for t, v in collector.get(name).points:
            lines.append(f"{name} {t:.6f} {v!r}")
    return "\n".join(lines)


def _run_quickstart(
    batch_window_ms: float,
    seed: int,
    trace_sample_rate: float = None,
) -> bytes:
    """The quickstart scenario plus seeded random churn.

    ``trace_sample_rate`` installs the event tracer at that rate
    (``None`` leaves it uninstalled entirely); either way the tracer is
    a pure observer and the returned bytes must not depend on it.
    """
    rng = random.Random(seed)
    sim = Scheduler()
    if trace_sample_rate is not None:
        from repro.metrics.trace import install_tracer

        install_tracer(sim, trace_sample_rate, seed=seed)
    overlay = build_two_broker(sim, pubends=["P1"], batch_window_ms=batch_window_ms)
    shb = overlay.shbs[0]
    transcript: List[str] = []

    machine = Node(sim, "client-machine")
    subs = []
    for i in range(4):
        sub = DurableSubscriber(
            sim, f"det-s{i + 1}", machine, In("group", [i % 4, (i + 1) % 4]),
            record_events=True,
        )
        _record_transcript(sim, sub, transcript)
        sub.connect(shb)
        subs.append(sub)

    publisher = PeriodicPublisher(
        sim, overlay.phb, "P1", rate_per_s=100,
        attribute_fn=lambda i: {"group": i % 4},
    )
    publisher.start()

    collector = MetricsCollector(sim, interval_ms=500.0)
    collector.gauge("latestDelivered", lambda: float(shb.latest_delivered("P1")))
    collector.counter_rate(
        "events", lambda: float(sum(s.stats.events for s in subs))
    )
    collector.link_batching(sim, lambda: float(publisher.published))
    collector.start()

    # Seeded churn: each subscriber takes one random nap.
    for sub in subs:
        down_at = rng.uniform(2_000.0, 6_000.0)
        down_for = rng.uniform(500.0, 2_500.0)
        sim.at(down_at, sub.disconnect)
        sim.at(down_at + down_for, lambda s=sub: s.connect(shb))

    sim.run_until(12_000.0)
    publisher.stop()
    sim.run_until(15_000.0)
    collector.stop()

    for sub in subs:
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
    body = "\n".join(transcript) + "\n---\n" + _serialize_series(collector)
    return body.encode()


def _run_shb_failure(batch_window_ms: float, seed: int) -> bytes:
    """SHB crash/recovery with a seeded crash time and reconnects."""
    rng = random.Random(seed)
    sim = Scheduler()
    overlay = build_two_broker(sim, pubends=["P1"], batch_window_ms=batch_window_ms)
    shb = overlay.shbs[0]
    transcript: List[str] = []

    machine = Node(sim, "client-machine")
    subs = []
    for i in range(3):
        sub = DurableSubscriber(
            sim, f"fail-s{i + 1}", machine, In("group", [i % 4]),
            record_events=True,
        )
        _record_transcript(sim, sub, transcript)
        sub.connect(shb)
        subs.append(sub)

    publisher = PeriodicPublisher(
        sim, overlay.phb, "P1", rate_per_s=100,
        attribute_fn=lambda i: {"group": i % 4},
    )
    publisher.start()

    collector = MetricsCollector(sim, interval_ms=500.0)
    collector.gauge("latestDelivered", lambda: float(shb.latest_delivered("P1")))
    collector.gauge("released", lambda: float(shb.released("P1")))
    collector.start()

    crash_at = rng.uniform(3_000.0, 5_000.0)
    down_for = rng.uniform(1_000.0, 3_000.0)
    sim.at(crash_at, shb.fail_for, down_for)
    # Clients reconnect at staggered random times after recovery.
    for sub in subs:
        back_at = crash_at + down_for + rng.uniform(200.0, 1_500.0)
        sim.at(back_at, lambda s=sub: s.connect(shb) if not s.connected else None)

    sim.run_until(14_000.0)
    publisher.stop()
    sim.run_until(18_000.0)
    collector.stop()

    for sub in subs:
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        assert sub.stats.events > 0
    body = "\n".join(transcript) + "\n---\n" + _serialize_series(collector)
    return body.encode()


@pytest.mark.parametrize("window", WINDOWS)
def test_quickstart_deterministic(window):
    first = _run_quickstart(window, seed=1234)
    second = _run_quickstart(window, seed=1234)
    assert first == second


@pytest.mark.parametrize("window", WINDOWS)
def test_shb_failure_deterministic(window):
    first = _run_shb_failure(window, seed=99)
    second = _run_shb_failure(window, seed=99)
    assert first == second


_DIGEST_FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "determinism_digests.json"

# Transcripts are stable across *processes* only under a pinned hash
# seed: same-tick fan-out iterates a set of subscribers, so the order
# (and hence the byte stream) follows the per-process hash seed.  CI
# pins PYTHONHASHSEED=0, which is what the fixtures were captured under.
needs_pinned_hashes = pytest.mark.skipif(
    os.environ.get("PYTHONHASHSEED") != "0",
    reason="digest fixtures require PYTHONHASHSEED=0 (set iteration order)",
)


@needs_pinned_hashes
@pytest.mark.parametrize("window", WINDOWS)
def test_quickstart_matches_recorded_digest(window):
    """Guards the exact legacy path: with fault knobs unset and the
    recorded seed, the transcript must be byte-identical to the digest
    captured before the fault-injection layer existed."""
    digests = json.loads(_DIGEST_FIXTURE.read_text())
    got = hashlib.sha256(_run_quickstart(window, seed=1234)).hexdigest()
    assert got == digests[f"quickstart/w{int(window)}/seed1234"]


@needs_pinned_hashes
@pytest.mark.parametrize("window", WINDOWS)
def test_shb_failure_matches_recorded_digest(window):
    digests = json.loads(_DIGEST_FIXTURE.read_text())
    got = hashlib.sha256(_run_shb_failure(window, seed=99)).hexdigest()
    assert got == digests[f"shb_failure/w{int(window)}/seed99"]


@pytest.mark.parametrize("window", WINDOWS)
def test_tracer_off_is_byte_identical(window):
    """An installed-but-disabled tracer (sample_rate=0, the default)
    adds no scheduler events and draws no randomness: the run's bytes
    match a run with no tracer installed at all."""
    bare = _run_quickstart(window, seed=1234)
    installed = _run_quickstart(window, seed=1234, trace_sample_rate=0.0)
    assert bare == installed


def test_tracer_sampling_is_byte_identical():
    """Even with sampling *on*, the tracer is a pure observer: it uses
    a private RNG and its histograms are not part of the serialized
    body, so transcripts and metric series stay byte-identical."""
    bare = _run_quickstart(0.0, seed=1234)
    traced = _run_quickstart(0.0, seed=1234, trace_sample_rate=1.0)
    assert bare == traced


@pytest.mark.parametrize("window", WINDOWS)
def test_batch_matching_toggle_is_byte_identical(window):
    """Batched matching is a pure performance transform: disabling it
    engine-wide (every ``*_batch`` call falls back to a per-event loop)
    must reproduce the exact same transcript and metric series bytes.
    Run per batch window because the constream pump only forms
    multi-event batches once link batching produces them."""
    batched = _run_quickstart(window, seed=1234)
    try:
        MatchingEngine.batch_matching = False
        unbatched = _run_quickstart(window, seed=1234)
    finally:
        MatchingEngine.batch_matching = True
    assert batched == unbatched


def test_different_seeds_differ():
    """Sanity check that the seed actually steers the scenario —
    otherwise the byte-equality above would be vacuous."""
    assert _run_quickstart(0.0, seed=1) != _run_quickstart(0.0, seed=2)


@pytest.mark.parametrize("window", WINDOWS)
def test_transcript_same_events_across_windows(window):
    """Batching may change arrival times but never which events arrive.

    Compare the set of (sub, kind=E, pubend, tick) entries against the
    unbatched run: identical membership and identical per-subscriber
    order.
    """
    def event_lines(raw: bytes):
        per_sub = {}
        for line in raw.decode().split("\n---\n")[0].splitlines():
            _t, sub_id, kind, pubend, tick = line.split()
            if kind == "E":
                per_sub.setdefault(sub_id, []).append((pubend, int(tick)))
        return per_sub

    base = event_lines(_run_quickstart(0.0, seed=77))
    other = event_lines(_run_quickstart(window, seed=77))
    assert base == other
