"""Unit and property tests for the closed-interval set."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.intervals import Interval, IntervalSet


class TestInterval:
    def test_length_and_contains(self):
        iv = Interval(3, 7)
        assert len(iv) == 5
        assert 3 in iv and 7 in iv and 5 in iv
        assert 2 not in iv and 8 not in iv

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 4)

    def test_single_tick(self):
        iv = Interval(4, 4)
        assert len(iv) == 1
        assert list(iv) == [4]

    def test_overlaps(self):
        assert Interval(1, 5).overlaps(Interval(5, 9))
        assert not Interval(1, 5).overlaps(Interval(6, 9))
        assert Interval(3, 4).overlaps(Interval(1, 10))

    def test_adjacent_or_overlaps(self):
        assert Interval(1, 5).adjacent_or_overlaps(Interval(6, 9))
        assert not Interval(1, 5).adjacent_or_overlaps(Interval(7, 9))

    def test_intersect(self):
        assert Interval(1, 5).intersect(Interval(3, 9)) == Interval(3, 5)
        assert Interval(1, 5).intersect(Interval(6, 9)) is None


class TestIntervalSetBasics:
    def test_empty_is_falsy(self):
        s = IntervalSet()
        assert not s
        assert s.tick_count() == 0
        assert 5 not in s

    def test_add_single(self):
        s = IntervalSet.single(5)
        assert 5 in s
        assert s.tick_count() == 1
        assert s.as_tuples() == [(5, 5)]

    def test_add_merges_overlapping(self):
        s = IntervalSet([(1, 5), (4, 9)])
        assert s.as_tuples() == [(1, 9)]

    def test_add_merges_adjacent(self):
        s = IntervalSet([(1, 5), (6, 9)])
        assert s.as_tuples() == [(1, 9)]

    def test_add_keeps_disjoint(self):
        s = IntervalSet([(1, 5), (7, 9)])
        assert s.as_tuples() == [(1, 5), (7, 9)]
        assert len(s) == 2

    def test_add_bridges_many(self):
        s = IntervalSet([(1, 2), (4, 5), (7, 8), (10, 11)])
        s.add(3, 9)
        assert s.as_tuples() == [(1, 11)]

    def test_min_max(self):
        s = IntervalSet([(3, 5), (9, 12)])
        assert s.min() == 3
        assert s.max() == 12

    def test_min_max_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet().min()
        with pytest.raises(ValueError):
            IntervalSet().max()

    def test_interval_containing(self):
        s = IntervalSet([(1, 5), (8, 10)])
        assert s.interval_containing(3) == Interval(1, 5)
        assert s.interval_containing(8) == Interval(8, 10)
        assert s.interval_containing(6) is None

    def test_ticks_iteration(self):
        s = IntervalSet([(1, 3), (6, 7)])
        assert list(s.ticks()) == [1, 2, 3, 6, 7]


class TestIntervalSetRemove:
    def test_remove_from_middle_splits(self):
        s = IntervalSet([(1, 10)])
        s.remove(4, 6)
        assert s.as_tuples() == [(1, 3), (7, 10)]

    def test_remove_prefix(self):
        s = IntervalSet([(1, 10)])
        s.remove(1, 4)
        assert s.as_tuples() == [(5, 10)]

    def test_remove_suffix(self):
        s = IntervalSet([(1, 10)])
        s.remove(8, 10)
        assert s.as_tuples() == [(1, 7)]

    def test_remove_entire(self):
        s = IntervalSet([(1, 10)])
        s.remove(0, 11)
        assert not s

    def test_remove_spanning_multiple(self):
        s = IntervalSet([(1, 3), (5, 7), (9, 11)])
        s.remove(2, 10)
        assert s.as_tuples() == [(1, 1), (11, 11)]

    def test_remove_disjoint_noop(self):
        s = IntervalSet([(5, 9)])
        s.remove(1, 3)
        s.remove(11, 20)
        assert s.as_tuples() == [(5, 9)]

    def test_chop_below(self):
        s = IntervalSet([(1, 5), (8, 12)])
        s.chop_below(9)
        assert s.as_tuples() == [(9, 12)]

    def test_chop_below_no_effect(self):
        s = IntervalSet([(5, 9)])
        s.chop_below(2)
        assert s.as_tuples() == [(5, 9)]


class TestIntervalSetAlgebra:
    def test_union(self):
        a = IntervalSet([(1, 4), (10, 12)])
        b = IntervalSet([(3, 6), (8, 9)])
        assert a.union(b).as_tuples() == [(1, 6), (8, 12)]

    def test_difference(self):
        a = IntervalSet([(1, 10)])
        b = IntervalSet([(3, 4), (7, 8)])
        assert a.difference(b).as_tuples() == [(1, 2), (5, 6), (9, 10)]

    def test_intersection(self):
        a = IntervalSet([(1, 5), (8, 12)])
        b = IntervalSet([(4, 9)])
        assert a.intersection(b).as_tuples() == [(4, 5), (8, 9)]

    def test_intersection_empty(self):
        a = IntervalSet([(1, 5)])
        b = IntervalSet([(7, 9)])
        assert not a.intersection(b)

    def test_intersect_span(self):
        s = IntervalSet([(1, 5), (8, 12), (20, 25)])
        assert s.intersect_span(4, 21).as_tuples() == [(4, 5), (8, 12), (20, 21)]

    def test_complement_within(self):
        s = IntervalSet([(3, 4), (8, 9)])
        assert s.complement_within(1, 12).as_tuples() == [(1, 2), (5, 7), (10, 12)]

    def test_complement_within_full(self):
        assert IntervalSet().complement_within(5, 9).as_tuples() == [(5, 9)]

    def test_complement_within_empty_span(self):
        s = IntervalSet([(3, 4)])
        assert not s.complement_within(9, 5)

    def test_equality(self):
        assert IntervalSet([(1, 3), (4, 6)]) == IntervalSet([(1, 6)])
        assert IntervalSet([(1, 3)]) != IntervalSet([(1, 4)])


# ---------------------------------------------------------------------------
# Property tests: IntervalSet behaves like a set of ints
# ---------------------------------------------------------------------------
ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(0, 80),
        st.integers(0, 15),
    ),
    max_size=30,
)


def _apply(ops_list):
    ivs = IntervalSet()
    model = set()
    for op, start, length in ops_list:
        end = start + length
        if op == "add":
            ivs.add(start, end)
            model.update(range(start, end + 1))
        else:
            ivs.remove(start, end)
            model.difference_update(range(start, end + 1))
    return ivs, model


@given(ops)
@settings(max_examples=200)
def test_intervalset_matches_model_set(ops_list):
    ivs, model = _apply(ops_list)
    assert set(ivs.ticks()) == model
    assert ivs.tick_count() == len(model)
    # Normal form: sorted, disjoint, non-adjacent.
    tuples = ivs.as_tuples()
    for (s1, e1), (s2, e2) in zip(tuples, tuples[1:]):
        assert e1 + 1 < s2


@given(ops, ops)
@settings(max_examples=100)
def test_algebra_matches_model(ops_a, ops_b):
    a, model_a = _apply(ops_a)
    b, model_b = _apply(ops_b)
    assert set(a.union(b).ticks()) == model_a | model_b
    assert set(a.difference(b).ticks()) == model_a - model_b
    assert set(a.intersection(b).ticks()) == model_a & model_b


@given(ops, st.integers(0, 100), st.integers(0, 100))
@settings(max_examples=100)
def test_complement_within_matches_model(ops_list, lo, hi):
    ivs, model = _apply(ops_list)
    comp = ivs.complement_within(lo, hi)
    expected = {t for t in range(lo, hi + 1)} - model
    assert set(comp.ticks()) == expected
