"""Tests for FIFO links: ordering, latency, loss on crash/sever."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.simtime import Scheduler


@pytest.fixture
def env():
    sim = Scheduler()
    a = Node(sim, "a")
    b = Node(sim, "b")
    link = Link(sim, a, b, latency_ms=2.0)
    return sim, a, b, link


def _collect(link_end, cost=0.1):
    inbox = []
    link_end.on_receive(inbox.append, lambda _m: cost)
    return inbox


class TestDelivery:
    def test_message_arrives_after_latency_plus_service(self, env):
        sim, a, b, link = env
        inbox = []
        times = []
        link.a_to_b.on_receive(lambda m: (inbox.append(m), times.append(sim.now)), lambda _m: 1.0)
        link.a_to_b.send("hello")
        sim.run()
        assert inbox == ["hello"]
        assert times == [3.0]  # 2ms latency + 1ms receive service

    def test_fifo_order_preserved(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        for i in range(10):
            link.a_to_b.send(i)
        sim.run()
        assert inbox == list(range(10))

    def test_bidirectional(self, env):
        sim, a, b, link = env
        to_b = _collect(link.a_to_b)
        to_a = _collect(link.b_to_a)
        link.a_to_b.send("x")
        link.b_to_a.send("y")
        sim.run()
        assert to_b == ["x"]
        assert to_a == ["y"]

    def test_end_for_sender(self, env):
        sim, a, b, link = env
        assert link.end_for_sender(a) is link.a_to_b
        assert link.end_for_sender(b) is link.b_to_a
        with pytest.raises(ValueError):
            link.end_for_sender(Node(sim, "c"))

    def test_counters(self, env):
        sim, a, b, link = env
        _collect(link.a_to_b)
        link.a_to_b.send("x")
        sim.run()
        assert link.a_to_b.sent == 1
        assert link.a_to_b.delivered == 1
        assert link.a_to_b.dropped == 0


class TestLoss:
    def test_send_to_down_receiver_dropped(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        b.crash()
        link.a_to_b.send("x")
        sim.run()
        assert inbox == []
        assert link.a_to_b.dropped == 1

    def test_in_flight_message_lost_when_receiver_crashes(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.a_to_b.send("x")
        sim.run_until(1)   # still in flight (latency 2ms)
        b.crash()
        sim.run()
        assert inbox == []

    def test_message_after_recovery_delivered(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        b.crash()
        link.a_to_b.send("lost")
        b.recover()
        link.a_to_b.send("kept")
        sim.run()
        assert inbox == ["kept"]

    def test_severed_link_drops(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.sever()
        link.a_to_b.send("x")
        sim.run()
        assert inbox == []

    def test_restore_after_sever(self, env):
        sim, a, b, link = env
        inbox = _collect(link.a_to_b)
        link.sever()
        link.restore()
        link.a_to_b.send("x")
        sim.run()
        assert inbox == ["x"]

    def test_disconnect_listener_on_crash(self, env):
        sim, a, b, link = env
        events = []
        link.on_disconnect(lambda: events.append("down"))
        b.crash()
        assert events == ["down"]

    def test_disconnect_listener_on_sever(self, env):
        sim, a, b, link = env
        events = []
        link.on_disconnect(lambda: events.append("down"))
        link.sever()
        assert events == ["down"]
