"""Tests for the PFS record codec (footnote 2: 8 + 16n bytes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.records import (
    BATCH_TAG,
    NO_PREVIOUS,
    PFSRecord,
    PFSRecordBatch,
    decode_record,
)
from repro.util.errors import CorruptLogError


class TestRecord:
    def test_size_is_8_plus_16n(self):
        for n in (1, 2, 25, 100):
            record = PFSRecord(42, tuple((i, NO_PREVIOUS) for i in range(n)))
            assert record.size_bytes == 8 + 16 * n
            assert len(record.encode()) == 8 + 16 * n

    def test_roundtrip(self):
        record = PFSRecord(1234, ((1, NO_PREVIOUS), (7, 55)))
        decoded = PFSRecord.decode(record.encode())
        assert decoded == record

    def test_subscribers_and_backpointers(self):
        record = PFSRecord(9, ((3, 10), (5, NO_PREVIOUS)))
        assert record.subscribers() == [3, 5]
        assert record.prev_index_of(3) == 10
        assert record.prev_index_of(5) == NO_PREVIOUS
        assert record.prev_index_of(99) is None

    def test_build_pulls_backpointers(self):
        last_index = {3: 17}
        record = PFSRecord.build(100, [5, 3], last_index)
        assert record.prev_index_of(3) == 17
        assert record.prev_index_of(5) == NO_PREVIOUS
        # entries are sorted by subscriber number
        assert record.subscribers() == [3, 5]

    def test_build_requires_matches(self):
        with pytest.raises(ValueError):
            PFSRecord.build(100, [], {})

    def test_decode_rejects_bad_length(self):
        with pytest.raises(CorruptLogError):
            PFSRecord.decode(b"\x00" * 11)
        with pytest.raises(CorruptLogError):
            PFSRecord.decode(b"\x00" * 4)

    def test_negative_timestamps_roundtrip(self):
        # Timestamps are signed in the frame; protocol uses >= 0 but the
        # codec must not corrupt edge values.
        record = PFSRecord(-1, ((0, NO_PREVIOUS),))
        assert PFSRecord.decode(record.encode()).timestamp == -1


@given(
    st.integers(0, 2**40),
    st.lists(
        st.tuples(st.integers(0, 2**20), st.integers(-1, 2**30)),
        min_size=1,
        max_size=40,
        unique_by=lambda e: e[0],
    ),
)
@settings(max_examples=100)
def test_codec_roundtrip_property(timestamp, entries):
    record = PFSRecord(timestamp, tuple(entries))
    data = record.encode()
    assert len(data) == 8 + 16 * len(entries)
    assert PFSRecord.decode(data) == record


class TestBatchRecord:
    def test_build_and_roundtrip(self):
        last_index = {3: 17}
        batch = PFSRecordBatch.build(
            [(100, [5, 3]), (101, [3]), (102, [9, 5])], last_index
        )
        assert batch.n_ticks == 3
        assert batch.oldest_timestamp == 100
        assert batch.newest_timestamp == 102
        assert batch.subscribers() == [3, 5, 9]
        assert batch.prev_index_of(3) == 17
        assert batch.prev_index_of(5) == NO_PREVIOUS
        assert batch.prev_index_of(99) is None
        assert batch.nums_at(0) == (3, 5)
        assert batch.nums_at(1) == (3,)
        assert batch.ticks_for(3) == [0, 1]
        assert batch.ticks_for(5) == [0, 2]
        assert batch.ticks_for(99) == []
        assert PFSRecordBatch.decode(batch.encode()) == batch

    def test_logical_size_is_sum_of_row_sizes(self):
        batch = PFSRecordBatch.build([(1, [0, 1]), (2, [0])], {})
        assert batch.logical_size_bytes == (8 + 16 * 2) + (8 + 16 * 1)

    def test_identical_nums_object_shares_column_slice(self):
        nums = [4, 2, 7]
        batch = PFSRecordBatch.build([(1, nums), (2, nums), (3, [1])], {})
        # Two ticks alias the same slice; the column holds the run once.
        assert batch.slices[0] == batch.slices[1]
        assert len(batch.column) == 4
        assert batch.ticks_for(4) == [0, 1]

    def test_equal_but_distinct_nums_objects_do_not_share(self):
        batch = PFSRecordBatch.build([(1, [4, 2]), (2, [4, 2])], {})
        assert batch.slices[0] != batch.slices[1]
        assert len(batch.column) == 4

    def test_build_rejects_bad_input(self):
        with pytest.raises(ValueError):
            PFSRecordBatch.build([], {})
        with pytest.raises(ValueError):
            PFSRecordBatch.build([(5, [])], {})
        with pytest.raises(ValueError):
            PFSRecordBatch.build([(5, [1]), (5, [1])], {})
        with pytest.raises(ValueError):
            PFSRecordBatch.build([(5, [1]), (4, [1])], {})

    def test_build_does_not_mutate_last_index(self):
        last_index = {3: 17}
        PFSRecordBatch.build([(1, [3, 5])], last_index)
        assert last_index == {3: 17}

    def test_decode_rejects_bad_geometry(self):
        batch = PFSRecordBatch.build([(1, [0, 1]), (2, [2])], {})
        data = batch.encode()
        with pytest.raises(CorruptLogError):
            PFSRecordBatch.decode(data[:-8])  # word count mismatch
        with pytest.raises(CorruptLogError):
            PFSRecordBatch.decode(data[:12])  # shorter than the header
        with pytest.raises(CorruptLogError):
            PFSRecordBatch.decode(b"\x01" + data[1:])  # tag corrupted
        import struct

        # Slice pointing past the column end.
        bad = bytearray(data)
        struct.pack_into("<q", bad, 32 + 2 * 8 + 8, 99)
        with pytest.raises(CorruptLogError):
            PFSRecordBatch.decode(bytes(bad))

    def test_decode_record_dispatches(self):
        row = PFSRecord(7, ((1, NO_PREVIOUS),))
        batch = PFSRecordBatch.build([(7, [1])], {})
        assert decode_record(row.encode()) == row
        assert decode_record(batch.encode()) == batch
        assert BATCH_TAG < 0  # row timestamps >= 0 keep the tag space free


@given(
    st.lists(
        st.tuples(
            st.integers(0, 2**40),
            st.lists(st.integers(0, 2**20), min_size=1, max_size=8, unique=True),
        ),
        min_size=1,
        max_size=12,
        unique_by=lambda item: item[0],
    )
)
@settings(max_examples=100)
def test_batch_codec_roundtrip_property(items):
    items.sort(key=lambda item: item[0])
    batch = PFSRecordBatch.build(items, {})
    decoded = PFSRecordBatch.decode(batch.encode())
    assert decoded == batch
    assert decode_record(batch.encode()) == batch
    # The batch is logically the row records, tick by tick.
    for i, (timestamp, nums) in enumerate(items):
        assert decoded.timestamps[i] == timestamp
        assert decoded.nums_at(i) == tuple(sorted(nums))
    assert decoded.logical_size_bytes == sum(8 + 16 * len(n) for _t, n in items)
