"""Tests for the PFS record codec (footnote 2: 8 + 16n bytes)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs.records import NO_PREVIOUS, PFSRecord
from repro.util.errors import CorruptLogError


class TestRecord:
    def test_size_is_8_plus_16n(self):
        for n in (1, 2, 25, 100):
            record = PFSRecord(42, tuple((i, NO_PREVIOUS) for i in range(n)))
            assert record.size_bytes == 8 + 16 * n
            assert len(record.encode()) == 8 + 16 * n

    def test_roundtrip(self):
        record = PFSRecord(1234, ((1, NO_PREVIOUS), (7, 55)))
        decoded = PFSRecord.decode(record.encode())
        assert decoded == record

    def test_subscribers_and_backpointers(self):
        record = PFSRecord(9, ((3, 10), (5, NO_PREVIOUS)))
        assert record.subscribers() == [3, 5]
        assert record.prev_index_of(3) == 10
        assert record.prev_index_of(5) == NO_PREVIOUS
        assert record.prev_index_of(99) is None

    def test_build_pulls_backpointers(self):
        last_index = {3: 17}
        record = PFSRecord.build(100, [5, 3], last_index)
        assert record.prev_index_of(3) == 17
        assert record.prev_index_of(5) == NO_PREVIOUS
        # entries are sorted by subscriber number
        assert record.subscribers() == [3, 5]

    def test_build_requires_matches(self):
        with pytest.raises(ValueError):
            PFSRecord.build(100, [], {})

    def test_decode_rejects_bad_length(self):
        with pytest.raises(CorruptLogError):
            PFSRecord.decode(b"\x00" * 11)
        with pytest.raises(CorruptLogError):
            PFSRecord.decode(b"\x00" * 4)

    def test_negative_timestamps_roundtrip(self):
        # Timestamps are signed in the frame; protocol uses >= 0 but the
        # codec must not corrupt edge values.
        record = PFSRecord(-1, ((0, NO_PREVIOUS),))
        assert PFSRecord.decode(record.encode()).timestamp == -1


@given(
    st.integers(0, 2**40),
    st.lists(
        st.tuples(st.integers(0, 2**20), st.integers(-1, 2**30)),
        min_size=1,
        max_size=40,
        unique_by=lambda e: e[0],
    ),
)
@settings(max_examples=100)
def test_codec_roundtrip_property(timestamp, entries):
    record = PFSRecord(timestamp, tuple(entries))
    data = record.encode()
    assert len(data) == 8 + 16 * len(entries)
    assert PFSRecord.decode(data) == record
