"""Durable-subscriber migration: the three-phase epoch-verified handoff.

Drives ``MigrateRequest → Offer → Install → Installed → Commit → Done``
both through the :class:`~repro.sim.supervisor.Supervisor` and by hand
(raw control messages with injected duplication, reordering and stale
replays), asserting the handlers' idempotence guarantees: a durable
subscription is never double-registered and its PFS-coverage cursor
never regresses.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DurableSubscriber,
    Everything,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_star,
)
from repro.core import messages as M
from repro.net.link import Link
from repro.sim.supervisor import Supervisor


def _wait(sim, pred, timeout_ms=10_000.0, step_ms=10.0):
    deadline = sim.now + timeout_ms
    while sim.now < deadline:
        if pred():
            return True
        sim.run_until(sim.now + step_ms)
    return pred()


class Ctl:
    """A bare control client of one SHB (what the Supervisor is)."""

    def __init__(self, sim, shb, name):
        self.node = Node(sim, name)
        link = Link(sim, self.node, shb.node, 0.5)
        self.send_end = shb.attach_client(link, self.node)
        self.inbox = []
        link.end_for_sender(shb.node).on_receive(
            self.inbox.append, lambda _msg: 0.01
        )

    def send(self, msg):
        self.send_end.send(msg)

    def take(self, kind):
        got = [m for m in self.inbox if isinstance(m, kind)]
        # In place: the link's receive callback holds this very list.
        self.inbox[:] = [m for m in self.inbox if not isinstance(m, kind)]
        return got


def _overlay(sim, n_shbs=2):
    overlay = build_star(sim, ["P1"], n_shbs)
    pub = PeriodicPublisher(sim, overlay.phb, "P1", 100.0,
                            attribute_fn=lambda i: {"group": i % 3})
    pub.start()
    return overlay, pub


class TestSupervisedHandoff:
    def test_happy_path_exactly_once(self):
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "h1", Node(sim, "m-h1"), Everything(),
                                record_events=True, connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(1_000.0)

        supervisor = Supervisor(overlay)
        handle = supervisor.migrate("h1", source, dest)

        def _rehome():
            if not sub.connected and sub.last_refusal is not None:
                sub.last_refusal = None
                sub.connect(dest)

        rehome = sim.every(200.0, _rehome)
        assert _wait(sim, lambda: handle.done)
        sim.run_until(sim.now + 2_000.0)
        pub.stop()
        sim.run_until(sim.now + 4_000.0)
        rehome.cancel()

        assert handle.phase == "commit" and handle.done
        assert "h1" not in source.registry
        assert "h1" in dest.registry
        assert source.meta_table.get("migrated_out:h1")[0] == dest.name
        assert sub.connected
        assert sub.stats.events == pub.published
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_commit_pushes_refusal_to_live_client(self):
        """A client connected at the source when the commit lands is
        told its session is over (otherwise it would wedge silently)."""
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "h2", Node(sim, "m-h2"), Everything(),
                                record_events=True, connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(500.0)
        assert sub.connected

        supervisor = Supervisor(overlay)
        handle = supervisor.migrate("h2", source, dest)
        assert _wait(sim, lambda: handle.done)
        sim.run_until(sim.now + 200.0)
        pub.stop()
        assert not sub.connected or sub.last_refusal is not None
        assert sub.last_refusal is not None
        reason, redirect = sub.last_refusal
        assert reason in ("migrated", "migrating", "installing")
        if reason == "migrated":
            assert redirect == dest.name

    def test_source_redirects_reconnect_after_commit(self):
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "h3", Node(sim, "m-h3"), Everything(),
                                connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(500.0)
        sub.disconnect()

        supervisor = Supervisor(overlay)
        handle = supervisor.migrate("h3", source, dest)
        assert _wait(sim, lambda: handle.done)
        pub.stop()

        sub.connect(source)
        assert _wait(sim, lambda: sub.last_refusal is not None, 2_000.0)
        reason, redirect = sub.last_refusal
        assert reason == "migrated"
        assert redirect == dest.name

    def test_migrate_unknown_subscription_reports_not_found(self):
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        supervisor = Supervisor(overlay)
        handle = supervisor.migrate("ghost", overlay.shbs[0], overlay.shbs[1])
        assert _wait(sim, lambda: handle.done)
        pub.stop()
        assert handle.done and not handle.found


class TestCoverageConfirmation:
    """MigrateInstalled is held until the refresh round-trips the root."""

    def _install_by_hand(self, sim, source, dest, ctl_src, ctl_dst, epoch):
        ctl_src.send(M.MigrateRequest("ho-1", "c1", epoch, dest.name))
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateOffer) for m in ctl_src.inbox))
        offer = ctl_src.take(M.MigrateOffer)[0]
        assert offer.found
        ctl_dst.send(M.MigrateInstall(
            "ho-1", "c1", epoch, source=source.name,
            predicate=offer.predicate, released_ct=dict(offer.released_ct),
            pfs_from=dict(offer.pfs_from), jms_ct=dict(offer.jms_ct),
        ))
        return offer

    def test_installed_waits_for_root_ack_and_finalizes_pfs_from(self):
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "c1", Node(sim, "m-c1"), Everything(),
                                connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(1_000.0)
        sub.disconnect()

        ctl_src = Ctl(sim, source, "ctl-src")
        ctl_dst = Ctl(sim, dest, "ctl-dst")
        self._install_by_hand(sim, source, dest, ctl_src, ctl_dst, epoch=10_000)

        # The install is staged (row exists) but unconfirmed: the
        # durable finalization marker is absent and the ack withheld.
        # (1 ms polling: the root round trip takes >= 2 ms, so the
        # first poll that sees the row still sees the pending entry.)
        assert _wait(sim, lambda: "c1" in dest.registry, 1_000.0, step_ms=1.0)
        assert "c1" in dest._cover_pending
        assert dest.meta_table.get_committed("migrated_in:c1") is None
        assert not ctl_dst.take(M.MigrateInstalled)

        # A connect served now could trust PFS silence inside the
        # suspect span — refused without a redirect (client retries).
        refusal = dest._connect_refusal("c1")
        assert refusal is not None and refusal.reason == "installing"

        provisional = dict(dest.registry.get("c1").pfs_from)
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateInstalled) for m in ctl_dst.inbox))
        confirmed_at = sim.now
        assert "c1" not in dest._cover_pending
        assert dest.meta_table.get_committed("migrated_in:c1") == 10_000
        final = dest.registry.get("c1").pfs_from
        for pubend, t in final.items():
            # Finalized past the provisional claim and the whole
            # suspect-silence span (bounded by the clock at the ack).
            assert t >= provisional.get(pubend, 0)
        assert final["P1"] <= int(confirmed_at)
        pub.stop()

    def test_duplicate_install_after_confirmation_reacks_immediately(self):
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "c1", Node(sim, "m-c1"), Everything(),
                                connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(1_000.0)
        sub.disconnect()

        ctl_src = Ctl(sim, source, "ctl-src")
        ctl_dst = Ctl(sim, dest, "ctl-dst")
        offer = self._install_by_hand(
            sim, source, dest, ctl_src, ctl_dst, epoch=10_000)
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateInstalled) for m in ctl_dst.inbox))
        ctl_dst.take(M.MigrateInstalled)
        row = dest.registry.get("c1")
        num, pfs_from = row.num, dict(row.pfs_from)

        # A retried install of the confirmed handoff re-acks without
        # re-entering the confirmation round.
        ctl_dst.send(M.MigrateInstall(
            "ho-1", "c1", 10_000, source=source.name,
            predicate=offer.predicate, released_ct=dict(offer.released_ct),
            pfs_from=dict(offer.pfs_from), jms_ct=dict(offer.jms_ct),
        ))
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateInstalled) for m in ctl_dst.inbox), 2_000.0)
        assert "c1" not in dest._cover_pending
        row = dest.registry.get("c1")
        assert row.num == num
        assert row.pfs_from == pfs_from
        pub.stop()


class TestIdempotence:
    @given(
        dup_request=st.integers(min_value=1, max_value=3),
        dup_install=st.integers(min_value=1, max_value=3),
        dup_commit=st.integers(min_value=1, max_value=3),
        replay_after_done=st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_duplicated_and_replayed_messages_are_harmless(
        self, dup_request, dup_install, dup_commit, replay_after_done
    ):
        """However the network duplicates, redelivers or replays the
        handoff messages, the subscription ends owned exactly once and
        its PFS cursor only ever moves forward."""
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        source, dest = overlay.shbs
        sub = DurableSubscriber(sim, "p1", Node(sim, "m-p1"),
                                In("group", [0, 1]), connect_retry_ms=300.0)
        sub.connect(source)
        sim.run_until(800.0)
        sub.disconnect()

        ctl_src = Ctl(sim, source, "ctl-src")
        ctl_dst = Ctl(sim, dest, "ctl-dst")
        epoch = 10_000

        request = M.MigrateRequest("ho-p", "p1", epoch, dest.name)
        for _ in range(dup_request):
            ctl_src.send(request)
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateOffer) for m in ctl_src.inbox))
        offer = ctl_src.take(M.MigrateOffer)[0]

        install = M.MigrateInstall(
            "ho-p", "p1", epoch, source=source.name,
            predicate=offer.predicate, released_ct=dict(offer.released_ct),
            pfs_from=dict(offer.pfs_from), jms_ct=dict(offer.jms_ct),
        )
        pfs_floor = dict(offer.pfs_from)
        for _ in range(dup_install):
            ctl_dst.send(install)
            sim.run_until(sim.now + 30.0)
            row = dest.registry.get("p1")
            if row is not None:
                for pubend, t in pfs_floor.items():
                    assert row.pfs_from.get(pubend, 0) >= t
                pfs_floor = dict(row.pfs_from)
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateInstalled) for m in ctl_dst.inbox))

        commit = M.MigrateCommit("ho-p", "p1", epoch, dest.name)
        for _ in range(dup_commit):
            ctl_src.send(commit)
        assert _wait(sim, lambda: any(
            isinstance(m, M.MigrateDone) for m in ctl_src.inbox))

        if replay_after_done:
            ctl_src.send(request)
            ctl_dst.send(install)
            ctl_src.send(commit)
            sim.run_until(sim.now + 500.0)

        pub.stop()
        sim.run_until(sim.now + 500.0)

        # Exactly one owner; never double-registered.
        assert "p1" not in source.registry
        rows = [s for s in dest.registry.all() if s.sub_id == "p1"]
        assert len(rows) == 1
        # The PFS cursor never regressed below any earlier observation.
        for pubend, t in pfs_floor.items():
            assert rows[0].pfs_from.get(pubend, 0) >= t
        assert source.meta_table.get("migrated_out:p1")[0] == dest.name

    def test_stale_epoch_replay_after_remigration_is_dropped(self):
        """A→B then B→A; a replay of the first handoff's install at B
        (stale epoch) must not resurrect B's ownership."""
        sim = Scheduler()
        overlay, pub = _overlay(sim)
        a, b = overlay.shbs
        sub = DurableSubscriber(sim, "r1", Node(sim, "m-r1"), Everything(),
                                connect_retry_ms=300.0)
        sub.connect(a)
        sim.run_until(800.0)
        sub.disconnect()

        supervisor = Supervisor(overlay)
        first = supervisor.migrate("r1", a, b)
        assert _wait(sim, lambda: first.done)
        stale_install = M.MigrateInstall(
            first.handoff_id, "r1", first.epoch, source=a.name,
            predicate=first.offer.predicate,
            released_ct=dict(first.offer.released_ct),
            pfs_from=dict(first.offer.pfs_from),
            jms_ct=dict(first.offer.jms_ct),
        )
        second = supervisor.migrate("r1", b, a)
        assert _wait(sim, lambda: second.done)
        assert "r1" in a.registry and "r1" not in b.registry

        ctl_b = Ctl(sim, b, "ctl-b")
        ctl_b.send(stale_install)
        sim.run_until(sim.now + 1_000.0)
        pub.stop()

        assert "r1" not in b.registry
        assert "r1" in a.registry
        assert not ctl_b.take(M.MigrateInstalled)
