"""Seeded chaos soak: random faults, provable guarantees.

The smoke tests (tier 1) run a few fixed seeds at a short horizon; the
``soak`` marker opts into the long many-seed sweep used before releases
(``pytest -m soak``).  A failing seed is a reproducible bug report:
rerun ``run_chaos_soak(seed)`` and the identical fault schedule plays
back.
"""

import pytest

from repro.sim.experiments import run_chaos_soak

SMOKE_SEEDS = [3, 7, 24]
SMOKE_MS = 13_000.0


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_chaos_smoke(seed):
    result = run_chaos_soak(seed, duration_ms=SMOKE_MS)
    assert result.ok, f"seed {seed}: " + "; ".join(result.violations)
    assert result.events_published > 0
    assert result.events_delivered > 0
    assert len(result.faults) > 0


def test_chaos_smoke_with_batching():
    """Fault injection composes with link batching windows."""
    result = run_chaos_soak(SMOKE_SEEDS[0], duration_ms=SMOKE_MS,
                            batch_window_ms=10.0)
    assert result.ok, "; ".join(result.violations)


def test_chaos_same_seed_is_deterministic():
    a = run_chaos_soak(5, duration_ms=SMOKE_MS)
    b = run_chaos_soak(5, duration_ms=SMOKE_MS)
    assert a.ok and b.ok
    assert [(f.kind, f.target, f.at_ms) for f in a.faults] == [
        (f.kind, f.target, f.at_ms) for f in b.faults
    ]
    assert (a.events_published, a.events_delivered) == (
        b.events_published, b.events_delivered
    )
    assert a.link_faults == b.link_faults


def test_chaos_actually_injects_faults():
    """The soak is vacuous if the schedule never bites: check the fault
    counters show real loss/corruption/duplication somewhere across the
    smoke seeds (each individual seed draws its own mix)."""
    totals = {"fault_dropped": 0, "corrupt_dropped": 0,
              "duplicated": 0, "reordered": 0}
    crashes = 0
    for seed in SMOKE_SEEDS:
        r = run_chaos_soak(seed, duration_ms=SMOKE_MS)
        for key in totals:
            totals[key] += r.link_faults[key]
        crashes += sum(1 for f in r.faults if f.kind == "crash")
    assert totals["fault_dropped"] > 0
    assert totals["corrupt_dropped"] > 0
    assert totals["duplicated"] > 0
    assert totals["reordered"] > 0
    assert crashes > 0


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(1, 26))
def test_chaos_soak_long(seed):
    result = run_chaos_soak(seed, duration_ms=20_000.0)
    assert result.ok, f"seed {seed}: " + "; ".join(result.violations)
