"""Tests for the crash-point explorer (sim/crashpoints.py).

The explorer is itself test infrastructure, so these tests pin the
properties the rest of the suite leans on: hooks are off by default
(the digest fixtures depend on that), the census is deterministic and
large enough to be worth exploring, the stratified selector covers
every boundary kind, and a bounded smoke sweep recovers cleanly from
every injected crash.  The full sweep over every census point is the
opt-in soak (`pytest -m soak tests/test_crashpoints.py`).
"""

import pytest

from repro.sim import crashpoints as cp


# ---------------------------------------------------------------------------
# Hook registry
# ---------------------------------------------------------------------------
class TestHooks:
    def test_hooks_disabled_by_default(self):
        # The storage modules guard every fire() with `if HOOKS.enabled`;
        # a listener left installed would perturb (and slow) every other
        # test and break the determinism digests.
        assert cp.HOOKS.enabled is False

    def test_install_uninstall_cycle(self):
        seen = []
        cp.HOOKS.install(lambda site, owner: seen.append((site, owner)))
        try:
            assert cp.HOOKS.enabled is True
            cp.HOOKS.fire("x.y", "b1")
            assert seen == [("x.y", "b1")]
        finally:
            cp.HOOKS.uninstall()
        assert cp.HOOKS.enabled is False

    def test_double_install_rejected(self):
        cp.HOOKS.install(lambda site, owner: None)
        try:
            with pytest.raises(RuntimeError):
                cp.HOOKS.install(lambda site, owner: None)
        finally:
            cp.HOOKS.uninstall()


# ---------------------------------------------------------------------------
# Census + selection
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def census_points():
    return cp.census()


class TestCensus:
    def test_enumerates_at_least_100_points(self, census_points):
        assert len(census_points) >= 100

    def test_covers_every_storage_subsystem(self, census_points):
        prefixes = {p.site.split(".")[0] for p in census_points}
        assert {"disk", "table", "logstream", "eventlog", "pfs"} <= prefixes

    def test_census_is_deterministic(self, census_points):
        again = cp.census()
        assert [(p.seq, p.site, p.owner) for p in again] == [
            (p.seq, p.site, p.owner) for p in census_points
        ]

    def test_every_point_has_an_owner(self, census_points):
        # A boundary with no owner cannot be crashed meaningfully; all
        # storage in the scripted scenario belongs to a named broker.
        assert all(p.owner for p in census_points)


class TestSelectPoints:
    def test_covers_every_site_owner_kind(self, census_points):
        kinds = {(p.site, p.owner) for p in census_points}
        selected = cp.select_points(census_points, max_points=len(kinds) + 10)
        assert {(p.site, p.owner) for p in selected} == kinds

    def test_respects_budget_and_spreads_over_timeline(self, census_points):
        selected = cp.select_points(census_points, max_points=60)
        assert len(selected) == 60
        # Stratified fill reaches past the warm-up into the scripted tail.
        assert selected[-1].seq > len(census_points) // 2

    def test_unbounded_returns_everything(self, census_points):
        assert cp.select_points(census_points, None) == list(census_points)


# ---------------------------------------------------------------------------
# Exploration smoke (bounded) + summary shape
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def smoke_summary():
    return cp.explore(max_points=12)


class TestExploreSmoke:
    def test_no_violations_across_smoke_points(self, smoke_summary):
        assert smoke_summary.baseline_violations == []
        for outcome in smoke_summary.outcomes:
            assert outcome.ok, outcome.violations

    def test_every_smoke_point_converged(self, smoke_summary):
        for outcome in smoke_summary.outcomes:
            assert outcome.converged_at_ms is not None
            assert outcome.crashed_broker is not None

    def test_summary_json_shape(self, smoke_summary):
        blob = smoke_summary.to_json()
        assert blob["census_points"] >= 100
        assert blob["explored_points"] == 12
        assert blob["violation_count"] == 0
        assert blob["unconverged"] == []
        assert sum(blob["explored_by_site"].values()) == 12


# ---------------------------------------------------------------------------
# Generated-forest ("scale") scenario
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def scale_census():
    return cp.census("scale")


class TestScaleScenario:
    def test_census_covers_both_trees_and_failover_window(self, scale_census):
        owners = {p.owner for p in scale_census}
        assert {"phb1", "phb2"} <= owners
        assert any(o and o.startswith("t1.") for o in owners)
        assert any(o and o.startswith("t2.") for o in owners)
        # Both spares take a subtree mid-script, so boundaries keep
        # firing after the first failover at 1.2 s of simulated time.
        assert len(scale_census) > 1_000

    def test_census_is_deterministic(self, scale_census):
        again = cp.census("scale")
        assert [(p.seq, p.site, p.owner) for p in again] == [
            (p.seq, p.site, p.owner) for p in scale_census
        ]

    def test_smoke_sweep_recovers(self):
        summary = cp.explore(max_points=6, scenario="scale")
        assert summary.baseline_violations == []
        for outcome in summary.outcomes:
            assert outcome.ok, outcome.violations
            assert outcome.converged_at_ms is not None


# ---------------------------------------------------------------------------
# Opt-in full sweep
# ---------------------------------------------------------------------------
@pytest.mark.soak
def test_full_sweep_every_census_point():
    """Crash at every enumerated boundary (several minutes)."""
    summary = cp.explore(max_points=None)
    bad = [o for o in summary.outcomes if not o.ok]
    assert summary.baseline_violations == []
    assert not bad, [
        (o.point.label(), o.violations) for o in bad[:10]
    ]
