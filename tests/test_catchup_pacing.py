"""Tests for catchup flow control: rate pacing and delivery windows."""

import pytest

from repro import (
    DurableSubscriber,
    Everything,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)


def run_catchup(disconnect_s, rate=100, groups=(0, 1, 2, 3)):
    """Disconnect a subscriber for ``disconnect_s``; return its catchup
    duration and the SHB."""
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    shb = overlay.shbs[0]
    sub = DurableSubscriber(sim, "s1", Node(sim, "c"), In("group", list(groups)),
                            record_events=True)
    sub.connect(shb)
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    sim.run_until(3_000)
    sub.disconnect()
    sim.run_until(3_000 + disconnect_s * 1_000)
    sub.connect(shb)
    horizon = 3_000 + disconnect_s * 1_000
    while sim.now < horizon + 20 * disconnect_s * 1_000 + 20_000:
        sim.run_until(sim.now + 500)
        if shb.active_catchup_count == 0 and shb.catchup_durations_ms:
            break
    pub.stop()
    sim.run_until(sim.now + 3_000)
    durations = [d for _t, d in shb.catchup_durations_ms]
    return durations[-1] if durations else None, shb, sub, pub


class TestRatePacing:
    def test_catchup_duration_proportional_to_disconnection(self):
        """The Figure 5 shape: duration scales with the missed span."""
        short, *_ = run_catchup(2)
        long, *_ = run_catchup(6)
        assert short is not None and long is not None
        assert 2.0 < long / short < 4.5  # ~3x for 3x the disconnection

    def test_catchup_duration_near_disconnection_length(self):
        duration, shb, sub, pub = run_catchup(4)
        # rate_boost 1.9 => duration ~ disconnection / 0.9 minus burst.
        assert 1_500 < duration < 8_000
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0

    def test_sparse_subscriber_same_relative_duration(self):
        """Pacing is scale-free: a subscriber matching 1/4 of the events
        catches up in roughly the same (relative) time."""
        dense, *_ = run_catchup(4, groups=(0, 1, 2, 3))
        sparse, *_ = run_catchup(4, groups=(1,))
        assert 0.3 < sparse / dense < 2.5

    def test_delivery_completes_exactly_once(self):
        _d, shb, sub, pub = run_catchup(5)
        assert sub.stats.events == pub.published
        assert sub.duplicate_events == 0


class TestEventCache:
    def test_cache_answers_catchup_locally(self):
        _d, shb, sub, pub = run_catchup(2)
        # All recovery nacks were served by the SHB's own cache; the
        # PHB never saw them.
        assert shb.cache_served_nacks > 0

    def test_cache_trimmed_to_span(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"], event_cache_span_ms=1_000)
        shb = overlay.shbs[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Everything())
        sub.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(10_000)
        cache = shb.event_cache["P1"]
        # Only ~1s of events retained.
        assert cache.d_count < 150
        assert cache.max_known() > 9_000

    def test_cache_cleared_on_crash(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Everything())
        sub.connect(shb)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": 0})
        pub.start()
        sim.run_until(5_000)
        assert shb.event_cache["P1"].d_count > 0
        shb.fail_for(200)
        sim.run_until(5_250)
        # Volatile: rebuilt empty at recovery.
        assert shb.event_cache["P1"].d_count < 50
