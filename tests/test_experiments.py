"""Smoke tests for the experiment harness (small configurations).

The full paper-scale runs live in ``benchmarks/``; these verify the
harness mechanics and the *qualitative* shapes on scaled-down inputs.
"""

import pytest

from repro.sim.experiments import (
    run_jms_autoack,
    run_latency,
    run_scalability,
    run_shb_failure,
    run_stream_rates,
)
from repro.workloads.generator import PaperWorkloadSpec

SMALL = PaperWorkloadSpec(input_rate=200.0)


class TestScalabilityHarness:
    def test_no_churn_achieves_offered_rate(self):
        result = run_scalability(
            n_shbs=1, subs_per_shb=8, duration_ms=8_000, warmup_ms=2_000, spec=SMALL
        )
        assert result.subscribers == 8
        assert result.offered_rate == pytest.approx(8 * 50.0)
        assert result.efficiency > 0.97
        assert 0.0 <= result.phb_idle <= 1.0

    def test_two_shbs_double_aggregate(self):
        one = run_scalability(1, 8, duration_ms=6_000, warmup_ms=2_000, spec=SMALL)
        two = run_scalability(2, 8, duration_ms=6_000, warmup_ms=2_000, spec=SMALL)
        assert two.achieved_rate == pytest.approx(2 * one.achieved_rate, rel=0.1)

    def test_churn_reduces_rate_but_catchups_complete(self):
        result = run_scalability(
            n_shbs=1, subs_per_shb=8, churn=True, duration_ms=10_000,
            warmup_ms=2_000, spec=SMALL,
            churn_period_ms=5_000, churn_down_ms=500,
        )
        assert result.disconnects > 0
        assert result.catchup_count > 0
        assert 0.80 < result.efficiency <= 1.01

    def test_single_broker_variant(self):
        result = run_scalability(
            n_shbs=1, subs_per_shb=8, duration_ms=6_000, warmup_ms=2_000,
            spec=SMALL, single_broker=True,
        )
        assert result.single_broker
        assert result.efficiency > 0.97


class TestLatencyHarness:
    def test_latency_dominated_by_phb_logging(self):
        result = run_latency(n_intermediates=3, rate_per_s=40, duration_ms=10_000)
        assert result.hops == 5
        assert result.samples > 300
        # Logging is the dominant component (44 of 50 ms in the paper).
        assert result.logging_mean_ms > 0.7 * result.mean_ms
        assert result.mean_ms < 80.0

    def test_more_hops_add_latency(self):
        short = run_latency(n_intermediates=0, rate_per_s=40, duration_ms=8_000)
        long = run_latency(n_intermediates=3, rate_per_s=40, duration_ms=8_000)
        assert long.mean_ms > short.mean_ms


class TestStreamRatesHarness:
    def test_latest_delivered_tracks_real_time(self):
        result = run_stream_rates(duration_ms=15_000, subs=4,
                                  churn_period_ms=6_000, churn_down_ms=400,
                                  spec=SMALL)
        vals = result.latest_delivered_rate.values()[3:]
        assert sum(vals) / len(vals) == pytest.approx(1_000.0, rel=0.05)
        # Released stalls during disconnections: min well below the mean.
        rel_vals = result.released_rate.values()[3:]
        assert min(rel_vals) < 800.0
        assert result.catchup_durations_ms


class TestFailureHarness:
    def test_shb_failure_run_is_exactly_once(self):
        result = run_shb_failure(
            crash_at_ms=5_000, down_ms=4_000, n_subs=4, total_ms=40_000,
            spec=SMALL,
        )
        assert result.exactly_once_ok
        assert result.catchup_durations_ms
        # Constream recovery is faster than real time (the 5x slope of
        # Figure 7, bounded by the nack pacing).
        assert result.recovery_slope > 1.5 * result.normal_slope


class TestJMSHarness:
    def test_consumption_bounded_by_commits(self):
        result = run_jms_autoack(5, input_rate=400, duration_ms=6_000)
        assert result.subscribers == 5
        assert 0 < result.consumed_rate <= result.offered_rate * 1.05
        assert result.commits_per_s > 0

    def test_more_subscribers_more_throughput_sublinear(self):
        small = run_jms_autoack(4, input_rate=400, duration_ms=6_000)
        big = run_jms_autoack(16, input_rate=400, duration_ms=6_000)
        assert big.consumed_rate > small.consumed_rate
        assert big.consumed_rate < 4 * small.consumed_rate
