"""Model-based property test for the counting matcher and aggregates.

The :class:`MatchingEngine` is a compact encoding of a simple object —
a map ``sub_id -> Predicate`` queried by "which entries match this
event" (``match``) and "does any entry match" (``matches_any``).  The
naive model holds the same map in a plain dict and answers both by
evaluating every predicate tree.  Each test drives the real engine and
the model through the same randomized churn (adds, replaces, removes,
bulk ``replace_all`` refreshes) and checks full agreement after every
step, against a stream of randomized events.

This exercises the machinery the unit tests can't reach exhaustively:
atom interning/refcounting across shared predicates, sorted-bound-list
maintenance under removal, aggregate signature refcounts and covering
activation/deactivation, and the FIFO match cache's in-place repair.
Randomness comes from an explicitly seeded ``random.Random`` so
failures replay exactly; the seeds are part of the test matrix.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.matching.engine import MatchingEngine
from repro.matching.predicates import (
    And, Between, Eq, Everything, Exists, Gt, In, Le, Ne, Nothing, Or,
    Predicate, Prefix,
)
from repro.matching.topics import Topic

SEEDS = [7, 42, 1001]
N_STEPS = 300
EVENTS_PER_CHECK = 6


def _random_predicate(rng: random.Random) -> Predicate:
    """Draw from every predicate form, weighted toward conjunctions."""
    roll = rng.random()
    if roll < 0.18:
        return Eq("g", rng.randrange(6))
    if roll < 0.32:
        return In("g", rng.sample(range(6), rng.randrange(1, 4)))
    if roll < 0.44:
        return Gt("x", rng.randrange(8))
    if roll < 0.52:
        return Between("x", rng.randrange(4), rng.randrange(4, 9))
    if roll < 0.68:
        return And(
            [Eq("g", rng.randrange(6)), Between("x", rng.randrange(4), rng.randrange(4, 9))]
        )
    if roll < 0.74:
        return Or([Eq("g", rng.randrange(6)), Eq("g", rng.randrange(6))])
    if roll < 0.80:
        return Or([Eq("g", rng.randrange(6)), Gt("x", rng.randrange(8))])  # opaque
    if roll < 0.85:
        return Ne("g", rng.randrange(6))
    if roll < 0.89:
        return Prefix("sym", rng.choice(["IBM", "MS", "A"]))
    if roll < 0.92:
        return Topic(rng.choice(["a.b", "a.*", "a.#", "b.c"]))
    if roll < 0.95:
        return Exists("opt")
    if roll < 0.97:
        return ~Exists("opt")  # opaque Not
    if roll < 0.99:
        return Everything()
    return Nothing()


def _random_event(rng: random.Random) -> Dict[str, object]:
    attrs: Dict[str, object] = {
        "g": rng.randrange(7),
        "x": rng.randrange(10),
        "sym": rng.choice(["IBM.N", "MSFT", "AAPL", ""]),
        "_topic": rng.choice(["a.b", "a.b.c", "b.c", "a"]),
    }
    if rng.random() < 0.3:
        attrs["opt"] = rng.randrange(3)
    if rng.random() < 0.1:
        attrs["g"] = None  # the pre-PR engine's blind spot
    return attrs


def _check_agreement(eng: MatchingEngine, model: Dict[str, Predicate], rng, tag: str) -> None:
    assert len(eng) == len(model)
    for _ in range(EVENTS_PER_CHECK):
        attrs = _random_event(rng)
        expected = {sid for sid, p in model.items() if p.matches(attrs)}
        assert eng.match(attrs) == expected, f"{tag}: match diverged on {attrs}"
        assert eng.matches_any(attrs) == bool(expected), (
            f"{tag}: matches_any diverged on {attrs}"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_matches_naive_model_under_churn(seed):
    rng = random.Random(seed)
    eng, model = MatchingEngine(), {}
    for step in range(N_STEPS):
        op = rng.random()
        if op < 0.55 or not model:
            sid = f"s{rng.randrange(40)}"  # collisions exercise replace
            pred = _random_predicate(rng)
            eng.add(sid, pred)
            model[sid] = pred
        elif op < 0.85:
            sid = rng.choice(list(model))
            eng.remove(sid)
            del model[sid]
        else:
            # Epoch-refresh: re-state a mutated version of the full set.
            staged = dict(model)
            for sid in list(staged):
                r = rng.random()
                if r < 0.15:
                    del staged[sid]
                elif r < 0.3:
                    staged[sid] = _random_predicate(rng)
            staged[f"s{rng.randrange(40)}"] = _random_predicate(rng)
            eng.replace_all(staged)
            model = staged
        _check_agreement(eng, model, rng, f"seed={seed} step={step}")


@pytest.mark.parametrize("seed", SEEDS)
def test_match_cache_stays_consistent_under_churn(seed):
    """``match_at`` answers must track churn exactly (in-place repair)."""
    rng = random.Random(seed)
    eng, model = MatchingEngine(), {}
    events = {f"p:{i}": _random_event(rng) for i in range(12)}
    for eid, attrs in events.items():
        eng.match_at(eid, attrs)  # prime the cache
    for step in range(120):
        sid = f"s{rng.randrange(15)}"
        if rng.random() < 0.6 or sid not in model:
            pred = _random_predicate(rng)
            eng.add(sid, pred)
            model[sid] = pred
        else:
            eng.remove(sid)
            del model[sid]
        eid = rng.choice(list(events))
        attrs = events[eid]
        expected = frozenset(s for s, p in model.items() if p.matches(attrs))
        assert eng.match_at(eid, attrs) == expected, f"seed={seed} step={step}"
    # Every answer so far must have come from the repaired cache.
    assert eng.cache_misses == len(events)


@pytest.mark.parametrize("seed", SEEDS)
def test_match_cache_eviction_under_churn(seed):
    """FIFO eviction interleaved with churn must stay consistent.

    The in-place repair above never exercises eviction: the cache stays
    far below its bound.  Here the bound is shrunk to 8 and a stream of
    fresh event ids pushes entries out *while* subscriptions churn, so
    every answer mixes three provenances — repaired survivors, evicted
    ids re-matched cold, and brand-new ids.  Each must equal what a cold
    engine holding the current subscription set computes, and evicted
    ids must genuinely re-miss (the bound is enforced, not bypassed).
    """
    import repro.matching.engine as engine_mod

    limit, orig = 8, engine_mod.MATCH_CACHE_LIMIT
    engine_mod.MATCH_CACHE_LIMIT = limit
    try:
        rng = random.Random(seed)
        eng, model = MatchingEngine(), {}
        events = {f"p:{i}": _random_event(rng) for i in range(3 * limit)}
        eids = list(events)
        for step in range(200):
            sid = f"s{rng.randrange(15)}"
            if rng.random() < 0.6 or sid not in model:
                pred = _random_predicate(rng)
                eng.add(sid, pred)
                model[sid] = pred
            else:
                eng.remove(sid)
                del model[sid]
            # Walk the id space so older entries keep falling out.
            eid = eids[(step + rng.randrange(limit)) % len(eids)]
            attrs = events[eid]
            expected = frozenset(s for s, p in model.items() if p.matches(attrs))
            assert eng.match_at(eid, attrs) == expected, f"seed={seed} step={step}"
            assert len(eng._match_cache) <= limit
        # Eviction actually happened: far more misses than the cache holds.
        assert eng.cache_misses > limit
    finally:
        engine_mod.MATCH_CACHE_LIMIT = orig
