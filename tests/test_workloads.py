"""Tests for the paper-workload generators and churn schedules."""

import pytest

from repro import Scheduler, build_two_broker
from repro.workloads.generator import (
    ChurnSchedule,
    PaperWorkloadSpec,
    make_publishers,
    make_subscribers,
)


class TestSpec:
    def test_paper_defaults(self):
        spec = PaperWorkloadSpec()
        assert spec.input_rate == 800.0
        assert spec.per_pubend_rate == 200.0
        assert spec.per_subscriber_rate == 200.0
        assert spec.pubend_names() == ["P1", "P2", "P3", "P4"]

    def test_per_subscriber_rate_scales_with_groups(self):
        spec = PaperWorkloadSpec(groups_per_sub=2)
        assert spec.per_subscriber_rate == 400.0

    def test_predicates_cycle_groups(self):
        spec = PaperWorkloadSpec()
        preds = [spec.subscriber_predicate(i) for i in range(8)]
        # Round-robin: subscriber i and i+4 share a group.
        assert preds[0] == preds[4]
        assert preds[0] != preds[1]


class TestGenerators:
    def test_publishers_hit_aggregate_rate(self):
        spec = PaperWorkloadSpec(input_rate=400.0)
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        pubs = make_publishers(sim, overlay.phb, spec)
        assert len(pubs) == 4
        sim.run_until(5_000)
        total = sum(p.published for p in pubs)
        assert total == pytest.approx(400 * 5, rel=0.02)

    def test_subscribers_receive_expected_share(self):
        spec = PaperWorkloadSpec(input_rate=200.0)
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        make_publishers(sim, overlay.phb, spec)
        subs = make_subscribers(sim, overlay.shbs, spec, subs_per_shb=4)
        sim.run_until(10_000)
        for sub in subs:
            # 1/4 of 200 ev/s = 50 ev/s each; allow pipeline slack.
            assert sub.stats.events == pytest.approx(500, rel=0.1)

    def test_subscribers_spread_over_machines(self):
        spec = PaperWorkloadSpec()
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        subs = make_subscribers(sim, overlay.shbs, spec, subs_per_shb=20,
                                subs_per_machine=8)
        machines = {sub.node.name for sub in subs}
        assert len(machines) == 3  # ceil(20 / 8)

    def test_make_subscribers_without_connect(self):
        spec = PaperWorkloadSpec()
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        subs = make_subscribers(sim, overlay.shbs, spec, subs_per_shb=2, connect=False)
        assert all(not s.connected for s in subs)


class TestChurn:
    def test_disconnects_and_reconnects_happen(self):
        spec = PaperWorkloadSpec(input_rate=200.0)
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        make_publishers(sim, overlay.phb, spec)
        subs = make_subscribers(sim, overlay.shbs, spec, subs_per_shb=4)
        schedule = ChurnSchedule(
            sim, subs, shb_of=lambda s: overlay.shbs[0],
            period_ms=3_000, down_ms=300, start_after_ms=500,
        )
        sim.run_until(10_000)
        assert schedule.disconnects >= 8
        assert schedule.reconnects >= 8
        # Exactly-once still holds under the schedule.
        for sub in subs:
            assert sub.stats.order_violations == 0
            assert sub.stats.gaps == 0

    def test_stop_halts_churn(self):
        spec = PaperWorkloadSpec(input_rate=200.0)
        sim = Scheduler()
        overlay = build_two_broker(sim, spec.pubend_names())
        subs = make_subscribers(sim, overlay.shbs, spec, subs_per_shb=2)
        schedule = ChurnSchedule(
            sim, subs, shb_of=lambda s: overlay.shbs[0],
            period_ms=2_000, down_ms=200, start_after_ms=100,
        )
        schedule.stop()
        sim.run_until(5_000)
        assert schedule.disconnects == 0
