"""Tests for the subscription language and matching engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matching import engine as engine_mod
from repro.matching.aggregate import SubscriptionAggregate
from repro.matching.engine import MatchingEngine, decompose_safe
from repro.matching.predicates import (
    And, Between, CmpAtom, Eq, EqAtom, Everything, Exists, Ge, Gt, In, Le,
    Lt, Ne, NeverAtom, Not, Nothing, Or, Prefix,
)
from repro.matching.topics import TOPIC_ATTR, Topic, topic_pattern_matches


class TestPredicates:
    def test_eq(self):
        p = Eq("g", 3)
        assert p.matches({"g": 3})
        assert not p.matches({"g": 4})
        assert not p.matches({})

    def test_in(self):
        p = In("g", [1, 3])
        assert p.matches({"g": 1}) and p.matches({"g": 3})
        assert not p.matches({"g": 2})

    def test_ne_requires_presence(self):
        p = Ne("g", 3)
        assert p.matches({"g": 4})
        assert not p.matches({"g": 3})
        assert not p.matches({})

    def test_comparisons(self):
        assert Lt("x", 5).matches({"x": 4})
        assert not Lt("x", 5).matches({"x": 5})
        assert Le("x", 5).matches({"x": 5})
        assert Gt("x", 5).matches({"x": 6})
        assert Ge("x", 5).matches({"x": 5})
        assert not Gt("x", 5).matches({})

    def test_comparison_type_mismatch_is_false(self):
        assert not Gt("x", 5).matches({"x": "str"})

    def test_invalid_operator_rejected(self):
        from repro.matching.predicates import Cmp
        with pytest.raises(ValueError):
            Cmp("x", "!=", 5)

    def test_between(self):
        p = Between("x", 2, 5)
        assert p.matches({"x": 2}) and p.matches({"x": 5})
        assert not p.matches({"x": 1}) and not p.matches({"x": 6})

    def test_exists(self):
        assert Exists("x").matches({"x": None})
        assert not Exists("x").matches({"y": 1})

    def test_prefix(self):
        p = Prefix("sym", "IBM")
        assert p.matches({"sym": "IBM.N"})
        assert not p.matches({"sym": "MSFT"})
        assert not p.matches({"sym": 42})

    def test_and_or_not(self):
        p = (Eq("a", 1) & Gt("b", 5)) | ~Exists("c")
        assert p.matches({"a": 1, "b": 6})
        assert p.matches({"a": 2})          # no c -> Not(Exists) true
        assert not p.matches({"a": 2, "c": 1})

    def test_everything_nothing(self):
        assert Everything().matches({})
        assert not Nothing().matches({"any": 1})

    def test_indexable_equalities(self):
        assert Eq("g", 1).indexable_equalities() == ("g", frozenset([1]))
        assert In("g", [1, 2]).indexable_equalities() == ("g", frozenset([1, 2]))
        assert Gt("g", 1).indexable_equalities() is None
        assert And([Gt("x", 1), Eq("g", 2)]).indexable_equalities() == ("g", frozenset([2]))
        assert Or([Eq("g", 1), Eq("g", 2)]).indexable_equalities() == ("g", frozenset([1, 2]))
        assert Or([Eq("g", 1), Eq("h", 2)]).indexable_equalities() is None
        assert Or([Eq("g", 1), Gt("g", 5)]).indexable_equalities() is None


class TestTopics:
    def test_literal_match(self):
        assert topic_pattern_matches("a.b.c", "a.b.c")
        assert not topic_pattern_matches("a.b.c", "a.b")
        assert not topic_pattern_matches("a.b", "a.b.c")

    def test_star_matches_one_segment(self):
        assert topic_pattern_matches("a.*.c", "a.b.c")
        assert not topic_pattern_matches("a.*.c", "a.b.d")
        assert not topic_pattern_matches("a.*", "a.b.c")

    def test_hash_matches_tail(self):
        assert topic_pattern_matches("a.#", "a.b.c")
        # '#' matches zero or more segments, so the bare prefix matches too.
        assert topic_pattern_matches("a.#", "a")
        assert topic_pattern_matches("#", "x.y")
        assert not topic_pattern_matches("a.#", "b.c")

    def test_hash_only_final(self):
        with pytest.raises(ValueError):
            Topic("a.#.c")

    def test_topic_predicate(self):
        p = Topic("trades.nyse.*")
        assert p.matches({TOPIC_ATTR: "trades.nyse.IBM"})
        assert not p.matches({TOPIC_ATTR: "trades.nasdaq.MSFT"})
        assert not p.matches({})

    def test_literal_topic_is_indexable(self):
        assert Topic("a.b").indexable_equalities() == (TOPIC_ATTR, frozenset(["a.b"]))
        assert Topic("a.*").indexable_equalities() is None

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            Topic("a..b")


class TestEngine:
    def test_match_returns_matching_ids(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        eng.add("s2", Eq("g", 2))
        eng.add("s3", In("g", [1, 2]))
        assert eng.match({"g": 1}) == {"s1", "s3"}
        assert eng.match({"g": 2}) == {"s2", "s3"}
        assert eng.match({"g": 3}) == set()

    def test_scan_fallback_for_unindexable(self):
        eng = MatchingEngine()
        eng.add("s1", Gt("price", 100))
        assert eng.match({"price": 150}) == {"s1"}
        assert eng.match({"price": 50}) == set()

    def test_mixed_index_and_scan(self):
        eng = MatchingEngine()
        eng.add("idx", Eq("g", 1))
        eng.add("scan", Everything())
        assert eng.match({"g": 1}) == {"idx", "scan"}
        assert eng.match({"g": 9}) == {"scan"}

    def test_matches_any_short_circuits(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        assert eng.matches_any({"g": 1})
        assert not eng.matches_any({"g": 2})

    def test_remove(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        eng.remove("s1")
        assert eng.match({"g": 1}) == set()
        assert "s1" not in eng
        eng.remove("s1")  # idempotent

    def test_replace_subscription(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        eng.add("s1", Eq("g", 2))
        assert eng.match({"g": 1}) == set()
        assert eng.match({"g": 2}) == {"s1"}
        assert len(eng) == 1

    def test_matches_subscription(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        assert eng.matches_subscription("s1", {"g": 1})
        assert not eng.matches_subscription("s1", {"g": 2})
        assert not eng.matches_subscription("nope", {"g": 1})

    def test_none_valued_attribute_matches(self):
        # Regression: the pre-PR candidate walk skipped any event
        # attribute whose value was None, so an indexed Eq("a", None)
        # (or In containing None) silently never matched.
        eng = MatchingEngine()
        eng.add("eq-none", Eq("a", None))
        eng.add("in-none", In("a", [None, 1]))
        assert eng.match({"a": None}) == {"eq-none", "in-none"}
        assert eng.match({"a": 1}) == {"in-none"}
        assert eng.matches_any({"a": None})
        assert eng.match({"a": 2}) == set()

    def test_unhashable_values_fall_back_to_scan(self):
        eng = MatchingEngine()
        eng.add("listy", Eq("a", [1, 2]))  # unhashable bound -> opaque
        assert eng.scan_count == 1
        assert eng.match({"a": [1, 2]}) == {"listy"}
        assert eng.match({"a": [1, 2], "b": [3]}) == {"listy"}
        assert eng.match({"a": [9]}) == set()


class TestMatchCache:
    def test_match_at_hits_and_misses(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        r1 = eng.match_at("p:1", {"g": 1})
        assert r1 == frozenset({"s1"})
        assert (eng.cache_hits, eng.cache_misses) == (0, 1)
        assert eng.match_at("p:1", {"g": 1}) is r1
        assert (eng.cache_hits, eng.cache_misses) == (1, 1)

    def test_fifo_eviction_order(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "MATCH_CACHE_LIMIT", 3)
        eng = MatchingEngine()
        eng.add("s1", Everything())
        for i in range(3):
            eng.match_at(f"p:{i}", {"g": i})
        # A hit must NOT refresh recency: FIFO, not LRU.
        eng.match_at("p:0", {"g": 0})
        eng.match_at("p:3", {"g": 3})  # evicts p:0, the oldest insert
        assert list(eng._match_cache) == ["p:1", "p:2", "p:3"]
        misses = eng.cache_misses
        eng.match_at("p:0", {"g": 0})  # re-inserted: was evicted
        assert eng.cache_misses == misses + 1

    def test_add_extends_cached_results_in_place(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        assert eng.match_at("p:1", {"g": 1}) == frozenset({"s1"})
        assert eng.match_at("p:2", {"g": 2}) == frozenset()
        eng.add("s2", In("g", [1, 2]))
        misses = eng.cache_misses
        assert eng.match_at("p:1", {"g": 1}) == frozenset({"s1", "s2"})
        assert eng.match_at("p:2", {"g": 2}) == frozenset({"s2"})
        assert eng.cache_misses == misses  # repaired, not recomputed

    def test_remove_shrinks_cached_results_in_place(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        eng.add("s2", Everything())
        assert eng.match_at("p:1", {"g": 1}) == frozenset({"s1", "s2"})
        eng.remove("s1")
        misses = eng.cache_misses
        assert eng.match_at("p:1", {"g": 1}) == frozenset({"s2"})
        assert eng.cache_misses == misses

    def test_replace_resubscription_repairs_cache(self):
        eng = MatchingEngine()
        eng.add("s1", Eq("g", 1))
        eng.match_at("p:1", {"g": 1})
        eng.add("s1", Eq("g", 2))  # replace: remove then add
        assert eng.match_at("p:1", {"g": 1}) == frozenset()
        assert eng.match_at("p:2", {"g": 2}) == frozenset({"s1"})


class TestDecomposition:
    def test_leaves(self):
        assert Eq("g", 1).decompose() == ((EqAtom("g", frozenset([1])),), None)
        assert In("g", [1, 2]).decompose() == ((EqAtom("g", frozenset([1, 2])),), None)
        assert Gt("x", 5).decompose() == ((CmpAtom("x", ">", 5),), None)
        assert Everything().decompose() == ((), None)
        assert Nothing().decompose() == ((NeverAtom(),), None)

    def test_between_becomes_two_bounds(self):
        atoms, residual = Between("x", 2, 5).decompose()
        assert residual is None
        assert set(atoms) == {CmpAtom("x", ">=", 2), CmpAtom("x", "<=", 5)}

    def test_and_concatenates_atoms(self):
        p = And([Eq("g", 1), Gt("x", 5), Between("y", 0, 9)])
        atoms, residual = p.decompose()
        assert residual is None
        assert len(atoms) == 4

    def test_and_folds_opaque_children_into_residual(self):
        opaque = ~Exists("c")
        atoms, residual = And([Eq("g", 1), opaque]).decompose()
        assert atoms == (EqAtom("g", frozenset([1])),)
        assert residual is not None
        assert residual.matches({"g": 1})
        assert not residual.matches({"g": 1, "c": 0})

    def test_or_of_same_attr_equalities_merges(self):
        atoms, residual = Or([Eq("g", 1), Eq("g", 2)]).decompose()
        assert atoms == (EqAtom("g", frozenset([1, 2])),)
        assert residual is None

    def test_mixed_or_stays_opaque(self):
        p = Or([Eq("g", 1), Gt("x", 5)])
        atoms, residual = p.decompose()
        assert atoms == () and residual is p

    def test_literal_topic_decomposes(self):
        atoms, residual = Topic("a.b").decompose()
        assert atoms == (EqAtom(TOPIC_ATTR, frozenset(["a.b"])),)
        assert residual is None
        wild = Topic("a.*")
        assert wild.decompose() == ((), wild)

    def test_decompose_safe_dedups_and_guards_hashability(self):
        atoms, residual = decompose_safe(And([Eq("g", 1), Eq("g", 1)]))
        assert atoms == (EqAtom("g", frozenset([1])),)
        p = Eq("a", [1, 2])  # unhashable atom value
        assert decompose_safe(p) == ((), p)


class TestAggregate:
    @staticmethod
    def _add(agg, sub_id, predicate):
        atoms, residual = decompose_safe(predicate)
        agg.add(sub_id, atoms, residual)

    def test_equal_predicates_share_a_signature(self):
        agg = SubscriptionAggregate()
        for i in range(50):
            self._add(agg, f"s{i}", Eq("g", 1))
        assert agg.signature_count == 1
        assert agg.active_count == 1
        assert agg.matches_any({"g": 1})
        assert not agg.matches_any({"g": 2})

    def test_broader_signature_absorbs_narrower(self):
        agg = SubscriptionAggregate()
        self._add(agg, "broad", Eq("g", 1))
        self._add(agg, "narrow", And([Eq("g", 1), Eq("h", 2)]))
        assert agg.signature_count == 2
        assert agg.active_count == 1  # only the broad one is consulted
        assert agg.matches_any({"g": 1})
        assert agg.matches_any({"g": 1, "h": 9})

    def test_removing_coverer_reactivates_ward(self):
        agg = SubscriptionAggregate()
        self._add(agg, "broad", Eq("g", 1))
        self._add(agg, "narrow", And([Eq("g", 1), Eq("h", 2)]))
        agg.remove("broad")
        assert agg.active_count == 1
        assert agg.matches_any({"g": 1, "h": 2})
        assert not agg.matches_any({"g": 1, "h": 9})

    def test_wildcard_accepts_all(self):
        agg = SubscriptionAggregate()
        assert not agg.accepts_all()
        self._add(agg, "narrow", Eq("g", 1))
        self._add(agg, "wild", Everything())
        assert agg.accepts_all()
        assert agg.active_count == 1
        assert agg.matches_any({"anything": 0})
        agg.remove("wild")
        assert not agg.accepts_all()
        assert not agg.matches_any({"anything": 0})

    def test_engine_exposes_aggregate_counters(self):
        eng = MatchingEngine()
        for i in range(10):
            eng.add(f"s{i}", Eq("g", 1))
        eng.add("narrow", And([Eq("g", 1), Gt("x", 5)]))
        assert eng.aggregate_signatures == 2
        assert eng.aggregate_active == 1  # Eq("g", 1) covers the And
        assert eng.accepts_all() is False
        eng.add("wild", Everything())
        assert eng.accepts_all() is True


# ---------------------------------------------------------------------------
# Property: indexed engine agrees with naive evaluation
# ---------------------------------------------------------------------------
_preds = st.one_of(
    st.builds(Eq, st.just("g"), st.integers(0, 5)),
    st.builds(lambda vs: In("g", vs), st.lists(st.integers(0, 5), min_size=1, max_size=3)),
    st.builds(Gt, st.just("x"), st.integers(0, 5)),
    st.builds(lambda a, b: And([Eq("g", a), Gt("x", b)]), st.integers(0, 5), st.integers(0, 5)),
    st.just(Everything()),
)


@given(
    st.lists(_preds, min_size=1, max_size=12),
    st.lists(
        st.fixed_dictionaries({"g": st.integers(0, 6), "x": st.integers(0, 6)}),
        min_size=1,
        max_size=10,
    ),
)
@settings(max_examples=100)
def test_engine_agrees_with_naive_matching(preds, events):
    eng = MatchingEngine()
    for i, p in enumerate(preds):
        eng.add(f"s{i}", p)
    for attrs in events:
        expected = {f"s{i}" for i, p in enumerate(preds) if p.matches(attrs)}
        assert eng.match(attrs) == expected
        assert eng.matches_any(attrs) == bool(expected)
