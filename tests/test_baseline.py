"""Tests for the per-subscriber event-log baseline (the MQ-style design)."""

from repro.core.events import Event
from repro.pfs.baseline import PerSubscriberEventLogs
from repro.pfs.pfs import PersistentFilteringSubsystem


def ev(t):
    return Event("P1", t, {"g": t % 4})


class TestBaseline:
    def test_event_logged_once_per_matching_subscriber(self):
        logs = PerSubscriberEventLogs()
        logs.append_event(ev(10), ["s1", "s2", "s3"])
        assert logs.appends == 3
        assert logs.bytes_written == 3 * ev(10).size_bytes

    def test_pending_after(self):
        logs = PerSubscriberEventLogs()
        for t in (10, 20, 30):
            logs.append_event(ev(t), ["s1"])
        assert logs.pending_after("s1", 10) == [20, 30]
        assert logs.pending_after("s2", 0) == []

    def test_read_timestamp(self):
        logs = PerSubscriberEventLogs()
        logs.append_event(ev(10), ["s1"])
        data = logs.read_timestamp("s1", 10)
        assert data is not None
        assert len(data) == ev(10).size_bytes
        assert logs.read_timestamp("s1", 99) is None

    def test_ack_trims_queue(self):
        logs = PerSubscriberEventLogs()
        for t in (10, 20, 30):
            logs.append_event(ev(t), ["s1"])
        assert logs.ack_through("s1", 20) == 2
        assert logs.queue_depth("s1") == 1
        assert logs.pending_after("s1", 0) == [30]

    def test_ack_noop_when_nothing_eligible(self):
        logs = PerSubscriberEventLogs()
        logs.append_event(ev(10), ["s1"])
        assert logs.ack_through("s1", 5) == 0
        assert logs.queue_depth("s1") == 1

    def test_independent_queues(self):
        logs = PerSubscriberEventLogs()
        logs.append_event(ev(10), ["s1", "s2"])
        logs.ack_through("s1", 10)
        assert logs.queue_depth("s1") == 0
        assert logs.queue_depth("s2") == 1


class TestBytesComparison:
    def test_pfs_writes_far_fewer_bytes_than_baseline(self):
        """The core of the Section 5.1.2 claim: ~25x at n=25 matches."""
        pfs = PersistentFilteringSubsystem()
        baseline = PerSubscriberEventLogs()
        n_matching = 25
        subs = [f"s{i}" for i in range(n_matching)]
        for k in range(100):
            event = ev(10 * (k + 1))
            pfs.write("P1", event.timestamp, list(range(n_matching)))
            baseline.append_event(event, subs)
        ratio = baseline.bytes_written / pfs.bytes_written
        # 418 * 25 / (8 + 16 * 25) = 25.6
        assert 24.0 < ratio < 27.0
