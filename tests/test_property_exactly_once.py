"""Property-based end-to-end test: exactly-once under random schedules.

Hypothesis generates arbitrary interleavings of subscriber
disconnect/reconnect periods and SHB crash windows; after the system
quiesces, every subscriber must have received every matching event
exactly once, in order, with no gaps (no early release configured).

This is the library's headline invariant (Section 2's guarantee), so it
gets the adversarial treatment.
"""

from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DurableSubscriber,
    FailureSchedule,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)

# Delivery batching windows (ms): off, sub-latency, super-latency.  The
# invariant must hold identically in all three regimes.
BATCH_WINDOWS = [0.0, 1.0, 10.0]

# A subscriber schedule: list of (disconnect_at, down_duration) pairs.
sub_schedule = st.lists(
    st.tuples(st.integers(500, 8_000), st.integers(50, 3_000)),
    max_size=3,
)

# Optional SHB crash: (crash_at, down_duration).
shb_crash = st.one_of(
    st.none(),
    st.tuples(st.integers(1_000, 8_000), st.integers(100, 3_000)),
)


@pytest.mark.parametrize("batch_window_ms", BATCH_WINDOWS)
@given(
    schedules=st.lists(sub_schedule, min_size=1, max_size=3),
    crash=shb_crash,
    rate=st.sampled_from([50, 120, 200]),
)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.differing_executors,
    ],
)
def test_exactly_once_under_random_churn_and_crashes(
    batch_window_ms, schedules, crash, rate
):
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"], batch_window_ms=batch_window_ms)
    shb = overlay.shbs[0]
    machine = Node(sim, "clients")

    subs = []
    for i in range(len(schedules)):
        sub = DurableSubscriber(
            sim, f"s{i}", machine, In("group", [i % 2, 2 + i % 2]),
            record_events=True,
        )
        sub.connect(shb)
        subs.append(sub)

    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()

    # Install the random schedules.  Reconnects are retried while the
    # SHB is down (a real client would also retry).
    def try_reconnect(sub):
        if not sub.connected:
            if shb.node.is_down:
                sim.after(500, try_reconnect, sub)
            else:
                sub.connect(shb)

    horizon = 10_000
    for sub, schedule in zip(subs, schedules):
        t = 0
        for start, down in schedule:
            t = max(t + 200, start)
            sim.at(t, lambda s=sub: s.disconnect() if s.connected else None)
            sim.at(t + down, try_reconnect, sub)
            t += down
            horizon = max(horizon, t + 2_000)

    faults = FailureSchedule(sim)
    if crash is not None:
        crash_at, down = crash
        faults.crash_broker(shb, crash_at, down)
        horizon = max(horizon, crash_at + down + 2_000)

    sim.run_until(horizon)
    # The schedule records what was actually injected.
    crashes = faults.records_between(0.0, horizon)
    assert len(crashes) == (0 if crash is None else 1)
    if crash is not None:
        assert crashes[0].kind == "crash" and crashes[0].target == shb.name
    # Quiesce: stop publishing, reconnect stragglers, drain catchups.
    pub.stop()
    for sub in subs:
        try_reconnect(sub)
    sim.run_until(horizon + 20_000)

    counts = Counter()
    for sub in subs:
        assert sub.stats.order_violations == 0, f"{sub.sub_id} saw reordering"
        assert sub.duplicate_events == 0, f"{sub.sub_id} saw duplicates"
        assert sub.stats.gaps == 0, f"{sub.sub_id} saw gaps without early release"
        for event_id in sub.received_event_ids:
            counts[event_id] += 1

    # Every published event reached every matching subscriber.
    matches_per_event = {i: 0 for i in range(4)}
    for i in range(len(subs)):
        for g in (i % 2, 2 + i % 2):
            matches_per_event[g] += 1
    for k in range(pub.published):
        group = k % 4
        expected = matches_per_event[group]
        if expected == 0:
            continue
        # Event ids are pubend:timestamp; recover timestamp via order of
        # publication is not possible here, so check in aggregate below.
    total_expected = sum(matches_per_event[k % 4] for k in range(pub.published))
    assert sum(counts.values()) == total_expected
