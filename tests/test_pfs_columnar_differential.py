"""Columnar-vs-row PFS differential suite.

The columnar batch write path (:meth:`PersistentFilteringSubsystem.
write_batch`) is a *representation-only* change: a PFS fed one
``write_batch`` per pump advance must be observationally identical to a
PFS fed the same ticks through per-tick :meth:`~repro.pfs.pfs.
PersistentFilteringSubsystem.write` calls — same read results (every
``PFSReadResult`` field, including the logical ``records_visited``
CPU-model count), same ``last_timestamp``/``live_subscriber_nums``,
same logical write counters, same durable-ack sequence under a
group-commit SimDisk, same recovery scan — over chops, crashes, and
both log-volume backends.

A seeded churn drives the two representations through interleaved
advances, chops, crash/recover cycles, and reads, asserting lockstep
equivalence at every observation point.
"""

import random

import pytest

from repro.net.simtime import Scheduler
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.disk import SimDisk
from repro.storage.logvolume import LogVolume
from repro.util.errors import StorageError

BACKENDS = ["memory", "file"]
PUBEND = "P1"


def _open_volume(backend, tmp_path_factory):
    if backend == "file":
        path = str(tmp_path_factory.mktemp("pfsdiff") / "vol.log")
        return LogVolume.at_path(path, fsync=False)
    return LogVolume.in_memory()


def _advance_items(rng, next_ts, n_subs):
    """One pump advance: ascending ticks, occasional shared nums object."""
    items = []
    ts = next_ts
    shared = None
    for _ in range(rng.randint(1, 6)):
        ts += rng.randint(1, 3)
        if shared is not None and rng.random() < 0.5:
            nums = shared  # same object → column-slice sharing
        else:
            nums = rng.sample(range(n_subs), rng.randint(1, min(5, n_subs)))
            shared = nums
        items.append((ts, nums))
    return items, ts


def _observe(pfs, rng, n_subs):
    """A read through every observable surface, as a comparable tuple."""
    sub = rng.randrange(n_subs)
    after = rng.randint(0, pfs.last_timestamp(PUBEND) + 2)
    buffer_qs = rng.choice([1, 2, 7, 5000])
    r = pfs.read_batch(PUBEND, sub, after, buffer_qs=buffer_qs)
    return (
        sub, after, buffer_qs,
        r.after, r.covered_to, tuple(r.q_ticks), r.known_from,
        r.reached_last_timestamp, r.records_visited, r.q_count,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_columnar_equals_row_under_churn(tmp_path_factory, backend, seed):
    n_subs = 12
    row = PersistentFilteringSubsystem(_open_volume(backend, tmp_path_factory))
    col = PersistentFilteringSubsystem(_open_volume(backend, tmp_path_factory))

    rng = random.Random(seed)
    ts = 0
    written = []  # (timestamp, sorted nums) ground truth, post-chop
    row_chopped_total = col_chopped_total = 0
    for _step in range(120):
        op = rng.random()
        if op < 0.55:
            items, ts = _advance_items(rng, ts, n_subs)
            row_acks, col_acks = [], []
            for t, nums in items:
                row.write(PUBEND, t, nums, on_durable=lambda t=t: row_acks.append(t))
            col.write_batch(PUBEND, items, on_durable=col_acks.append)
            assert row_acks == col_acks == [t for t, _ in items]
            written.extend((t, tuple(sorted(nums))) for t, nums in items)
        elif op < 0.70 and written:
            # Chop at a random released point — sometimes mid-batch.
            # The *count* of physically discarded records is a
            # representation detail (a straddling batch defers its
            # discard to a later chop); the logical surface below is
            # what must agree.
            chop_to = rng.choice([t for t, _ in written]) + rng.randint(0, 1)
            row_chopped_total += row.chop_below(PUBEND, chop_to)
            col_chopped_total += col.chop_below(PUBEND, chop_to)
            # Cumulatively the columnar side only ever *defers* chops
            # (a straddling batch is kept whole until fully released).
            assert col_chopped_total <= row_chopped_total
            written = [(t, nums) for t, nums in written if t >= chop_to]
        elif op < 0.80:
            row.crash_reset()
            col.crash_reset()
        else:
            obs_seed = rng.random()
            assert _observe(row, random.Random(obs_seed), n_subs) == \
                _observe(col, random.Random(obs_seed), n_subs)

        assert row.last_timestamp(PUBEND) == col.last_timestamp(PUBEND)

    # Final state equivalence across every observable surface.
    assert row.live_subscriber_nums() == col.live_subscriber_nums()
    assert row.writes == col.writes
    assert row.bytes_written == col.bytes_written
    assert (row.reads, row.reads_reaching_last, row.chain_breaks) == \
        (col.reads, col.reads_reaching_last, col.chain_breaks)
    # The whole point: far fewer physical appends on the columnar side.
    assert col.batch_appends < row.writes or row.writes == 0

    # Exhaustive read sweep: every subscriber, several cursors.
    for sub in range(n_subs):
        for after in [0, ts // 3, ts // 2, ts]:
            r = row.read_batch(PUBEND, sub, after)
            c = col.read_batch(PUBEND, sub, after)
            assert (r.q_ticks, r.known_from, r.covered_to,
                    r.reached_last_timestamp, r.records_visited) == \
                (c.q_ticks, c.known_from, c.covered_to,
                 c.reached_last_timestamp, c.records_visited)
            expected_q = [t for t, nums in written if t > after and sub in nums]
            assert c.q_ticks == expected_q

    # Recovery scan rebuilds identical index state from both layouts.
    row.recover()
    col.recover()
    assert row.live_subscriber_nums() == col.live_subscriber_nums()
    assert row.last_timestamp(PUBEND) == col.last_timestamp(PUBEND)
    for sub in range(n_subs):
        r = row.read_batch(PUBEND, sub, 0)
        c = col.read_batch(PUBEND, sub, 0)
        assert r.q_ticks == c.q_ticks and r.records_visited == c.records_visited


@pytest.mark.parametrize("seed", [0, 7])
def test_durable_ack_sequence_identical_under_group_commit(seed):
    """Under a SimDisk, row and batch paths stage the same logical
    per-tick writes, so group-commit ack timing and order are identical
    — the property that keeps determinism digests byte-identical."""
    rng = random.Random(seed)
    sims = [Scheduler(), Scheduler()]
    disks = [SimDisk(s, sync_interval_ms=6.0, sync_duration_ms=27.0) for s in sims]
    row = PersistentFilteringSubsystem(LogVolume.in_memory(), disk=disks[0])
    col = PersistentFilteringSubsystem(LogVolume.in_memory(), disk=disks[1])

    row_acks, col_acks = [], []
    ts = 0
    advances = []
    for _ in range(25):
        items, ts = _advance_items(rng, ts, 10)
        advances.append(items)

    t_ms = 0.0
    for items in advances:
        t_ms += rng.choice([1.0, 4.0, 9.0])
        sims[0].at(t_ms, lambda items=items: [
            row.write(PUBEND, t, nums,
                      on_durable=lambda t=t: row_acks.append((sims[0].now, t)))
            for t, nums in items
        ])
        sims[1].at(t_ms, lambda items=items: col.write_batch(
            PUBEND, items,
            on_durable=lambda t: col_acks.append((sims[1].now, t)),
        ))
    for sim in sims:
        sim.run_until(t_ms + 200.0)

    assert row_acks == col_acks
    assert len(col_acks) == sum(len(items) for items in advances)
    assert disks[0].bytes_written == disks[1].bytes_written
    assert disks[0].syncs_completed == disks[1].syncs_completed


def test_write_batch_replay_prefix_acks_without_append():
    pfs = PersistentFilteringSubsystem(LogVolume.in_memory())
    items = [(10, [1, 2]), (12, [2]), (15, [1, 3])]
    pfs.write_batch(PUBEND, items)
    appended = pfs.batch_appends

    # Full replay: every tick acked, nothing appended.
    acks = []
    assert pfs.write_batch(PUBEND, items, on_durable=acks.append) == 0
    assert acks == [10, 12, 15]
    assert pfs.batch_appends == appended

    # Mixed replay prefix + fresh suffix: prefix acked synchronously,
    # suffix lands as one new batch.
    acks = []
    mixed = [(12, [2]), (15, [1, 3]), (18, [4]), (20, [4, 1])]
    assert pfs.write_batch(PUBEND, mixed, on_durable=acks.append) > 0
    assert acks == [12, 15, 18, 20]
    assert pfs.batch_appends == appended + 1
    assert pfs.last_timestamp(PUBEND) == 20
    assert pfs.read_batch(PUBEND, 4, 0).q_ticks == [18, 20]


def test_write_batch_rejects_below_chop():
    pfs = PersistentFilteringSubsystem(LogVolume.in_memory())
    pfs.write_batch(PUBEND, [(10, [1]), (20, [1])])
    pfs.chop_below(PUBEND, 21)
    with pytest.raises(StorageError):
        pfs.write_batch(PUBEND, [(15, [1])])


def test_straddling_batch_reader_filters_released_ticks():
    """A chop landing mid-batch keeps the record but readers must not
    visit or vouch for its released ticks — exactly what the row layout
    would have chopped away."""
    pfs = PersistentFilteringSubsystem(LogVolume.in_memory())
    pfs.write_batch(PUBEND, [(10, [1]), (20, [1]), (30, [1])])
    chopped = pfs.chop_below(PUBEND, 25)
    assert chopped == 0  # straddling batch: newest tick 30 >= 25, kept whole

    r = pfs.read_batch(PUBEND, 1, 0)
    assert r.q_ticks == [30]
    assert r.known_from == 25
    # Only the live tick is visited (the row path would read one record).
    assert r.records_visited == 1
