"""Combined adversarial scenarios crossing multiple features."""

from repro import (
    DurableSubscriber,
    Everything,
    FailureSchedule,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_star,
    build_two_broker,
)
from repro.client.publisher import ReliablePublisher
from repro.jms.ctstore import CheckpointCommitService
from repro.jms.session import AUTO_ACKNOWLEDGE, JMSDurableSubscriber


class TestReliablePublisherUnderPartitions:
    def test_publisher_link_partition_recovers(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Everything(),
                                record_events=True)
        sub.connect(overlay.shbs[0])
        pub_node = Node(sim, "p")
        publisher = ReliablePublisher(sim, overlay.phb, pub_node, "pub1", "P1")
        # The publisher's link is internal; disrupt it by crashing the
        # publisher machine briefly (in-flight sends and acks lost).
        for i in range(30):
            publisher.publish({"group": i % 4})
        sim.run_until(3)
        pub_node.fail_for(400)        # in-flight acks lost too
        sim.run_until(2_000)
        for i in range(30, 60):
            publisher.publish({"group": i % 4})
        sim.run_until(12_000)
        assert publisher.unacknowledged == 0
        assert sub.stats.events == 60
        assert sub.duplicate_events == 0

    def test_publisher_and_shb_fail_together(self):
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        sub = DurableSubscriber(sim, "s1", Node(sim, "c"), Everything(),
                                record_events=True)
        sub.connect(shb)
        publisher = ReliablePublisher(sim, overlay.phb, Node(sim, "p"),
                                      "pub1", "P1")
        faults = FailureSchedule(sim)
        faults.crash_broker(shb, at_ms=1_000, down_ms=2_000)
        for i in range(100):
            publisher.publish({"group": i % 4})
            if i == 50:
                sim.run_until(1_500)   # mid-burst, SHB already down
        sim.run_until(4_000)
        if not sub.connected:
            sub.connect(shb)
        sim.run_until(25_000)
        assert publisher.unacknowledged == 0
        assert sub.stats.events == 100
        assert sub.duplicate_events == 0
        assert sub.stats.gaps == 0


class TestRoamingJMS:
    def test_jms_subscriber_roams_between_shbs(self):
        """A JMS durable subscriber moves to another SHB; its CT comes
        from the new SHB's lookup of... itself — JMS CTs are stored per
        SHB, so the roaming client relies on its locally tracked CT
        (the native model), then commits at the new home."""
        sim = Scheduler()
        overlay = build_star(sim, ["P1"], n_shbs=2)
        shb_a, shb_b = overlay.shbs
        CheckpointCommitService(shb_a)
        CheckpointCommitService(shb_b)
        sub = JMSDurableSubscriber(sim, "j1", Node(sim, "c"),
                                   In("group", [0, 2]),
                                   ack_mode=AUTO_ACKNOWLEDGE)
        sub.connect(shb_a)
        pub = PeriodicPublisher(sim, overlay.phb, "P1", 100,
                                attribute_fn=lambda i: {"group": i % 4})
        pub.start()
        sim.run_until(3_000)
        sub.disconnect()
        sim.run_until(5_000)
        sub.connect(shb_b)      # reconnect-anywhere with refiltering
        sim.run_until(15_000)
        pub.stop()
        sim.run_until(20_000)
        assert sub.events_consumed == pub.published // 2
        assert sub.stats.order_violations == 0


class TestChurnEverywhere:
    def test_all_failure_modes_at_once(self):
        """Broker crash + client churn + publisher retransmission in one
        run; the guarantee must hold end to end."""
        sim = Scheduler()
        overlay = build_two_broker(sim, ["P1"])
        shb = overlay.shbs[0]
        machine = Node(sim, "clients")
        subs = [DurableSubscriber(sim, f"s{i}", machine,
                                  In("group", [i % 2, 2 + i % 2]),
                                  record_events=True) for i in range(4)]
        for s in subs:
            s.connect(shb)
        publisher = ReliablePublisher(sim, overlay.phb, Node(sim, "p"),
                                      "pub1", "P1", window=16)

        faults = FailureSchedule(sim)
        faults.crash_broker(overlay.phb, at_ms=2_000, down_ms=800)
        faults.crash_broker(shb, at_ms=6_000, down_ms=1_500)
        faults.partition_link(overlay.links[0], at_ms=11_000, duration_ms=900)
        sim.at(3_500, subs[0].disconnect)
        sim.at(9_000, lambda: subs[0].connect(shb) if not subs[0].connected else None)

        def feeder(k=[0]):
            if k[0] < 600:
                publisher.publish({"group": k[0] % 4})
                k[0] += 1

        sim.every(25, feeder)
        sim.run_until(20_000)
        for s in subs:
            if not s.connected and not shb.node.is_down:
                s.connect(shb)
        sim.run_until(60_000)

        assert publisher.unacknowledged == 0
        accepted = overlay.phb.pubends["P1"].events_published
        for s in subs:
            assert s.duplicate_events == 0
            assert s.stats.order_violations == 0
            assert s.stats.gaps == 0
            assert s.stats.events == accepted // 2
