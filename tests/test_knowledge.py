"""Tests for the knowledge stream consumption cursor."""

import pytest

from repro.core.events import Event
from repro.core.knowledge import KnowledgeStream
from repro.core.messages import KnowledgeUpdate
from repro.core.ticks import Tick


def ev(t):
    return Event("P1", t, {"g": t % 4})


def upd(d=(), s=(), l=()):
    return KnowledgeUpdate("P1", d_events=[ev(t) for t in d],
                           s_ranges=list(s), l_ranges=list(l))


class TestAccumulate:
    def test_wrong_pubend_rejected(self):
        ks = KnowledgeStream("P1")
        with pytest.raises(ValueError):
            ks.accumulate(KnowledgeUpdate("P2"))

    def test_accumulate_and_advance_in_order(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[3], s=[(1, 2), (4, 5)]))
        runs = ks.advance()
        assert [(r.start, r.end, r.kind) for r in runs] == [
            (1, 2, Tick.S), (3, 3, Tick.D), (4, 5, Tick.S),
        ]
        assert ks.consumed == 5

    def test_advance_stops_at_gap(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(1, 3), (5, 9)]))
        assert ks.consumed == 0
        ks.advance()
        assert ks.consumed == 3
        ks.accumulate(upd(d=[4]))
        runs = ks.advance()
        assert runs[0].kind is Tick.D
        assert ks.consumed == 9

    def test_advance_with_limit(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(1, 10)]))
        runs = ks.advance(limit=4)
        assert runs[0].end == 4
        assert ks.consumed == 4
        ks.advance()
        assert ks.consumed == 10

    def test_advance_empty(self):
        ks = KnowledgeStream("P1")
        assert ks.advance() == []

    def test_out_of_order_accumulation(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[5]))
        assert ks.advance() == []  # 1..4 unknown
        ks.accumulate(upd(s=[(1, 4)]))
        runs = ks.advance()
        assert [r.kind for r in runs] == [Tick.S, Tick.D]

    def test_l_ranges_extend_lost_prefix(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(l=[(1, 4)], s=[(5, 6)]))
        runs = ks.advance()
        assert [(r.start, r.end, r.kind) for r in runs] == [
            (1, 4, Tick.L), (5, 6, Tick.S),
        ]

    def test_nonzero_start(self):
        ks = KnowledgeStream("P1", consumed=100)
        ks.accumulate(upd(s=[(90, 120)]))
        runs = ks.advance()
        assert runs[0].start == 101
        assert ks.consumed == 120

    def test_frontier_and_unknown(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(5, 9)]))
        assert ks.frontier == 9
        assert ks.unknown_up_to(9).as_tuples() == [(1, 4)]

    def test_consumed_storage_forgotten(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[1, 2, 3], s=[]))
        ks.accumulate(upd(s=[(4, 5)]))
        ks.advance()
        assert ks.tickmap.d_count == 0


class TestMaxTickAndHelpers:
    def test_update_max_tick(self):
        assert upd(d=[5], s=[(7, 9)]).max_tick() == 9
        assert upd().max_tick() is None

    def test_update_is_empty(self):
        assert upd().is_empty()
        assert not upd(d=[1]).is_empty()

    def test_clip_update(self):
        from repro.core.messages import clip_update
        u = upd(d=[3, 7], s=[(1, 2), (4, 6)], l=[(0, 0)])
        c = clip_update(u, 2, 5)
        assert [e.timestamp for e in c.d_events] == [3]
        assert c.s_ranges == [(2, 2), (4, 5)]
        assert c.l_ranges == []

    def test_split_update(self):
        from repro.core.messages import split_update
        u = upd(d=[3, 7], s=[(1, 2), (4, 6)])
        old, new = split_update(u, 4)
        assert [e.timestamp for e in old.d_events] == [3]
        assert old.s_ranges == [(1, 2), (4, 4)]
        assert [e.timestamp for e in new.d_events] == [7]
        assert new.s_ranges == [(5, 6)]

    def test_split_empty(self):
        from repro.core.messages import split_update
        old, new = split_update(upd(), 5)
        assert old.is_empty() and new.is_empty()


class TestClassifyWithinBoundaries:
    """Exact window edges for ``TickMap.classify_within``.

    The cache-serving brokers call this with nack windows that land
    exactly on run boundaries (a chop at ``refilter_below``, a window
    starting at the lost prefix); off-by-one here silently reclassifies
    the boundary tick.
    """

    def _tm(self):
        from repro.core.tickmap import TickMap
        tm = TickMap()
        tm.set_s(3, 4)
        tm.set_d(5, ev(5))
        tm.set_s(6, 8)
        tm.set_lost_below(3)  # ticks 1..2 become L
        return tm

    def test_window_on_run_edges(self):
        d, s, l, q = self._tm().classify_within(3, 8)
        assert [e.timestamp for e in d] == [5]
        assert s == [(3, 4), (6, 8)]
        assert l == [] and q.as_tuples() == []

    def test_window_chops_s_runs(self):
        # Start and end land strictly inside S runs: each contributes
        # only its in-window remainder, never the whole run.
        d, s, l, q = self._tm().classify_within(4, 7)
        assert [e.timestamp for e in d] == [5]
        assert s == [(4, 4), (6, 7)]

    def test_window_exactly_one_d_tick(self):
        d, s, l, q = self._tm().classify_within(5, 5)
        assert [e.timestamp for e in d] == [5]
        assert s == [] and l == [] and q.as_tuples() == []

    def test_window_straddles_lost_prefix(self):
        # Tick 2 is the last lost tick, 3 the first known one.
        d, s, l, q = self._tm().classify_within(2, 5)
        assert l == [(2, 2)]
        assert s == [(3, 4)]
        assert [e.timestamp for e in d] == [5]

    def test_window_past_frontier_is_q(self):
        d, s, l, q = self._tm().classify_within(9, 12)
        assert d == [] and s == [] and l == []
        assert q.as_tuples() == [(9, 12)]


class TestCoalesceRangeBoundaries:
    """``coalesce_ranges`` at exact adjacency — the shape batch
    filtering emits (one single-tick S per suppressed event)."""

    def test_adjacent_single_ticks_merge(self):
        from repro.util.intervals import coalesce_ranges
        assert coalesce_ranges([(7, 7), (5, 5), (6, 6)]) == [(5, 7)]

    def test_gap_of_one_stays_split(self):
        from repro.util.intervals import coalesce_ranges
        assert coalesce_ranges([(5, 5), (7, 7)]) == [(5, 5), (7, 7)]

    def test_contained_and_overlapping(self):
        from repro.util.intervals import coalesce_ranges
        assert coalesce_ranges([(1, 9), (2, 3), (9, 11)]) == [(1, 11)]

    def test_inverted_range_rejected(self):
        from repro.util.intervals import coalesce_ranges
        with pytest.raises(ValueError):
            coalesce_ranges([(5, 4)])


class TestBatchFilterRefilterBoundary:
    """A D-event batch spanning the ``refilter_below`` chop must split
    exactly at the boundary: ticks ``< keep_below`` pass unfiltered
    (the SHB refilters them itself), the boundary tick and everything
    above go through the child's batch aggregate, and the suppressed
    remainder coalesces with neighbouring S knowledge.
    """

    def _phb_with_child(self, match_g=0):
        from repro.broker.phb import PublisherHostingBroker
        from repro.matching.engine import MatchingEngine
        from repro.matching.predicates import Eq
        from repro.net.simtime import Scheduler
        phb = PublisherHostingBroker(Scheduler(), "phb")
        phb.child_engines["c1"] = MatchingEngine()
        phb.child_engines["c1"].add("s1", Eq("g", match_g))
        phb.child_filter_ready["c1"] = True
        return phb

    def test_batch_splits_at_keep_below(self):
        # g = t % 4, child wants g == 0.  Ticks 4..8 with keep_below=6:
        # 4 and 5 pass unfiltered (5 would NOT match), 6 and 7 are
        # filtered to S, 8 matches and stays D.
        phb = self._phb_with_child()
        out = phb._filter_for_child("c1", upd(d=[4, 5, 6, 7, 8]), keep_below=6)
        assert [e.timestamp for e in out.d_events] == [4, 5, 8]
        assert out.s_ranges == [(6, 7)]

    def test_boundary_tick_is_refiltered(self):
        # keep_below is exclusive: the tick *at* the boundary goes
        # through the matcher (here g=2 does not match, so it turns S).
        phb = self._phb_with_child()
        out = phb._filter_for_child("c1", upd(d=[6]), keep_below=6)
        assert out.d_events == []
        assert out.s_ranges == [(6, 6)]
        out = phb._filter_for_child("c1", upd(d=[6]), keep_below=7)
        assert [e.timestamp for e in out.d_events] == [6]
        assert out.s_ranges == []

    def test_filtered_ticks_coalesce_with_update_silence(self):
        # The suppressed tick is adjacent to carried S knowledge on both
        # sides: one maximal range must ship, not three fragments.
        phb = self._phb_with_child()
        out = phb._filter_for_child("c1", upd(d=[3], s=[(1, 2), (4, 6)]))
        assert out.d_events == []
        assert out.s_ranges == [(1, 6)]

    def test_whole_batch_below_boundary_skips_matching(self):
        phb = self._phb_with_child()
        engine = phb.child_engines["c1"]
        before = engine.events_processed
        out = phb._filter_for_child("c1", upd(d=[1, 2, 3]), keep_below=4)
        assert [e.timestamp for e in out.d_events] == [1, 2, 3]
        assert engine.events_processed == before
