"""Tests for the knowledge stream consumption cursor."""

import pytest

from repro.core.events import Event
from repro.core.knowledge import KnowledgeStream
from repro.core.messages import KnowledgeUpdate
from repro.core.ticks import Tick


def ev(t):
    return Event("P1", t, {"g": t % 4})


def upd(d=(), s=(), l=()):
    return KnowledgeUpdate("P1", d_events=[ev(t) for t in d],
                           s_ranges=list(s), l_ranges=list(l))


class TestAccumulate:
    def test_wrong_pubend_rejected(self):
        ks = KnowledgeStream("P1")
        with pytest.raises(ValueError):
            ks.accumulate(KnowledgeUpdate("P2"))

    def test_accumulate_and_advance_in_order(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[3], s=[(1, 2), (4, 5)]))
        runs = ks.advance()
        assert [(r.start, r.end, r.kind) for r in runs] == [
            (1, 2, Tick.S), (3, 3, Tick.D), (4, 5, Tick.S),
        ]
        assert ks.consumed == 5

    def test_advance_stops_at_gap(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(1, 3), (5, 9)]))
        assert ks.consumed == 0
        ks.advance()
        assert ks.consumed == 3
        ks.accumulate(upd(d=[4]))
        runs = ks.advance()
        assert runs[0].kind is Tick.D
        assert ks.consumed == 9

    def test_advance_with_limit(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(1, 10)]))
        runs = ks.advance(limit=4)
        assert runs[0].end == 4
        assert ks.consumed == 4
        ks.advance()
        assert ks.consumed == 10

    def test_advance_empty(self):
        ks = KnowledgeStream("P1")
        assert ks.advance() == []

    def test_out_of_order_accumulation(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[5]))
        assert ks.advance() == []  # 1..4 unknown
        ks.accumulate(upd(s=[(1, 4)]))
        runs = ks.advance()
        assert [r.kind for r in runs] == [Tick.S, Tick.D]

    def test_l_ranges_extend_lost_prefix(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(l=[(1, 4)], s=[(5, 6)]))
        runs = ks.advance()
        assert [(r.start, r.end, r.kind) for r in runs] == [
            (1, 4, Tick.L), (5, 6, Tick.S),
        ]

    def test_nonzero_start(self):
        ks = KnowledgeStream("P1", consumed=100)
        ks.accumulate(upd(s=[(90, 120)]))
        runs = ks.advance()
        assert runs[0].start == 101
        assert ks.consumed == 120

    def test_frontier_and_unknown(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(s=[(5, 9)]))
        assert ks.frontier == 9
        assert ks.unknown_up_to(9).as_tuples() == [(1, 4)]

    def test_consumed_storage_forgotten(self):
        ks = KnowledgeStream("P1")
        ks.accumulate(upd(d=[1, 2, 3], s=[]))
        ks.accumulate(upd(s=[(4, 5)]))
        ks.advance()
        assert ks.tickmap.d_count == 0


class TestMaxTickAndHelpers:
    def test_update_max_tick(self):
        assert upd(d=[5], s=[(7, 9)]).max_tick() == 9
        assert upd().max_tick() is None

    def test_update_is_empty(self):
        assert upd().is_empty()
        assert not upd(d=[1]).is_empty()

    def test_clip_update(self):
        from repro.core.messages import clip_update
        u = upd(d=[3, 7], s=[(1, 2), (4, 6)], l=[(0, 0)])
        c = clip_update(u, 2, 5)
        assert [e.timestamp for e in c.d_events] == [3]
        assert c.s_ranges == [(2, 2), (4, 5)]
        assert c.l_ranges == []

    def test_split_update(self):
        from repro.core.messages import split_update
        u = upd(d=[3, 7], s=[(1, 2), (4, 6)])
        old, new = split_update(u, 4)
        assert [e.timestamp for e in old.d_events] == [3]
        assert old.s_ranges == [(1, 2), (4, 4)]
        assert [e.timestamp for e in new.d_events] == [7]
        assert new.s_ranges == [(5, 6)]

    def test_split_empty(self):
        from repro.core.messages import split_update
        old, new = split_update(upd(), 5)
        assert old.is_empty() and new.is_empty()
