"""Property tests for crash recovery and accumulation-order independence.

Four invariants that underpin everything else:

1. **Append/chop round trip on every backend**: whatever a stream
   appended (minus what it chopped) reads back identically after the
   volume is reopened — parametrized over the in-memory backend and the
   real-file backend at a tmp path, so tier-1 tests exercise the actual
   frame/CRC recovery scan, not only the simulation store.

2. **Log-volume prefix durability** (file backend): truncate the
   backing file at *any* byte (a torn write at crash) — recovery yields
   a valid prefix of the appended records, never corruption, never
   resurrection of chopped data.

3. **Knowledge accumulation is order-independent**: however a pubend's
   knowledge history is sliced into updates and (per-tick-monotonically)
   reordered, a consolidated stream consumes exactly the same sequence
   of runs.

4. **Columnar PFS batches recover whole**: a batch append torn at the
   durable horizon vanishes entirely (no partial batch is ever
   observable), a batch any tick of which was synced survives entirely
   (the replay acknowledges every tick without re-appending), and a
   chop landing mid-batch never loses the batch's live ticks — over the
   in-memory and real-file backends, through reopen.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.knowledge import KnowledgeStream
from repro.core.messages import KnowledgeUpdate
from repro.core.ticks import Tick
from repro.net.simtime import Scheduler
from repro.pfs.pfs import PersistentFilteringSubsystem
from repro.storage.disk import SimDisk
from repro.storage.logvolume import LogVolume
from repro.util.errors import RecordNotFoundError

BACKENDS = ["memory", "file"]


class _VolumeHarness:
    """Open/reopen a LogVolume on either backend.

    The file backend genuinely closes and recovers from the on-disk
    frames; the memory backend has no medium to recover from (the
    simulation tracks its durability externally via SimDisk), so
    ``reopen`` hands back the same live volume.  Either way the
    append/chop/read contract must be identical.
    """

    def __init__(self, backend: str, tmp_path_factory) -> None:
        self.backend = backend
        if backend == "file":
            self.path = str(tmp_path_factory.mktemp("lv") / "vol.log")
            self.volume = LogVolume.at_path(self.path, fsync=False)
        else:
            self.volume = LogVolume.in_memory()

    def reopen(self) -> LogVolume:
        if self.backend == "file":
            self.volume.flush()
            self.volume.close()
            self.volume = LogVolume.at_path(self.path, fsync=False)
        return self.volume

    def close(self) -> None:
        if self.backend == "file":
            self.volume.close()


# ---------------------------------------------------------------------------
# 1. Append/chop round trip, both backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@given(
    records=st.lists(st.binary(min_size=0, max_size=30), min_size=1, max_size=20),
    chop_at=st.integers(-1, 18),
)
@settings(max_examples=60, deadline=None)
def test_append_chop_roundtrip_survives_reopen(
    tmp_path_factory, backend, records, chop_at
):
    chop_at = min(chop_at, len(records) - 2)
    harness = _VolumeHarness(backend, tmp_path_factory)
    stream = harness.volume.stream("s")
    for record in records:
        stream.append(record)
    if chop_at >= 0:
        stream.chop(chop_at)

    rstream = harness.reopen().stream("s")
    assert rstream.next_index == len(records)
    assert rstream.chopped_below == chop_at + 1
    for i in range(chop_at + 1):
        with pytest.raises(RecordNotFoundError):
            rstream.read(i)
    for i in range(chop_at + 1, len(records)):
        assert rstream.read(i) == records[i]
    # The stream is writable again from the recovered point.
    assert rstream.append(b"post-reopen") == len(records)
    harness.close()


# ---------------------------------------------------------------------------
# 2. File backend: arbitrary torn-tail crash points
# ---------------------------------------------------------------------------
@given(
    records=st.lists(st.binary(min_size=0, max_size=30), min_size=1, max_size=20),
    cut_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_logvolume_recovers_valid_prefix_after_torn_write(
    tmp_path_factory, records, cut_fraction
):
    path = str(tmp_path_factory.mktemp("lv") / "vol.log")
    volume = LogVolume.at_path(path, fsync=False)
    stream = volume.stream("s")
    for record in records:
        stream.append(record)
    volume.flush()
    volume.close()

    import os
    size = os.path.getsize(path)
    cut = int(size * cut_fraction)
    with open(path, "r+b") as f:
        f.truncate(cut)

    recovered = LogVolume.at_path(path, fsync=False)
    rstream = recovered.stream("s")
    n = rstream.next_index
    # A valid prefix: 0 <= n <= len(records), contents intact.
    assert 0 <= n <= len(records)
    for i in range(n):
        assert rstream.read(i) == records[i]
    # The volume is writable again from the recovered point.
    assert rstream.append(b"post-crash") == n
    recovered.close()


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    records=st.lists(st.binary(min_size=1, max_size=20), min_size=2, max_size=15),
    chop_at=st.integers(0, 13),
)
@settings(max_examples=60, deadline=None)
def test_logvolume_chop_never_resurrected(
    tmp_path_factory, backend, records, chop_at
):
    chop_at = min(chop_at, len(records) - 2)
    harness = _VolumeHarness(backend, tmp_path_factory)
    stream = harness.volume.stream("s")
    for record in records:
        stream.append(record)
    stream.chop(chop_at)

    rstream = harness.reopen().stream("s")
    assert rstream.chopped_below == chop_at + 1
    for i in range(chop_at + 1):
        with pytest.raises(RecordNotFoundError):
            rstream.read(i)
    for i in range(chop_at + 1, len(records)):
        assert rstream.read(i) == records[i]
    harness.close()


# ---------------------------------------------------------------------------
# 3. Knowledge accumulation: slicing/order independence
# ---------------------------------------------------------------------------
def _history(draw_data):
    """Build a ground-truth tick assignment over [1, n]."""
    kinds = draw_data
    events = {}
    s_ticks = []
    for t, is_event in enumerate(kinds, start=1):
        if is_event:
            events[t] = Event("P1", t, {"g": t % 4})
        else:
            s_ticks.append(t)
    return events, s_ticks


@given(
    kinds=st.lists(st.booleans(), min_size=1, max_size=40),
    order_seed=st.randoms(use_true_random=False),
    chunk=st.integers(1, 7),
)
@settings(max_examples=120, deadline=None)
def test_consumption_independent_of_update_slicing(kinds, order_seed, chunk):
    events, s_ticks = _history(kinds)
    n = len(kinds)

    # Reference: one update carrying everything, consumed at once.
    ref = KnowledgeStream("P1")
    ref.accumulate(KnowledgeUpdate(
        "P1",
        d_events=list(events.values()),
        s_ranges=[(t, t) for t in s_ticks],
    ))
    expected = [(r.start, r.end, r.kind, getattr(r.event, "timestamp", None))
                for r in ref.advance()]

    # Same history sliced into single-tick updates, shuffled, consumed
    # incrementally.
    pieces = []
    for t in range(1, n + 1):
        if t in events:
            pieces.append(KnowledgeUpdate("P1", d_events=[events[t]]))
        else:
            pieces.append(KnowledgeUpdate("P1", s_ranges=[(t, t)]))
    order_seed.shuffle(pieces)

    stream = KnowledgeStream("P1")
    got = []
    for i, piece in enumerate(pieces):
        stream.accumulate(piece)
        if (i + 1) % chunk == 0:
            got.extend(stream.advance())
    got.extend(stream.advance())
    flat = [(r.start, r.end, r.kind, getattr(r.event, "timestamp", None))
            for r in got]

    # Runs may be split differently across advances; compare per-tick.
    def per_tick(runs):
        out = {}
        for start, end, kind, ev_t in runs:
            for t in range(start, end + 1):
                out[t] = (kind, ev_t if kind is Tick.D else None)
        return out

    assert per_tick(flat) == per_tick(expected)
    assert stream.consumed == n


# ---------------------------------------------------------------------------
# 4. Columnar PFS batch recovery
# ---------------------------------------------------------------------------
_advances_strategy = st.lists(
    st.lists(
        st.tuples(
            st.integers(1, 3),  # tick delta from the previous tick
            st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True),
        ),
        min_size=1,
        max_size=5,
    ),
    min_size=1,
    max_size=6,
)


def _materialize(advances):
    """Turn delta-coded advances into absolute-tick write_batch items."""
    out, ts = [], 0
    for advance in advances:
        items = []
        for delta, nums in advance:
            ts += delta
            items.append((ts, nums))
        out.append(items)
    return out


@given(advances=_advances_strategy, crash_after_sync=st.booleans())
@settings(max_examples=60, deadline=None)
def test_torn_batch_at_durable_horizon_is_all_or_nothing(
    advances, crash_after_sync
):
    """A crash never exposes a partial batch: the last advance either
    vanishes whole (no covering sync) or survives whole (any tick's
    sync), and the constream's deterministic replay heals either way —
    the surviving prefix acks synchronously without re-appending."""
    advances = _materialize(advances)
    sim = Scheduler()
    disk = SimDisk(sim, sync_interval_ms=6.0, sync_duration_ms=27.0)
    pfs = PersistentFilteringSubsystem(LogVolume.in_memory(), disk=disk)

    *durable, last = advances
    for items in durable:
        pfs.write_batch("P1", items)
    sim.run_until(1000.0)  # everything so far synced and acked

    pfs.write_batch("P1", last)
    if crash_after_sync:
        sim.run_until(2000.0)  # the batch's covering sync completes
    disk.crash_reset()
    pfs.crash_reset()

    durable_ticks = [t for items in durable for t, _nums in items]
    if crash_after_sync:
        durable_ticks += [t for t, _nums in last]
    expect_last_ts = durable_ticks[-1] if durable_ticks else 0
    assert pfs.last_timestamp("P1") == expect_last_ts
    for sub in range(10):
        expected = [
            t for items in (durable + [last] if crash_after_sync else durable)
            for t, nums in items if sub in nums
        ]
        assert pfs.read_batch("P1", sub, 0).q_ticks == expected

    # Replay of the crashed advance: already-durable ticks ack without
    # a new append; lost ticks are re-appended as a fresh batch.
    appends_before = pfs.batch_appends
    acks = []
    pfs.write_batch("P1", last, on_durable=acks.append)
    sim.run_until(3000.0)
    assert acks == [t for t, _nums in last]
    assert pfs.batch_appends == appends_before + (0 if crash_after_sync else 1)
    assert pfs.last_timestamp("P1") == last[-1][0]


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    advances=_advances_strategy,
    chop_num=st.integers(0, 30),
    chop_bump=st.integers(0, 1),
)
@settings(max_examples=40, deadline=None)
def test_batch_chop_and_reopen_preserve_live_ticks(
    tmp_path_factory, backend, advances, chop_num, chop_bump
):
    """Chop at an arbitrary tick — including mid-batch — then crash and
    recover (file backend: close and re-scan the real volume).  Every
    live tick survives, every released tick stays invisible, and the
    rebuilt index equals the pre-crash one."""
    advances = _materialize(advances)
    harness = _VolumeHarness(backend, tmp_path_factory)
    pfs = PersistentFilteringSubsystem(harness.volume)
    for items in advances:
        pfs.write_batch("P1", items)

    all_ticks = [t for items in advances for t, _nums in items]
    chop_to = all_ticks[chop_num % len(all_ticks)] + chop_bump
    pfs.chop_below("P1", chop_to)

    # Crash + recover.  On the file backend this goes through the real
    # frame scan; the release point itself is committed SHB state, so
    # the recovered PFS re-learns it from the outside.
    recovered = PersistentFilteringSubsystem(harness.reopen())
    recovered._state("P1").chopped_from_ts = chop_to
    recovered.recover()

    truth = {}
    for items in advances:
        for t, nums in items:
            if t >= chop_to:
                truth[t] = set(nums)
    assert recovered.last_timestamp("P1") == (
        max(truth) if truth else chop_to
    )
    live = set()
    for nums in truth.values():
        live.update(nums)
    assert recovered.live_subscriber_nums() <= {n for items in advances
                                                for _t, nums in items
                                                for n in nums}
    for sub in range(10):
        got = recovered.read_batch("P1", sub, 0)
        assert got.q_ticks == [t for t in sorted(truth) if sub in truth[t]]
        assert got.known_from == chop_to
    harness.close()
