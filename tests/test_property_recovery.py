"""Property tests for crash recovery and accumulation-order independence.

Three invariants that underpin everything else:

1. **Append/chop round trip on every backend**: whatever a stream
   appended (minus what it chopped) reads back identically after the
   volume is reopened — parametrized over the in-memory backend and the
   real-file backend at a tmp path, so tier-1 tests exercise the actual
   frame/CRC recovery scan, not only the simulation store.

2. **Log-volume prefix durability** (file backend): truncate the
   backing file at *any* byte (a torn write at crash) — recovery yields
   a valid prefix of the appended records, never corruption, never
   resurrection of chopped data.

3. **Knowledge accumulation is order-independent**: however a pubend's
   knowledge history is sliced into updates and (per-tick-monotonically)
   reordered, a consolidated stream consumes exactly the same sequence
   of runs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.knowledge import KnowledgeStream
from repro.core.messages import KnowledgeUpdate
from repro.core.ticks import Tick
from repro.storage.logvolume import LogVolume
from repro.util.errors import RecordNotFoundError

BACKENDS = ["memory", "file"]


class _VolumeHarness:
    """Open/reopen a LogVolume on either backend.

    The file backend genuinely closes and recovers from the on-disk
    frames; the memory backend has no medium to recover from (the
    simulation tracks its durability externally via SimDisk), so
    ``reopen`` hands back the same live volume.  Either way the
    append/chop/read contract must be identical.
    """

    def __init__(self, backend: str, tmp_path_factory) -> None:
        self.backend = backend
        if backend == "file":
            self.path = str(tmp_path_factory.mktemp("lv") / "vol.log")
            self.volume = LogVolume.at_path(self.path, fsync=False)
        else:
            self.volume = LogVolume.in_memory()

    def reopen(self) -> LogVolume:
        if self.backend == "file":
            self.volume.flush()
            self.volume.close()
            self.volume = LogVolume.at_path(self.path, fsync=False)
        return self.volume

    def close(self) -> None:
        if self.backend == "file":
            self.volume.close()


# ---------------------------------------------------------------------------
# 1. Append/chop round trip, both backends
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@given(
    records=st.lists(st.binary(min_size=0, max_size=30), min_size=1, max_size=20),
    chop_at=st.integers(-1, 18),
)
@settings(max_examples=60, deadline=None)
def test_append_chop_roundtrip_survives_reopen(
    tmp_path_factory, backend, records, chop_at
):
    chop_at = min(chop_at, len(records) - 2)
    harness = _VolumeHarness(backend, tmp_path_factory)
    stream = harness.volume.stream("s")
    for record in records:
        stream.append(record)
    if chop_at >= 0:
        stream.chop(chop_at)

    rstream = harness.reopen().stream("s")
    assert rstream.next_index == len(records)
    assert rstream.chopped_below == chop_at + 1
    for i in range(chop_at + 1):
        with pytest.raises(RecordNotFoundError):
            rstream.read(i)
    for i in range(chop_at + 1, len(records)):
        assert rstream.read(i) == records[i]
    # The stream is writable again from the recovered point.
    assert rstream.append(b"post-reopen") == len(records)
    harness.close()


# ---------------------------------------------------------------------------
# 2. File backend: arbitrary torn-tail crash points
# ---------------------------------------------------------------------------
@given(
    records=st.lists(st.binary(min_size=0, max_size=30), min_size=1, max_size=20),
    cut_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_logvolume_recovers_valid_prefix_after_torn_write(
    tmp_path_factory, records, cut_fraction
):
    path = str(tmp_path_factory.mktemp("lv") / "vol.log")
    volume = LogVolume.at_path(path, fsync=False)
    stream = volume.stream("s")
    for record in records:
        stream.append(record)
    volume.flush()
    volume.close()

    import os
    size = os.path.getsize(path)
    cut = int(size * cut_fraction)
    with open(path, "r+b") as f:
        f.truncate(cut)

    recovered = LogVolume.at_path(path, fsync=False)
    rstream = recovered.stream("s")
    n = rstream.next_index
    # A valid prefix: 0 <= n <= len(records), contents intact.
    assert 0 <= n <= len(records)
    for i in range(n):
        assert rstream.read(i) == records[i]
    # The volume is writable again from the recovered point.
    assert rstream.append(b"post-crash") == n
    recovered.close()


@pytest.mark.parametrize("backend", BACKENDS)
@given(
    records=st.lists(st.binary(min_size=1, max_size=20), min_size=2, max_size=15),
    chop_at=st.integers(0, 13),
)
@settings(max_examples=60, deadline=None)
def test_logvolume_chop_never_resurrected(
    tmp_path_factory, backend, records, chop_at
):
    chop_at = min(chop_at, len(records) - 2)
    harness = _VolumeHarness(backend, tmp_path_factory)
    stream = harness.volume.stream("s")
    for record in records:
        stream.append(record)
    stream.chop(chop_at)

    rstream = harness.reopen().stream("s")
    assert rstream.chopped_below == chop_at + 1
    for i in range(chop_at + 1):
        with pytest.raises(RecordNotFoundError):
            rstream.read(i)
    for i in range(chop_at + 1, len(records)):
        assert rstream.read(i) == records[i]
    harness.close()


# ---------------------------------------------------------------------------
# 3. Knowledge accumulation: slicing/order independence
# ---------------------------------------------------------------------------
def _history(draw_data):
    """Build a ground-truth tick assignment over [1, n]."""
    kinds = draw_data
    events = {}
    s_ticks = []
    for t, is_event in enumerate(kinds, start=1):
        if is_event:
            events[t] = Event("P1", t, {"g": t % 4})
        else:
            s_ticks.append(t)
    return events, s_ticks


@given(
    kinds=st.lists(st.booleans(), min_size=1, max_size=40),
    order_seed=st.randoms(use_true_random=False),
    chunk=st.integers(1, 7),
)
@settings(max_examples=120, deadline=None)
def test_consumption_independent_of_update_slicing(kinds, order_seed, chunk):
    events, s_ticks = _history(kinds)
    n = len(kinds)

    # Reference: one update carrying everything, consumed at once.
    ref = KnowledgeStream("P1")
    ref.accumulate(KnowledgeUpdate(
        "P1",
        d_events=list(events.values()),
        s_ranges=[(t, t) for t in s_ticks],
    ))
    expected = [(r.start, r.end, r.kind, getattr(r.event, "timestamp", None))
                for r in ref.advance()]

    # Same history sliced into single-tick updates, shuffled, consumed
    # incrementally.
    pieces = []
    for t in range(1, n + 1):
        if t in events:
            pieces.append(KnowledgeUpdate("P1", d_events=[events[t]]))
        else:
            pieces.append(KnowledgeUpdate("P1", s_ranges=[(t, t)]))
    order_seed.shuffle(pieces)

    stream = KnowledgeStream("P1")
    got = []
    for i, piece in enumerate(pieces):
        stream.accumulate(piece)
        if (i + 1) % chunk == 0:
            got.extend(stream.advance())
    got.extend(stream.advance())
    flat = [(r.start, r.end, r.kind, getattr(r.event, "timestamp", None))
            for r in got]

    # Runs may be split differently across advances; compare per-tick.
    def per_tick(runs):
        out = {}
        for start, end, kind, ev_t in runs:
            for t in range(start, end + 1):
                out[t] = (kind, ev_t if kind is Tick.D else None)
        return out

    assert per_tick(flat) == per_tick(expected)
    assert stream.consumed == n
