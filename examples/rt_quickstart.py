"""Run the system for real: two OS processes, TCP, files, kill -9.

This is the rt substrate's end-to-end demonstration — the same
protocol classes the simulation runs, on real ports:

* a **broker process** (``repro.adapters.rt.broker_main``) hosting the
  PHB and SHB roles with file-backed journals and a real-fsync disk,
* **this process**, running a :class:`ReliablePublisher` and a
  :class:`DurableSubscriber` over TCP channels.

The script drives the paper's defining scenario and asserts it
programmatically:

1. the durable subscriber registers and consumes live events,
2. it disconnects; publishing continues (the PFS records its matches),
3. mid-burst, the broker is ``kill -9``'d; publishing continues into
   the dead window (the publisher queues and retransmits),
4. the broker restarts from its volumes, the publisher reattaches and
   drains its window (sequence dedup absorbs retransmissions),
5. the subscriber reconnects with its checkpoint token and catches up.

Exit code 0 means every published event was delivered **exactly once,
in order** across the disconnect and the kill — no loss, no
duplicates, no reordering.

Usage::

    PYTHONPATH=src python examples/rt_quickstart.py
"""

from __future__ import annotations

import asyncio
import os
import shutil
import signal
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.adapters.rt.clock import AsyncioClock  # noqa: E402
from repro.adapters.rt.transport import open_connection  # noqa: E402
from repro.client.publisher import ReliablePublisher  # noqa: E402
from repro.client.subscriber import DurableSubscriber  # noqa: E402
from repro.matching.predicates import Everything  # noqa: E402

HOST = "127.0.0.1"
PUBEND = "stream"
N = 40  # events per phase; 3*N total


async def start_broker(data_dir: str, port: int = 0):
    """Launch the broker process; returns (proc, bound_port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro.adapters.rt.broker_main",
        "--data-dir", data_dir, "--port", str(port), "--pubends", PUBEND,
        stdout=asyncio.subprocess.PIPE, env=env,
    )
    line = await asyncio.wait_for(proc.stdout.readline(), timeout=30)
    assert line.startswith(b"LISTENING"), f"unexpected broker banner: {line!r}"
    return proc, int(line.split()[1])


async def wait_until(cond, timeout_s: float, what: str) -> None:
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout_s
    while not cond():
        if loop.time() > deadline:
            raise TimeoutError(f"timed out waiting for: {what}")
        await asyncio.sleep(0.02)


async def main() -> int:
    data_dir = tempfile.mkdtemp(prefix="rt-quickstart-")
    clock = AsyncioClock()
    received: list = []  # attribute "n" of each delivered event, in order

    sub = DurableSubscriber(
        clock, "sub1", node=None, predicate=Everything(),
        ack_interval_ms=100.0, commit_every=1, record_events=True,
        on_event=lambda msg: received.append(msg.event.attributes["n"]),
        connect_retry_ms=200.0,
    )

    proc = None
    try:
        proc, port = await start_broker(data_dir)
        print(f"[quickstart] broker pid={proc.pid} port={port} data={data_dir}")

        # -- phase 1: live delivery -----------------------------------
        sub.connect_channel(await open_connection(HOST, port))
        await wait_until(lambda: sub._first_connect_done, 10, "subscriber registration")
        pub = ReliablePublisher(
            clock, None, None, "pub1", PUBEND,
            retransmit_ms=300.0,
            channel=await open_connection(HOST, port),
        )
        for i in range(N):
            pub.publish({"n": i, "type": "quick"})
        await wait_until(
            lambda: len(received) >= N and pub.unacknowledged == 0,
            20, f"live delivery of {N} events (got {len(received)})",
        )
        print(f"[quickstart] phase 1: {len(received)} events delivered live")

        # -- phase 2: disconnected durable subscription ---------------
        sub.disconnect()
        for i in range(N, 2 * N):
            pub.publish({"n": i, "type": "quick"})
        await wait_until(
            lambda: pub.unacknowledged == 0,
            20, "acks for the disconnected-phase burst",
        )
        print("[quickstart] phase 2: published while subscriber away, all acked")

        # -- phase 3: kill -9 mid-burst -------------------------------
        for i in range(2 * N, 5 * N // 2):
            pub.publish({"n": i, "type": "quick"})  # in flight, not awaited
        proc.send_signal(signal.SIGKILL)
        await proc.wait()
        print(f"[quickstart] phase 3: kill -9 with {pub.unacknowledged} unacked")
        for i in range(5 * N // 2, 3 * N):
            pub.publish({"n": i, "type": "quick"})  # into the dead window

        proc, port = await start_broker(data_dir, port=port)
        print(f"[quickstart] broker restarted pid={proc.pid} port={port}")
        pub.rebind(
            await open_connection(HOST, port, retry_ms=100.0, timeout_ms=20_000.0)
        )
        await wait_until(
            lambda: pub.unacknowledged == 0,
            30, f"post-restart publish drain ({pub.unacknowledged} left)",
        )
        print("[quickstart] phase 3: publisher window drained after restart")

        # -- phase 4: reconnect + catchup -----------------------------
        sub.connect_channel(await open_connection(HOST, port))
        await wait_until(
            lambda: len(received) >= 3 * N,
            60, f"catchup to {3 * N} events (got {len(received)})",
        )
        # Give any stray duplicate a moment to arrive before asserting.
        await asyncio.sleep(1.0)
        sub.disconnect()
        pub.close()

        # -- exactly-once assertions ----------------------------------
        expected = list(range(3 * N))
        assert received == expected, (
            f"delivery mismatch: got {len(received)} events, "
            f"first divergence at "
            f"{next((i for i, (a, b) in enumerate(zip(received, expected)) if a != b), len(expected))}"
        )
        assert sub.duplicate_events == 0, f"{sub.duplicate_events} duplicate events"
        assert sub.stats.order_violations == 0, (
            f"{sub.stats.order_violations} order violations"
        )
        print(
            f"[quickstart] PASS: {len(received)} events delivered exactly once, "
            f"in order, across disconnect + kill -9"
        )
        return 0
    finally:
        if proc is not None and proc.returncode is None:
            proc.send_signal(signal.SIGKILL)
            await proc.wait()
        shutil.rmtree(data_dir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
