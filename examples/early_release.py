#!/usr/bin/env python3
"""Early release: bounding storage despite misbehaving subscribers.

Section 3's PHB-controlled policy: each pubend has a maximum retention
time after which it discards an event even if some disconnected durable
subscriber has not received it.  A reconnecting subscriber that fell
behind the retention window receives explicit **gap messages** instead
of the lost events — never silent loss.

The example contrasts:

* without early release — the PHB log grows without bound while a
  subscriber stays away,
* with ``MaxRetainPolicy(3s)`` — the log stays bounded, the
  well-behaved subscriber is unaffected, and the returning laggard gets
  gap notifications covering exactly the released region.

Run:  python examples/early_release.py
"""

from repro import (
    DurableSubscriber,
    Everything,
    MaxRetainPolicy,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)


def run(policy, label):
    sim = Scheduler()
    # Bound the SHB's in-memory event cache to the same horizon as the
    # PHB's retention: a bigger cache would happily (and correctly)
    # bridge the laggard over the released region without gaps.
    overlay = build_two_broker(sim, ["P1"], policy=policy,
                               event_cache_span_ms=3_000)
    shb = overlay.shbs[0]
    machine = Node(sim, "clients")

    good = DurableSubscriber(sim, "well-behaved", machine, Everything(),
                             record_events=True)
    lazy = DurableSubscriber(sim, "laggard", machine, Everything(),
                             record_events=True)
    good.connect(shb)
    lazy.connect(shb)

    publisher = PeriodicPublisher(sim, overlay.phb, "P1", rate_per_s=100,
                                  attribute_fn=lambda i: {"group": i % 4})
    publisher.start()

    sim.run_until(2_000)
    lazy.disconnect()             # ...and stays away for 15 seconds
    sim.run_until(17_000)

    log = overlay.phb.pubends["P1"].log
    print(f"--- {label}")
    print(f"  [t=17s] PHB log while laggard is away: {log.live_event_count} "
          f"events retained (published so far: {publisher.published})")

    lazy.connect(shb)
    # Catchup is flow-controlled (~1.9x the subscription's rate), so
    # recovering 15s of history takes ~15s of its own.
    sim.run_until(40_000)
    publisher.stop()
    sim.run_until(45_000)

    print(f"  well-behaved: {good.stats.events} events, {good.stats.gaps} gaps")
    print(f"  laggard:      {lazy.stats.events} events, {lazy.stats.gaps} gaps")
    if lazy.stats.gap_ranges:
        pubend, start, end = lazy.stats.gap_ranges[0]
        print(f"  laggard's first gap: ticks [{start}, {end}] of {pubend} "
              f"({(end - start) / 1000:.1f}s of released history)")
    assert good.stats.gaps == 0
    assert good.stats.events == publisher.published
    return overlay, lazy, publisher


def main() -> None:
    print("Durable subscriptions with a misbehaving (long-disconnected) "
          "subscriber\n")

    # 1. No early release: correctness for everyone, unbounded storage.
    overlay, lazy, publisher = run(None, "no early release")
    assert lazy.stats.gaps == 0
    assert lazy.stats.events == publisher.published
    print("  -> laggard recovered everything, but the log had to retain "
          "15s of history\n")

    # 2. maxRetain = 3s: bounded storage, explicit gaps for the laggard.
    overlay, lazy, publisher = run(MaxRetainPolicy(3_000), "maxRetain = 3s")
    assert lazy.stats.gaps > 0
    assert overlay.phb.pubends["P1"].lost_below > 0
    delivered = {int(e.split(":")[1]) for e in lazy.received_event_ids}
    in_gaps = sum(
        1 for _p, a, b in lazy.stats.gap_ranges for _t in (1,)
    )
    print("  -> storage stayed bounded; the laggard was told exactly what "
          "it lost via gap messages ✓")


if __name__ == "__main__":
    main()
