#!/usr/bin/env python3
"""Reliable publishing and event expiration.

Two features around the edges of the durable-subscription core:

1. **Exactly-once publishing** — the guarantee on the *producer* side
   (from the authors' DSN'02 paper, which this system builds on).  A
   :class:`~repro.client.publisher.ReliablePublisher` numbers its
   events, the PHB acknowledges them only once durably logged and
   deduplicates retransmissions (go-back-N), so crashing the PHB in the
   middle of a burst loses nothing and duplicates nothing.

2. **Event expiration (TTL)** — the JMS model the paper contrasts with
   administrative early release: a publisher may stamp an event with a
   time-to-live after which it is delivered to nobody, even to a
   catchup stream recovering history.

Run:  python examples/reliable_publishing.py
"""

from repro import DurableSubscriber, Everything, Node, Scheduler, build_two_broker
from repro.client.publisher import ReliablePublisher


def main() -> None:
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    shb = overlay.shbs[0]

    consumer = DurableSubscriber(sim, "consumer", Node(sim, "consumer-host"),
                                 Everything(), record_events=True)
    consumer.connect(shb)

    producer = ReliablePublisher(
        sim, overlay.phb, Node(sim, "producer-host"), "producer-1", "P1",
        window=32, retransmit_ms=400,
    )

    # --- exactly-once across a PHB crash -----------------------------
    for i in range(50):
        producer.publish({"order": i})
    sim.run_until(4)                      # requests land, log sync pending
    overlay.phb.crash()                   # staged events die with the broker
    print("[t=4ms] PHB crashed mid-burst "
          f"({producer.unacknowledged} events unacknowledged)")
    sim.run_until(1_000)
    overlay.phb.recover()
    for i in range(50, 100):
        producer.publish({"order": i})
    sim.run_until(10_000)

    print(f"[t=10s] published={producer.published} "
          f"retransmissions={producer.retransmissions} "
          f"duplicates rejected by PHB={overlay.phb.duplicates_rejected}")
    print(f"        consumer received {consumer.stats.events} events, "
          f"{consumer.duplicate_events} duplicates")
    assert producer.unacknowledged == 0
    assert consumer.stats.events == 100
    assert consumer.duplicate_events == 0

    # --- TTL expiration ----------------------------------------------
    # The consumer goes away; a short-lived alert expires while it is
    # gone, a durable fact does not.
    consumer.disconnect()
    sim.run_until(10_100)
    producer.publish({"kind": "alert", "note": "transient"}, ttl_ms=1_000)
    producer.publish({"kind": "fact", "note": "permanent"})
    sim.run_until(14_000)                 # alert TTL lapses
    consumer.connect(shb)
    sim.run_until(18_000)

    got = consumer.stats.events - 100
    print(f"\n[t=18s] after reconnect the consumer received {got} of the 2 "
          "events published while away")
    print("        (the 1s-TTL alert expired; the fact was recovered)")
    assert got == 1
    assert consumer.stats.order_violations == 0
    print("\nexactly-once publishing and TTL expiration verified ✓")


if __name__ == "__main__":
    main()
