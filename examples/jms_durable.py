#!/usr/bin/env python3
"""JMS durable subscriptions on top of the native model (Section 5.2).

For JMS clients the SHB stores the Checkpoint Token and updates it
transactionally as the client commits consumption.  This example shows
the three interesting acknowledgment modes and the batched commit
engine (4 connections, requests hashed by subscriber id):

* AUTO_ACKNOWLEDGE — commit per consumed event ("the most severe"),
* DUPS_OK_ACKNOWLEDGE — lazy batched commits,
* SESSION_TRANSACTED — application-controlled transactions,

and demonstrates crash recovery: a JMS client that loses all local
state recovers its position from the SHB-stored CT.

Run:  python examples/jms_durable.py
"""

from repro import Everything, Node, PeriodicPublisher, Scheduler, build_two_broker
from repro.jms.ctstore import CheckpointCommitService
from repro.jms.session import (
    AUTO_ACKNOWLEDGE,
    DUPS_OK_ACKNOWLEDGE,
    SESSION_TRANSACTED,
    JMSDurableSubscriber,
)


def main() -> None:
    sim = Scheduler()
    overlay = build_two_broker(sim, ["P1"])
    shb = overlay.shbs[0]

    # The SHB-side commit engine: 4 connections, batched transactions.
    service = CheckpointCommitService(shb, n_connections=4)

    machine = Node(sim, "jms-clients")
    auto = JMSDurableSubscriber(sim, "auto", machine, Everything(),
                                ack_mode=AUTO_ACKNOWLEDGE)
    dups_ok = JMSDurableSubscriber(sim, "dups-ok", machine, Everything(),
                                   ack_mode=DUPS_OK_ACKNOWLEDGE, dups_ok_batch=25)
    txn = JMSDurableSubscriber(sim, "txn", machine, Everything(),
                               ack_mode=SESSION_TRANSACTED)
    for sub in (auto, dups_ok, txn):
        sub.connect(shb)

    publisher = PeriodicPublisher(sim, overlay.phb, "P1", rate_per_s=100,
                                  attribute_fn=lambda i: {"group": i % 4})
    publisher.start()

    # Commit the transacted session every simulated second.
    sim.every(1_000, txn.commit_transaction)

    sim.run_until(10_000)
    print(f"[t=10s] published {publisher.published}")
    for sub in (auto, dups_ok, txn):
        print(f"  {sub.sub_id:8s} consumed={sub.events_consumed:5d} "
              f"commits={sub.commits_completed:5d}")
    print(f"  commit engine: {service.commits} transactions, "
          f"{service.updates_committed} CT updates "
          f"({service.updates_coalesced} coalesced)")

    # --- JMS client crash: local state gone, CT recovered from SHB ---
    auto.crash()
    print("\n[t=10s] 'auto' crashed, losing all local state")
    sim.run_until(13_000)
    auto.connect(shb)
    auto.lookup_ct()           # recover the committed CT from the SHB
    sim.run_until(20_000)
    publisher.stop()
    sim.run_until(22_000)

    print(f"\n[t=22s] final (published {publisher.published}):")
    for sub in (auto, dups_ok, txn):
        print(f"  {sub.sub_id:8s} consumed={sub.events_consumed:5d} "
              f"violations={sub.stats.order_violations}")

    # Auto-ack commits per event, so the crash re-delivered at most the
    # few events consumed-but-not-yet-committed.
    assert auto.events_consumed >= publisher.published
    assert auto.events_consumed - publisher.published <= 3
    assert dups_ok.events_consumed == publisher.published
    print("\nJMS sessions recovered with at-least-once bounded by one "
          "uncommitted window; auto-ack window is a single event ✓")


if __name__ == "__main__":
    main()
