#!/usr/bin/env python3
"""Quickstart: durable subscriptions with exactly-once delivery.

Builds the paper's 2-broker network (publisher hosting broker +
subscriber hosting broker), connects a durable subscriber, publishes
events, disconnects the subscriber for a while, reconnects — and shows
that every matching event is delivered exactly once, in order, with the
missed interval recovered through the Persistent Filtering Subsystem.

Run:  python examples/quickstart.py
"""

from repro import (
    DurableSubscriber,
    In,
    Node,
    PeriodicPublisher,
    Scheduler,
    build_two_broker,
)


def main() -> None:
    # Everything runs on a deterministic simulated clock (milliseconds).
    sim = Scheduler()

    # The paper's 2-broker topology: PHB --link--> SHB.
    overlay = build_two_broker(sim, pubends=["P1"])
    shb = overlay.shbs[0]

    # A durable subscriber interested in half of the traffic.
    machine = Node(sim, "client-machine")
    sub = DurableSubscriber(
        sim, "quickstart-sub", machine,
        predicate=In("group", [0, 1]),   # matches groups 0 and 1 of 0..3
        record_events=True,
    )
    sub.connect(shb)

    # A publisher pushing 100 events/s, cycling over four groups.
    publisher = PeriodicPublisher(
        sim, overlay.phb, "P1", rate_per_s=100,
        attribute_fn=lambda i: {"group": i % 4},
    )
    publisher.start()

    # --- phase 1: steady state -------------------------------------
    sim.run_until(5_000)
    print(f"[t={sim.now / 1000:.0f}s] connected: received "
          f"{sub.stats.events} events (published {publisher.published})")

    # --- phase 2: disconnect for 3 seconds --------------------------
    sub.disconnect()
    sim.run_until(8_000)
    missed_window = publisher.published
    print(f"[t={sim.now / 1000:.0f}s] disconnected during "
          f"{missed_window - sub.stats.events * 2} publishes")

    # --- phase 3: reconnect and catch up -----------------------------
    # The subscriber presents its Checkpoint Token; the SHB builds a
    # catchup stream, reads the PFS for the missed Q ticks, nacks the
    # events from the PHB's log, and finally switches the subscriber
    # back to the consolidated stream.
    sub.connect(shb)
    sim.run_until(15_000)
    publisher.stop()
    sim.run_until(16_000)

    expected = publisher.published // 2   # half the groups match
    print(f"[t={sim.now / 1000:.0f}s] final: received {sub.stats.events} "
          f"of {expected} matching events")
    print(f"  duplicates:       {sub.duplicate_events}")
    print(f"  order violations: {sub.stats.order_violations}")
    print(f"  gap messages:     {sub.stats.gaps}")
    print(f"  catchup runs:     {len(shb.catchup_durations_ms)} "
          f"({[f'{d:.0f}ms' for _t, d in shb.catchup_durations_ms]})")

    assert sub.stats.events == expected
    assert sub.duplicate_events == 0
    assert sub.stats.order_violations == 0
    print("\nexactly-once delivery verified ✓")


if __name__ == "__main__":
    main()
