#!/usr/bin/env python3
"""SHB crash and recovery: the Section 5.3 scenario as a narrative.

Fails the subscriber hosting broker for 25 seconds with 40 connected
durable subscribers (8 per client machine).  After recovery the broker
resumes from its *committed* latestDelivered, nacks everything it
missed (the steep slope of Figure 7), and once it has caught up all 40
subscribers reconnect simultaneously and run their catchup streams in
parallel — served by PFS batch reads and consolidated nacks.

Run:  python examples/shb_failure_recovery.py
"""

from repro.sim.experiments import run_shb_failure


def main() -> None:
    print("Running the 2-broker SHB failure experiment "
          "(40 subscribers, 25s outage)...\n")
    result = run_shb_failure(
        crash_at_ms=15_000.0,
        down_ms=25_000.0,
        n_subs=40,
        subs_per_machine=8,
        total_ms=150_000.0,
    )

    print("latestDelivered(P1) timeline (Figure 7, top):")
    for t, v in result.latest_delivered.points[::10]:
        bar = "#" * int(v / 4_000)
        print(f"  t={t / 1000:5.0f}s  {v:8.0f}  {bar}")

    print(f"\nnormal slope:   {result.normal_slope:7.0f} tick-ms/s")
    print(f"recovery slope: {result.recovery_slope:7.0f} tick-ms/s "
          f"({result.recovery_slope / result.normal_slope:.1f}x normal — "
          "the constream nacking what it missed)")

    durations = result.catchup_durations_ms
    print(f"\ncatchup: {len(durations)} streams completed, mean "
          f"{sum(durations) / len(durations) / 1000:.1f}s "
          f"(all {len(result.disconnected_ms)} subscribers were down "
          f"{result.disconnected_ms[0] / 1000:.1f}s)")

    print(f"PFS batch reads reaching lastTimestamp: "
          f"{result.pfs_reads_reaching_last_fraction:.0%} (paper: 87%)")

    pre = result.phb_idle.between(5_000, 14_000).mean()
    during = result.phb_idle.between(42_000, 60_000).mean()
    print(f"\nPHB CPU idle: {pre:.0%} before crash, {during:.0%} during "
          "mass catchup — nack consolidation keeps the PHB almost unaffected")

    shb_pre = result.shb_idle.between(5_000, 14_000).mean()
    shb_during = result.shb_idle.between(42_000, 60_000).mean()
    print(f"SHB CPU idle: {shb_pre:.0%} before, {shb_during:.0%} during "
          "catchup — the cost is localized to the SHB")

    print(f"\nexactly-once verified across the failure: "
          f"{'yes ✓' if result.exactly_once_ok else 'NO ✗'}")
    assert result.exactly_once_ok


if __name__ == "__main__":
    main()
