#!/usr/bin/env python3
"""Stock trading: the paper's motivating scenario.

From the introduction: *"An example of usage of durable subscriptions
is stock trading applications, where all orders to trade must arrive
reliably at the application processes that will execute the trades, and
also be recorded reliably by data backup applications, at multiple
locations, for disaster recovery."*

This example builds a tree overlay (PHB → 2 intermediates → 4 SHBs),
publishes trade orders on topics like ``orders.nyse.IBM`` with
content attributes (symbol, side, quantity, price), and attaches:

* an **execution engine** per exchange (topic subscription), which must
  see every order exactly once — a duplicate would double-execute,
* two **disaster-recovery recorders** at different SHBs subscribing to
  everything (``orders.#``),
* a **risk monitor** using a content predicate (large orders only).

One DR site goes offline for a stretch and recovers every missed order
on reconnect.  An execution engine survives an SHB crash.

Run:  python examples/stock_trading.py
"""

import itertools
import random

from repro import (
    DurableSubscriber,
    Ge,
    Node,
    PeriodicPublisher,
    Scheduler,
    Topic,
    build_tree,
)

SYMBOLS = ["IBM", "MSFT", "ORCL", "SUNW"]
EXCHANGES = ["nyse", "nasdaq"]


def order_attributes(rng):
    """Generate one trade order's attributes."""
    counter = itertools.count()

    def make(i):
        symbol = SYMBOLS[i % len(SYMBOLS)]
        exchange = EXCHANGES[(i // 2) % len(EXCHANGES)]
        return {
            "topic": f"orders.{exchange}.{symbol}",
            "symbol": symbol,
            "side": "buy" if rng.random() < 0.5 else "sell",
            "quantity": rng.choice([100, 500, 1_000, 10_000]),
            "order_id": next(counter),
        }

    return make


def main() -> None:
    rng = random.Random(7)
    sim = Scheduler()

    # PHB at the exchange gateway; 2 intermediates fan out to 4 SHBs.
    overlay = build_tree(sim, pubends=["orders"], fanout=[2, 2])
    shb_exec_nyse, shb_exec_nasdaq, shb_dr_east, shb_dr_west = overlay.shbs

    def subscriber(name, shb, predicate):
        machine = Node(sim, f"{name}-host")
        sub = DurableSubscriber(sim, name, machine, predicate, record_events=True)
        sub.connect(shb)
        return sub

    nyse_engine = subscriber("exec-nyse", shb_exec_nyse, Topic("orders.nyse.#"))
    nasdaq_engine = subscriber("exec-nasdaq", shb_exec_nasdaq, Topic("orders.nasdaq.#"))
    dr_east = subscriber("dr-east", shb_dr_east, Topic("orders.#"))
    dr_west = subscriber("dr-west", shb_dr_west, Topic("orders.#"))
    risk = subscriber("risk-monitor", shb_exec_nyse, Ge("quantity", 10_000))

    publisher = PeriodicPublisher(
        sim, overlay.phb, "orders", rate_per_s=200,
        attribute_fn=order_attributes(rng),
    )
    publisher.start()

    # Steady trading...
    sim.run_until(5_000)
    print(f"[t=5s] orders published: {publisher.published}")
    print(f"       nyse engine:   {nyse_engine.stats.events}")
    print(f"       nasdaq engine: {nasdaq_engine.stats.events}")
    print(f"       dr-east:       {dr_east.stats.events}")

    # The west DR site loses connectivity for 10 seconds.
    dr_west.disconnect()
    print("[t=5s] dr-west disconnected")
    sim.run_until(15_000)

    # Meanwhile, the SHB hosting the nasdaq execution engine crashes.
    shb_exec_nasdaq.fail_for(3_000)
    print("[t=15s] SHB hosting exec-nasdaq crashed (3s outage)")
    sim.run_until(19_000)
    if not nasdaq_engine.connected:
        nasdaq_engine.connect(shb_exec_nasdaq)

    # West DR reconnects and catches up on everything it missed.
    dr_west.connect(shb_dr_west)
    print("[t=19s] dr-west reconnected; catching up")

    sim.run_until(30_000)
    publisher.stop()
    sim.run_until(35_000)

    total = publisher.published
    print(f"\n[t=35s] final — {total} orders published")
    for sub in (nyse_engine, nasdaq_engine, dr_east, dr_west, risk):
        print(f"  {sub.sub_id:14s} events={sub.stats.events:6d} "
              f"dups={sub.duplicate_events} viol={sub.stats.order_violations} "
              f"gaps={sub.stats.gaps}")

    # Every order executed exactly once at exactly one engine.
    assert nyse_engine.stats.events + nasdaq_engine.stats.events == total
    # Both DR sites hold the complete order history.
    assert dr_east.stats.events == total
    assert dr_west.stats.events == total
    for sub in (nyse_engine, nasdaq_engine, dr_east, dr_west, risk):
        assert sub.duplicate_events == 0
        assert sub.stats.order_violations == 0
        assert sub.stats.gaps == 0
    print("\nall orders executed once and recorded at both DR sites ✓")


if __name__ == "__main__":
    main()
