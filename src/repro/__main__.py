"""Command-line experiment runner: ``python -m repro <experiment>``.

A thin front-end over :mod:`repro.sim.experiments` for exploring the
reproduction without writing code::

    python -m repro latency
    python -m repro scalability --shbs 4 --subs 100 --churn
    python -m repro stream-rates --gc
    python -m repro failure
    python -m repro jms --subs 200 --input-rate 200

Every command prints the same metrics the corresponding benchmark
asserts on (see ``benchmarks/`` and DESIGN.md §3).
"""

from __future__ import annotations

import argparse
import sys

from .metrics.report import format_table, percentile
from .sim.experiments import (
    run_jms_autoack,
    run_latency,
    run_scalability,
    run_shb_failure,
    run_stream_rates,
)


def _cmd_latency(args: argparse.Namespace) -> None:
    result = run_latency(
        n_intermediates=args.hops - 2,
        rate_per_s=args.rate,
        duration_ms=args.duration * 1000.0,
    )
    print(format_table(
        f"End-to-end latency over {result.hops} hops",
        ["metric", "value"],
        [
            ["mean (ms)", f"{result.mean_ms:.1f}"],
            ["p50 (ms)", f"{result.p50_ms:.1f}"],
            ["p99 (ms)", f"{result.p99_ms:.1f}"],
            ["PHB logging (ms)", f"{result.logging_mean_ms:.1f}"],
            ["samples", result.samples],
        ],
    ))


def _cmd_scalability(args: argparse.Namespace) -> None:
    result = run_scalability(
        n_shbs=args.shbs,
        subs_per_shb=args.subs,
        churn=args.churn,
        duration_ms=args.duration * 1000.0,
        single_broker=args.single_broker,
    )
    print(format_table(
        f"Scalability: {args.shbs} SHB(s), {result.subscribers} subscribers"
        + (" with churn" if args.churn else ""),
        ["metric", "value"],
        [
            ["offered rate (ev/s)", f"{result.offered_rate:,.0f}"],
            ["achieved rate (ev/s)", f"{result.achieved_rate:,.0f}"],
            ["efficiency", f"{result.efficiency:.1%}"],
            ["PHB CPU idle", f"{result.phb_idle:.0%}"],
            ["SHB CPU idle (mean)", f"{result.shb_idle_mean:.0%}"],
            ["disconnects", result.disconnects],
            ["catchups completed", result.catchup_count],
        ],
    ))


def _cmd_stream_rates(args: argparse.Namespace) -> None:
    result = run_stream_rates(
        duration_ms=args.duration * 1000.0,
        subs=args.subs,
        gc_pause_ms=100.0 if args.gc else 0.0,
    )
    ld = result.latest_delivered_rate.values()[3:]
    rel = result.released_rate.values()[3:]
    durations = result.catchup_durations_ms
    print(format_table(
        "Stream advance rates (tick-ms per second)",
        ["metric", "value"],
        [
            ["latestDelivered mean", f"{sum(ld) / len(ld):.0f}"],
            ["latestDelivered min", f"{min(ld):.0f}"],
            ["released mean", f"{sum(rel) / len(rel):.0f}"],
            ["released min", f"{min(rel):.0f}"],
            ["released max", f"{max(rel):.0f}"],
            ["catchups", len(durations)],
            ["catchup mean (ms)",
             f"{sum(durations) / len(durations):.0f}" if durations else "-"],
        ],
    ))


def _cmd_failure(args: argparse.Namespace) -> None:
    result = run_shb_failure(
        crash_at_ms=args.crash_at * 1000.0,
        down_ms=args.down * 1000.0,
        n_subs=args.subs,
        total_ms=args.duration * 1000.0,
    )
    durations = result.catchup_durations_ms
    print(format_table(
        f"SHB failure: {args.down}s outage, {args.subs} subscribers",
        ["metric", "value"],
        [
            ["exactly-once", result.exactly_once_ok],
            ["normal LD slope (tick-ms/s)", f"{result.normal_slope:.0f}"],
            ["recovery LD slope", f"{result.recovery_slope:.0f}"],
            ["catchups completed", len(durations)],
            ["catchup mean (s)",
             f"{sum(durations) / len(durations) / 1000:.1f}" if durations else "-"],
            ["catchup p90 (s)",
             f"{percentile(durations, 90) / 1000:.1f}" if durations else "-"],
            ["PFS reads reaching lastTimestamp",
             f"{result.pfs_reads_reaching_last_fraction:.0%}"],
        ],
    ))


def _cmd_jms(args: argparse.Namespace) -> None:
    result = run_jms_autoack(
        args.subs, input_rate=args.input_rate, duration_ms=args.duration * 1000.0
    )
    print(format_table(
        f"JMS auto-acknowledge: {args.subs} subscribers",
        ["metric", "value"],
        [
            ["offered rate (ev/s)", f"{result.offered_rate:,.0f}"],
            ["consumed rate (ev/s)", f"{result.consumed_rate:,.0f}"],
            ["commit transactions/s", f"{result.commits_per_s:,.0f}"],
            ["coalesced update fraction", f"{result.coalesced_fraction:.1%}"],
        ],
    ))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper's experiments from the command line.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("latency", help="5-hop end-to-end latency (result R1)")
    p.add_argument("--hops", type=int, default=5)
    p.add_argument("--rate", type=float, default=50.0)
    p.add_argument("--duration", type=float, default=20.0, help="seconds")
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("scalability", help="Figure 4 peak-rate measurement")
    p.add_argument("--shbs", type=int, default=1)
    p.add_argument("--subs", type=int, default=100, help="per SHB")
    p.add_argument("--churn", action="store_true")
    p.add_argument("--single-broker", action="store_true")
    p.add_argument("--duration", type=float, default=15.0, help="seconds")
    p.set_defaults(fn=_cmd_scalability)

    p = sub.add_parser("stream-rates", help="Figure 5/6 catchup + rates")
    p.add_argument("--subs", type=int, default=40)
    p.add_argument("--gc", action="store_true", help="inject GC-style stalls")
    p.add_argument("--duration", type=float, default=60.0, help="seconds")
    p.set_defaults(fn=_cmd_stream_rates)

    p = sub.add_parser("failure", help="Figure 7/8 SHB crash and recovery")
    p.add_argument("--subs", type=int, default=40)
    p.add_argument("--crash-at", type=float, default=15.0, help="seconds")
    p.add_argument("--down", type=float, default=25.0, help="seconds")
    p.add_argument("--duration", type=float, default=260.0, help="seconds")
    p.set_defaults(fn=_cmd_failure)

    p = sub.add_parser("jms", help="Section 5.2 JMS auto-ack throughput")
    p.add_argument("--subs", type=int, default=25)
    p.add_argument("--input-rate", type=float, default=800.0)
    p.add_argument("--duration", type=float, default=15.0, help="seconds")
    p.set_defaults(fn=_cmd_jms)

    args = parser.parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
