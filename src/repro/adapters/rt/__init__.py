"""Real-time asyncio adapters for the substrate ports.

The same protocol classes that run on the discrete-event simulation run
here against wall-clock time, localhost TCP and real fsyncs:

* :class:`~repro.adapters.rt.clock.AsyncioClock` — the Clock port on an
  asyncio event loop (epoch milliseconds, so event timestamps stay
  monotone across broker restarts),
* :class:`~repro.adapters.rt.transport.TcpConnection` /
  :class:`~repro.adapters.rt.transport.TcpListener` — length-prefixed,
  CRC-checked frames over asyncio streams,
* :class:`~repro.adapters.rt.storage.RealDisk` — group-commit
  StableStorage flushing file-backed log volumes with real ``fsync``.

``broker_main`` hosts a single-broker (PHB+SHB) process over TCP; see
``examples/rt_quickstart.py`` for the kill-9-and-catch-up demo.
"""
