"""The StableStorage port over real files.

:class:`RealDisk` implements the group-commit write/sync-callback
contract (see :mod:`repro.port.storage`) against file-backed
:class:`~repro.storage.logvolume.LogVolume`\\ s:

* writers stage their content first (journal/log appends land in the
  volumes' buffered files), then call :meth:`write`,
* a pending sync is armed on the Clock (``sync_interval_ms`` batches
  neighbouring writes into one fsync — the same group commit the paper
  measured at 19.5 ms on its SSA disks),
* the sync ``flush()``\\ es every attached volume (``flush + fsync``,
  see :class:`~repro.storage.logvolume.FileBackend`), then fires the
  staged callbacks **in write order**.

Because the fsync happens before any callback, everything a callback
acks is on the platter; because a ``kill -9`` between staging and sync
kills the callbacks with the process, nothing un-synced is ever acked.
Recovery is reopening the volume files: ``FileBackend`` truncates any
torn tail, and whatever survives is exactly the acked prefix (plus
possibly some un-acked records, which the protocol's idempotent
replays skip-ack).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ...storage.logvolume import LogVolume


class RealDisk:
    """Group-commit stable storage flushing real file-backed volumes."""

    def __init__(self, clock, sync_interval_ms: float = 5.0) -> None:
        self._clock = clock
        self.sync_interval_ms = sync_interval_ms
        self.owner: Optional[str] = None
        self._volumes: List[LogVolume] = []
        self._staged: List[Optional[Callable[[], None]]] = []
        self._sync_armed = False
        self.writes = 0
        self.bytes_written = 0
        self.syncs = 0

    def attach_volume(self, volume: LogVolume) -> None:
        """Cover ``volume``'s appends with this disk's sync cycle."""
        if volume not in self._volumes:
            self._volumes.append(volume)

    # -- StableStorage contract ----------------------------------------
    def write(self, nbytes: int, on_durable: Optional[Callable[[], None]] = None) -> None:
        self.writes += 1
        self.bytes_written += nbytes
        if on_durable is not None:
            self._staged.append(on_durable)
        if not self._sync_armed:
            self._sync_armed = True
            self._clock.after(self.sync_interval_ms, self._sync)

    def _sync(self) -> None:
        self._sync_armed = False
        callbacks, self._staged = self._staged, []
        for volume in self._volumes:
            volume.flush()
        self.syncs += 1
        for cb in callbacks:
            if cb is not None:
                cb()

    def crash_reset(self) -> None:
        """No-op: a real crash is process death (see module docstring)."""

    def flush_now(self) -> None:
        """Synchronous fsync + callback drain (shutdown path)."""
        self._sync()

    def close(self) -> None:
        self._sync()
        for volume in self._volumes:
            volume.close()
