"""The Clock port on an asyncio event loop.

``now`` is **epoch milliseconds** (``time.time()`` anchored to the
loop's monotonic clock at construction).  The protocol assigns event
timestamps and epochs from ``int(clock.now)``; anchoring to the Unix
epoch keeps those monotone across broker *restarts* — a recovered
pubend's ``max(max_logged, now)`` lands above everything its previous
life assigned, exactly as the ever-advancing virtual clock guarantees
in the simulation.

Semantic deltas from the sim :class:`~repro.net.simtime.Scheduler`,
allowed by the port contract:

* ``at``/``post`` with a past deadline fire as soon as possible instead
  of raising — wall time races make "the past" unavoidable.
* A periodic callback that raises with no ``on_error`` hook still kills
  the periodic (marked ``dead``), but the exception lands in the
  loop's exception handler rather than a ``run()`` caller.
"""

from __future__ import annotations

import asyncio
import math
import time
from typing import Any, Callable, Dict, Optional

from ...net.simtime import PeriodicHandle


class _RtHandle:
    """EventHandle-compatible wrapper over an asyncio TimerHandle."""

    __slots__ = ("_handle", "cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True
        self._handle.cancel()


class AsyncioClock:
    """Wall-clock Clock adapter (epoch milliseconds) on an event loop."""

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._offset_ms = time.time() * 1000.0 - self._loop.time() * 1000.0
        self._tie_when: Dict[float, float] = {}

    @property
    def now(self) -> float:
        """Current wall-clock time in epoch milliseconds."""
        return self._loop.time() * 1000.0 + self._offset_ms

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _schedule(self, when_s: float, fn: Callable[..., None], args: tuple) -> asyncio.TimerHandle:
        # The port promises same-deadline callbacks fire in scheduling
        # order.  asyncio's timer heap is NOT FIFO-stable for equal
        # deadlines (TimerHandle.__lt__ compares only ``_when``), so we
        # make equality impossible instead: a repeat of a pending
        # deadline is nudged one float ulp past the previous occurrence.
        # The nudge is ~1e-10 s — far below the loop's firing jitter.
        prev = self._tie_when.get(when_s)
        eff = when_s if prev is None else math.nextafter(prev, math.inf)
        if len(self._tie_when) > 128:
            now_s = self._loop.time()
            self._tie_when = {k: v for k, v in self._tie_when.items() if k > now_s}
        self._tie_when[when_s] = eff
        return self._loop.call_at(eff, fn, *args)

    def _when(self, time_ms: float) -> float:
        # Convert the absolute deadline with the same float expression
        # every time, so equal ``time_ms`` values reach ``_schedule``
        # as bit-identical deadlines and the tie nudge can order them.
        # (Routing through a relative delay would re-read the clock and
        # let rounding reorder the tie before we ever saw it.)
        return max((time_ms - self._offset_ms) / 1000.0, self._loop.time())

    def at(self, time_ms: float, fn: Callable[..., None], *args: Any) -> _RtHandle:
        return _RtHandle(self._schedule(self._when(time_ms), fn, args))

    def after(self, delay: float, fn: Callable[..., None], *args: Any) -> _RtHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return _RtHandle(self._schedule(self._loop.time() + delay / 1000.0, fn, args))

    def post(self, time_ms: float, fn: Callable[..., None], *args: Any) -> None:
        self._schedule(self._when(time_ms), fn, args)

    def every(
        self,
        interval: float,
        fn: Callable[..., None],
        *args: Any,
        first_delay: Optional[float] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> PeriodicHandle:
        """Grid-anchored periodic, mirroring ``Scheduler.every``.

        Targets are ``anchor + n*interval`` computed by one multiply-add
        each — no cumulative drift.  A real-time callback can overrun
        its interval; overrun grid points are skipped (no catch-up
        burst), matching the sim kernel's nested-run guard.
        """
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        periodic = PeriodicHandle()
        delay = interval if first_delay is None else first_delay
        anchor = self.now + delay
        count = 0

        def tick() -> None:
            nonlocal count
            if periodic.cancelled:
                return
            try:
                fn(*args)
            except Exception as exc:
                if on_error is None:
                    periodic.dead = True
                    periodic._current = None
                    raise
                on_error(exc)
            if not periodic.cancelled:
                count += 1
                target = anchor + count * interval
                if target < self.now:
                    count = int((self.now - anchor) // interval) + 1
                    target = max(anchor + count * interval, self.now)
                periodic._current = self.at(target, tick)

        periodic._current = self.at(anchor, tick)
        return periodic
