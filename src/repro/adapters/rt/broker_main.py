"""Run the broker (PHB + SHB roles) as a real OS process.

This is the rt substrate's analogue of the simulator's single-broker
topology: one process hosts a :class:`PublisherHostingBroker` and a
:class:`SubscriberHostingBroker` sharing a :class:`Node` on an
:class:`~repro.adapters.rt.clock.AsyncioClock`, joined by an in-process
loopback link.  The *protocol* classes are the exact ones the
simulation runs — only the three ports differ:

* **Clock** — the asyncio event loop (epoch milliseconds, so event
  timestamps and release epochs stay monotone across restarts),
* **Transport** — TCP on localhost; each accepted connection's first
  message routes it (``PublishRequest`` → PHB, anything else → SHB),
* **StableStorage** — a :class:`~repro.adapters.rt.storage.RealDisk`
  fsyncing three file-backed volumes: the PHB journal (pub seqs +
  per-pubend event logs), the SHB journal (meta/subs/released tables)
  and the PFS volume.

``kill -9`` at any moment and restart with the same ``--data-dir``:
the journals replay at construction, torn tails truncate to the acked
prefix, and the protocol's own recovery (publisher retransmission,
subscriber catchup) covers the rest — that is the contract the
quickstart (examples/rt_quickstart.py) asserts end to end.

Usage::

    python -m repro.adapters.rt.broker_main --port 7461 --data-dir /tmp/bk
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import List

from ...broker.base import Broker
from ...broker.phb import PublisherHostingBroker
from ...broker.shb import SubscriberHostingBroker
from ...core import messages as M
from ...net.node import Node
from ...storage.logvolume import LogVolume
from .clock import AsyncioClock
from .storage import RealDisk
from .transport import TcpConnection, TcpListener


class BrokerProcess:
    """One-process PHB+SHB broker over the rt adapters."""

    def __init__(
        self,
        data_dir: str,
        pubends: List[str],
        sync_interval_ms: float = 5.0,
        commit_interval_ms: float = 100.0,
    ) -> None:
        self.clock = AsyncioClock()
        self.disk = RealDisk(self.clock, sync_interval_ms=sync_interval_ms)
        os.makedirs(data_dir, exist_ok=True)
        self.phb_journal = LogVolume.at_path(os.path.join(data_dir, "phb-journal.log"))
        self.shb_journal = LogVolume.at_path(os.path.join(data_dir, "shb-journal.log"))
        self.pfs_volume = LogVolume.at_path(os.path.join(data_dir, "pfs.log"))
        for volume in (self.phb_journal, self.shb_journal, self.pfs_volume):
            self.disk.attach_volume(volume)

        # Both roles share one node, as in the paper's 1-broker
        # topology; the loopback link between them carries knowledge
        # down and nacks/acks/subscriptions up.
        node = Node(self.clock, "broker")
        self.phb = PublisherHostingBroker(
            self.clock, "phb", node=node, disk=self.disk,
            journal_volume=self.phb_journal,
        )
        for pubend in sorted(pubends):  # sorted: journal stream order is fixed
            self.phb.create_pubend(pubend)
        self.shb = SubscriberHostingBroker(
            self.clock, "shb", sorted(pubends), node=node, disk=self.disk,
            commit_interval_ms=commit_interval_ms,
            pfs_volume=self.pfs_volume,
            journal_volume=self.shb_journal,
        )
        Broker.connect(self.phb, self.shb, latency_ms=0.1)
        for pubend in sorted(pubends):
            self.phb.register_release_child(pubend, self.shb.name)
        # The PHB's subscription union and release floor are volatile —
        # a restarted broker must re-announce the recovered registry
        # before any event flows, or the downstream knowledge filter
        # turns D ticks into silence (events the PFS then never logs).
        self.shb.resync_upstream()
        self.listener = TcpListener()
        self.listener.on_connection(self._route)

    def _route(self, conn: TcpConnection) -> None:
        """Peek at a session's first message to pick its role."""

        def first(msg: object) -> None:
            if isinstance(msg, M.PublishRequest):
                self.phb.attach_publisher_channel(conn)
            else:
                self.shb.attach_client_channel(conn)
            conn.deliver(msg)

        conn.on_message(first)

    async def serve(self, host: str = "127.0.0.1", port: int = 0) -> int:
        return await self.listener.start(host, port)

    def close(self) -> None:
        self.listener.close()
        self.disk.close()


async def _amain(args: argparse.Namespace) -> None:
    broker = BrokerProcess(
        args.data_dir,
        args.pubends.split(","),
        sync_interval_ms=args.sync_interval_ms,
    )
    port = await broker.serve(args.host, args.port)
    # The orchestrator (and a human) learns readiness from this line.
    print(f"LISTENING {port}", flush=True)
    try:
        await asyncio.Event().wait()
    finally:
        broker.close()


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--data-dir", required=True, help="directory for the durable volumes")
    parser.add_argument("--pubends", default="stream", help="comma-separated pubend names")
    parser.add_argument("--sync-interval-ms", type=float, default=5.0)
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
