"""The Transport port over real TCP (asyncio streams).

Wire format, little-endian::

    MAGIC(4) length(4) crc32(4) payload(length)

where ``payload`` is the pickle of a :class:`~repro.core.messages.Frame`
wrapping the protocol message — so integrity is checked twice, exactly
once per layer:

* the header CRC covers the payload *bytes* (catches torn/corrupt
  reads at the socket layer),
* the Frame's repr-CRC covers the *message* (the same end-to-end check
  the sim's lossy links enforce), recomputed after unpickling.

A frame failing either check closes the connection (a byte stream with
one bad frame has lost sync); the protocol recovers exactly as it
recovers a severed sim link — reconnect, re-nack, retransmit.

Pickle is acceptable here because both endpoints are the same trusted
codebase exchanging its own dataclasses on localhost; a production
deployment would swap in a real serializer behind the same framing.

``open_connection`` retries with the same knob the sim clients use for
connect-request retries (``connect_retry_ms``): the peer may simply
not be up yet — or be mid-restart after a ``kill -9``.
"""

from __future__ import annotations

import asyncio
import pickle
import struct
import zlib
from typing import Any, Callable, List, Optional

from ...core.messages import Frame

_MAGIC = b"GRT1"
_HEADER = struct.Struct("<4sII")  # magic, length, crc32(payload bytes)
_MAX_FRAME = 64 * 1024 * 1024


def encode_frame(msg: Any) -> bytes:
    """One wire frame carrying ``msg`` inside a CRC'd Frame envelope."""
    payload = pickle.dumps(Frame(msg), protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Unpickle and verify a frame payload; raises ValueError if bad."""
    frame = pickle.loads(payload)
    if not isinstance(frame, Frame) or not frame.verify():
        raise ValueError("frame CRC mismatch")
    return frame.payload


class TcpConnection:
    """An established TCP session as a :class:`repro.port.Connection`.

    Messages arriving before ``on_message`` is installed are buffered
    and delivered in order at installation — the broker's acceptor
    peeks at the first message to route the session without losing any
    that arrived behind it.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._handler: Optional[Callable[[Any], None]] = None
        self._close_fns: List[Callable[[], None]] = []
        self._pending: List[Any] = []
        self._closed = False
        self.sent = 0
        self.delivered = 0
        self._read_task = asyncio.ensure_future(self._read_loop())

    # -- channel API ---------------------------------------------------
    def send(self, msg: Any) -> None:
        if self._closed:
            return  # like a severed sim link: drop silently
        try:
            self._writer.write(encode_frame(msg))
            self.sent += 1
        except (ConnectionError, RuntimeError):
            self._on_closed()

    def on_message(self, fn: Callable[[Any], None]) -> None:
        self._handler = fn
        while self._pending and self._handler is fn:
            msg = self._pending.pop(0)
            self.delivered += 1
            fn(msg)

    def deliver(self, msg: Any) -> None:
        """Inject ``msg`` as if it had just arrived on the wire.

        Used by the broker's acceptor: it peeks at a session's first
        message to decide which role handles the connection, installs
        that role's handler, then re-delivers the peeked message here
        so nothing is lost and ordering is preserved.
        """
        if self._handler is not None:
            self.delivered += 1
            self._handler(msg)
        else:
            self._pending.append(msg)

    def on_close(self, fn: Callable[[], None]) -> None:
        self._close_fns.append(fn)
        if self._closed:
            fn()

    def close(self) -> None:
        if not self._closed:
            self._read_task.cancel()
            self._writer.close()
            self._on_closed()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- internals -----------------------------------------------------
    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(_HEADER.size)
                magic, length, crc = _HEADER.unpack(header)
                if magic != _MAGIC or length > _MAX_FRAME:
                    break
                payload = await self._reader.readexactly(length)
                if zlib.crc32(payload) != crc:
                    break
                msg = decode_payload(payload)
                if self._handler is not None:
                    self.delivered += 1
                    self._handler(msg)
                else:
                    self._pending.append(msg)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError,
                asyncio.CancelledError):
            pass
        finally:
            self._on_closed()

    def _on_closed(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
        except Exception:
            pass
        fns, self._close_fns = self._close_fns, []
        for fn in fns:
            fn()


class TcpListener:
    """Accepts inbound :class:`TcpConnection`\\ s on a local port."""

    def __init__(self) -> None:
        self._server: Optional[asyncio.AbstractServer] = None
        self._on_conn: Optional[Callable[[TcpConnection], None]] = None
        self.port: Optional[int] = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and listen; returns the bound port."""
        self._server = await asyncio.start_server(self._accept, host, port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def on_connection(self, fn: Callable[[TcpConnection], None]) -> None:
        self._on_conn = fn

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = TcpConnection(reader, writer)
        if self._on_conn is not None:
            self._on_conn(conn)

    def close(self) -> None:
        if self._server is not None:
            self._server.close()


async def open_connection(
    host: str,
    port: int,
    retry_ms: Optional[float] = None,
    timeout_ms: float = 15_000.0,
) -> TcpConnection:
    """Connect to a broker, optionally retrying until it is up.

    With ``retry_ms`` set, a refused/absent peer is retried every that
    many milliseconds until ``timeout_ms`` elapses — the TCP analogue
    of the sim clients' ``connect_retry_ms`` knob, and how the
    quickstart's clients ride out the broker's ``kill -9`` window.
    """
    deadline = asyncio.get_event_loop().time() + timeout_ms / 1000.0
    while True:
        try:
            reader, writer = await asyncio.open_connection(host, port)
            return TcpConnection(reader, writer)
        except (ConnectionError, OSError):
            if retry_ms is None or asyncio.get_event_loop().time() >= deadline:
                raise
            await asyncio.sleep(retry_ms / 1000.0)
