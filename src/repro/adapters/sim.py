"""Sim adapters: the discrete-event classes, viewed through the ports.

Nothing here is new machinery — the simulation substrate already
satisfies the port contracts:

* :class:`~repro.net.simtime.Scheduler` is the sim **Clock** (virtual
  milliseconds, ``(time, seq)`` determinism),
* :class:`~repro.storage.disk.SimDisk` is the sim **StableStorage**
  (group commit with modelled sync latency and crash epochs),
* a :class:`~repro.net.link.Link` provides the two directed ends a
  **Connection** needs; :class:`SimChannel` packages one side's pair
  (my send end, my receive end + its CPU receive cost) behind the
  channel API the protocol classes attach to.

The channel wrapper adds no scheduler events and no state of its own —
``send`` and ``on_message`` go straight through to the wrapped
:class:`~repro.net.link.LinkEnd`\\ s — so wiring clients through it is
behavior-identical (and digest-identical) to wiring the ends directly.
"""

from __future__ import annotations

from typing import Any, Callable

from ..net.link import Link, LinkEnd
from ..net.simtime import Scheduler
from ..storage.disk import SimDisk

__all__ = ["Scheduler", "SimDisk", "Link", "LinkEnd", "SimChannel", "channel_pair"]


class SimChannel:
    """One side of a client link, as a :class:`repro.port.Connection`.

    ``send_end`` carries this side's outbound messages; ``recv_end`` is
    the opposite direction, whose receiver-side handler (and CPU cost)
    this side owns.
    """

    __slots__ = ("_send_end", "_recv_end", "_recv_cost", "link")

    def __init__(
        self,
        link: Link,
        send_end: LinkEnd,
        recv_end: LinkEnd,
        recv_cost: Callable[[Any], float],
    ) -> None:
        self.link = link
        self._send_end = send_end
        self._recv_end = recv_end
        self._recv_cost = recv_cost

    def send(self, msg: Any) -> None:
        self._send_end.send(msg)

    def on_message(self, fn: Callable[[Any], None]) -> None:
        self._recv_end.on_receive(fn, self._recv_cost)

    def on_close(self, fn: Callable[[], None]) -> None:
        self.link.on_disconnect(fn)

    def close(self) -> None:
        self.link.sever()


def channel_pair(
    link: Link,
    a_node: object,
    b_node: object,
    a_recv_cost: Callable[[Any], float],
    b_recv_cost: Callable[[Any], float],
) -> tuple:
    """Both sides of ``link`` as channels: ``(a_side, b_side)``.

    ``a_side.send`` arrives at ``b_side``'s handler and vice versa;
    each side's ``recv_cost`` is charged on its own node, exactly as
    direct ``LinkEnd.on_receive`` wiring would.
    """
    a_sends = link.end_for_sender(a_node)  # a -> b direction
    b_sends = link.end_for_sender(b_node)  # b -> a direction
    a_side = SimChannel(link, send_end=a_sends, recv_end=b_sends, recv_cost=a_recv_cost)
    b_side = SimChannel(link, send_end=b_sends, recv_end=a_sends, recv_cost=b_recv_cost)
    return a_side, b_side
