"""Adapter families for the substrate ports (see :mod:`repro.port`).

* :mod:`repro.adapters.sim` — the discrete-event simulation substrate
  (tier-1: deterministic, exhaustively tested).
* :mod:`repro.adapters.rt` — the real-time asyncio substrate (wall
  clock, localhost TCP, real fsyncs); exercised by
  ``examples/rt_quickstart.py`` and the CI ``rt-smoke`` job.
"""
