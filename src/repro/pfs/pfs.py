"""The Persistent Filtering Subsystem (Section 4.2).

The PFS stores, durably, *which events matched which durable
subscribers*, so a reconnecting subscriber's catchup stream learns its
missed Q ticks without retrieving and refiltering events.

Write path (used by the consolidated stream): logically one record per
timestamp that is Q for at least one subscriber — the record holds the
timestamp and the matching subscriber list with per-subscriber
backpointers (:mod:`repro.pfs.records`).  Timestamps with no matches
write nothing.  Physically the constream hands the PFS one
:meth:`~PersistentFilteringSubsystem.write_batch` per pump advance and
the whole advance lands as a single columnar
:class:`~repro.pfs.records.PFSRecordBatch` append; the row-record
:meth:`~PersistentFilteringSubsystem.write` path remains for
single-tick writers and on-disk compatibility.  All pubends known to
the SHB share one :class:`~repro.storage.logvolume.LogVolume`, one log
stream each.

Read path (used by catchup streams): a *batch read* for subscriber *s*
after timestamp *a* walks the backpointer chain from ``lastIndex(s)``
newest→oldest, retaining the **oldest** ``buffer_qs`` Q ticks (a ring
buffer filled newest-first ends holding the oldest visited — delivery
must proceed in timestamp order, so the oldest portion is what the
caller needs next).  Ticks of the covered span that are not Q are S;
ticks above the covered span are unknown to this read and will be
picked up by the next one.

Durability: records are appended to the (volume-backed) stream
immediately but count as durable only when the attached
:class:`~repro.storage.disk.SimDisk` sync covering them completes; the
consolidated stream advances ``latestDelivered`` only then.  A crash
discards appends beyond the durable horizon.  ``lastIndex`` /
``lastTimestamp`` metadata is kept in memory and rebuilt on recovery by
scanning the live (unchopped) portion of each stream — the paper keeps
it in a DB table; rebuilding from the log is equivalent because the
live stream is bounded by the release protocol (see DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Optional

from ..core.subscription import SHARD_BITS
from ..sim.crashpoints import HOOKS
from ..storage.disk import SimDisk
from ..storage.logvolume import LogStream, LogVolume
from ..util.errors import RecordNotFoundError, StorageError
from .records import NO_PREVIOUS, PFSRecord, PFSRecordBatch, decode_record

#: Footnote-2 component sizes: the logical per-tick disk footprint is
#: ``8 + 16n`` bytes regardless of the physical record representation.
_TS_SIZE = 8
_ENTRY_SIZE = 16


class _ShardedIndex:
    """``subscriber_num -> newest record index``, sharded by num range.

    Representation-only replacement for the flat ``last_index`` dict:
    nums ``[k << SHARD_BITS, (k+1) << SHARD_BITS)`` live in shard ``k``,
    and each shard tracks a *floor* — a stale-safe lower bound on the
    smallest record index any of its entries points at.  Entries only
    ever move to newer (larger) indexes, so the floor set when a shard
    first gains a member stays a valid lower bound until a prune
    recomputes it.  :meth:`prune_below` — the chop-time stale-entry
    sweep that used to walk every hosted subscriber — skips any shard
    whose floor already clears the chop point, touching only shards
    with entries old enough to matter.
    """

    __slots__ = ("_shards", "_floor")

    def __init__(self) -> None:
        self._shards: Dict[int, Dict[int, int]] = {}
        self._floor: Dict[int, int] = {}

    def get(self, num: int, default: Optional[int] = None) -> Optional[int]:
        shard = self._shards.get(num >> SHARD_BITS)
        if shard is None:
            return default
        return shard.get(num, default)

    def __getitem__(self, num: int) -> int:
        shard = self._shards.get(num >> SHARD_BITS)
        if shard is None:
            raise KeyError(num)
        return shard[num]

    def __setitem__(self, num: int, index: int) -> None:
        sid = num >> SHARD_BITS
        shard = self._shards.get(sid)
        if shard is None:
            shard = self._shards[sid] = {}
            self._floor[sid] = index
        elif index < self._floor[sid]:
            self._floor[sid] = index
        shard[num] = index

    def __contains__(self, num: int) -> bool:
        shard = self._shards.get(num >> SHARD_BITS)
        return shard is not None and num in shard

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    def __iter__(self):
        for shard in self._shards.values():
            yield from shard

    def keys(self):
        return iter(self)

    def items(self):
        for shard in self._shards.values():
            yield from shard.items()

    def clear(self) -> None:
        self._shards.clear()
        self._floor.clear()

    def prune_below(self, last_chopped_index: int) -> None:
        """Drop entries pointing at or below the chopped index."""
        for sid in list(self._shards):
            if self._floor[sid] > last_chopped_index:
                continue
            shard = self._shards[sid]
            stale = [num for num, idx in shard.items() if idx <= last_chopped_index]
            for num in stale:
                del shard[num]
            if shard:
                self._floor[sid] = min(shard.values())
            else:
                del self._shards[sid]
                del self._floor[sid]


@dataclass
class PFSReadResult:
    """Outcome of one batch read for a subscriber.

    The read speaks for the tick span ``(after, covered_to]`` — within
    it, ``q_ticks`` are Q *for ticks >= known_from* and every other
    tick is S.  Ticks below ``known_from`` were chopped (released);
    the PFS knows nothing about them (the pubend will answer L).
    ``reached_last_timestamp`` is True when the read consumed the chain
    all the way to the newest record (87% of reads do in the paper's
    failure experiment); False means the ring buffer overflowed.
    """

    after: int
    covered_to: int
    q_ticks: List[int]
    known_from: int
    reached_last_timestamp: bool
    records_visited: int

    @property
    def q_count(self) -> int:
        return len(self.q_ticks)


@dataclass(slots=True)
class _PubendState:
    stream: LogStream
    last_timestamp: int = 0                 # newest Q tick written
    #: sub_num -> index of the newest record carrying that subscriber,
    #: sharded by num range (see :class:`_ShardedIndex`).
    last_index: _ShardedIndex = field(default_factory=_ShardedIndex)
    durable_next_index: int = 0             # appends below this are synced
    chopped_from_ts: int = 0                # ticks below this were chopped


class PersistentFilteringSubsystem:
    """One SHB's PFS across all pubends it knows."""

    def __init__(self, volume: Optional[LogVolume] = None, disk: Optional[SimDisk] = None) -> None:
        self.volume = volume if volume is not None else LogVolume.in_memory()
        self.disk = disk
        self._pubends: Dict[str, _PubendState] = {}
        self.writes = 0
        self.bytes_written = 0
        #: Physical appends/bytes of columnar batch records.  ``writes``
        #: and ``bytes_written`` stay *logical* (one footnote-2 record
        #: per Q tick) whichever representation carried them, so every
        #: paper-facing accounting is representation-independent.
        self.batch_appends = 0
        self.batch_bytes_appended = 0
        self.reads = 0
        self.reads_reaching_last = 0
        #: Batch reads that hit a backpointer-chain break (a record
        #: missing or lacking the subscriber — a chop racing the walk)
        #: and degraded to a truncated result instead of failing.
        self.chain_breaks = 0

    @property
    def owner(self) -> Optional[str]:
        """The broker whose crash discards un-synced PFS appends."""
        if self.disk is not None and self.disk.owner is not None:
            return self.disk.owner
        return self.volume.owner

    def _state(self, pubend: str) -> _PubendState:
        state = self._pubends.get(pubend)
        if state is None:
            stream = self.volume.stream(f"pfs:{pubend}")
            state = _PubendState(stream=stream, durable_next_index=stream.next_index)
            self._pubends[pubend] = state
        return state

    # ------------------------------------------------------------------
    # Write API (constream)
    # ------------------------------------------------------------------
    def write(
        self,
        pubend: str,
        timestamp: int,
        subscriber_nums: Iterable[int],
        on_durable: Optional[Callable[[], None]] = None,
    ) -> int:
        """Log a Q tick for the given subscribers; returns record bytes.

        Timestamps must be strictly increasing per pubend (the
        constream delivers in order).  ``on_durable`` fires when the
        record is crash-safe.
        """
        subs = list(subscriber_nums)
        state = self._state(pubend)
        if not subs:
            raise ValueError("PFS write requires at least one matching subscriber")
        if timestamp < state.chopped_from_ts:
            raise StorageError(
                f"PFS write at {timestamp} below chop point {state.chopped_from_ts}"
            )
        if timestamp <= state.last_timestamp:
            # Replay after an SHB crash: the constream resumes from the
            # committed latestDelivered, which can trail the PFS durable
            # horizon (records become durable before latestDelivered is
            # committed).  Matching is deterministic, so the identical
            # record is already durably in the stream — report success.
            if timestamp >= state.chopped_from_ts:
                if on_durable is not None:
                    on_durable()
                return 0
            raise StorageError(
                f"non-monotonic PFS write: {timestamp} <= {state.last_timestamp}"
            )
        if HOOKS.enabled:
            # Crash here: nothing of this record exists anywhere.
            HOOKS.fire("pfs.write.pre", self.owner)
        record = PFSRecord.build(timestamp, subs, state.last_index)
        index = state.stream.append(record.encode())
        for num in subs:
            state.last_index[num] = index
        state.last_timestamp = timestamp
        self.writes += 1
        self.bytes_written += record.size_bytes
        if HOOKS.enabled:
            # Crash here: appended and indexed in memory, but the
            # covering sync never started — the record must vanish.
            HOOKS.fire("pfs.write.post", self.owner)

        def durable() -> None:
            if HOOKS.enabled:
                # Crash here: synced, but the durable horizon was never
                # advanced — recovery truncates the record away and the
                # constream replay re-writes it.
                HOOKS.fire("pfs.durable.pre", self.owner)
            state.durable_next_index = max(state.durable_next_index, index + 1)
            if HOOKS.enabled:
                # Crash here: durable, but latestDelivered never
                # advanced past it.
                HOOKS.fire("pfs.durable.post", self.owner)
            if on_durable is not None:
                on_durable()

        if self.disk is None:
            durable()
        else:
            self.disk.write(record.size_bytes, durable)
        return record.size_bytes

    def write_batch(
        self,
        pubend: str,
        items: List,
        on_durable: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Log one pump advance's Q ticks as a single columnar append.

        ``items`` is ``[(timestamp, subscriber_nums), ...]`` in strictly
        ascending tick order, every nums list non-empty.  Logically this
        is exactly ``write(pubend, t, nums)`` per item — same counters,
        same per-tick disk traffic (one logical 8+16n write each, so
        sync batching and ack order are byte-identical to the row path),
        same replay idempotence — but the stream carries ONE
        :class:`~repro.pfs.records.PFSRecordBatch` instead of one row
        record per tick.  ``on_durable`` receives each tick's timestamp
        as it becomes crash-safe, in tick order.

        Returns the physical bytes appended (0 for a pure replay).
        """
        state = self._state(pubend)
        n = len(items)
        i = 0
        # Replay prefix after an SHB crash: the identical ticks are
        # already durably in the stream (matching is deterministic), so
        # acknowledge them synchronously without re-appending.
        while i < n:
            timestamp, nums = items[i]
            if not nums:
                raise ValueError("PFS write requires at least one matching subscriber")
            if timestamp < state.chopped_from_ts:
                raise StorageError(
                    f"PFS write at {timestamp} below chop point {state.chopped_from_ts}"
                )
            if timestamp > state.last_timestamp:
                break
            if on_durable is not None:
                on_durable(timestamp)
            i += 1
        if i == n:
            return 0
        fresh = items[i:] if i else items
        if HOOKS.enabled:
            # Crash here: nothing of this advance exists anywhere.
            HOOKS.fire("pfs.write_batch.pre", self.owner)
        batch = PFSRecordBatch.build(fresh, state.last_index)
        index = state.stream.append(batch.encode())
        for num, _prev in batch.sub_table:
            state.last_index[num] = index
        state.last_timestamp = batch.newest_timestamp
        self.writes += len(fresh)
        self.bytes_written += batch.logical_size_bytes
        self.batch_appends += 1
        self.batch_bytes_appended += batch.size_bytes
        if HOOKS.enabled:
            # Crash here: appended and indexed in memory, but no sync
            # covers any tick of the batch — the whole record vanishes.
            HOOKS.fire("pfs.write_batch.post", self.owner)
        if self.disk is None:
            for timestamp, _nums in fresh:
                self._tick_durable(state, index, timestamp, on_durable)
        else:
            for timestamp, nums in fresh:
                self.disk.write(
                    _TS_SIZE + _ENTRY_SIZE * len(nums),
                    lambda t=timestamp: self._tick_durable(state, index, t, on_durable),
                )
        return batch.size_bytes

    def _tick_durable(
        self,
        state: "_PubendState",
        index: int,
        timestamp: int,
        on_durable: Optional[Callable[[int], None]],
    ) -> None:
        """One batch tick's sync completed (ticks share the batch index).

        The first tick's ack already makes the whole batch record
        durable — a crash between two ticks' acks keeps the full batch,
        which is safe because replayed writes at or below
        ``last_timestamp`` are acknowledged without re-appending.
        """
        if HOOKS.enabled:
            # Crash here: synced, durable horizon not yet advanced.
            HOOKS.fire("pfs.durable.pre", self.owner)
        state.durable_next_index = max(state.durable_next_index, index + 1)
        if HOOKS.enabled:
            # Crash here: durable, latestDelivered never advanced.
            HOOKS.fire("pfs.durable.post", self.owner)
        if on_durable is not None:
            on_durable(timestamp)

    def flush(self) -> None:
        """Flush the backing volume (real-file microbenchmark mode)."""
        self.volume.flush()

    # ------------------------------------------------------------------
    # Read API (catchup streams)
    # ------------------------------------------------------------------
    def last_timestamp(self, pubend: str) -> int:
        return self._state(pubend).last_timestamp

    def live_subscriber_nums(self) -> set:
        """Subscriber nums referenced by any live (unchopped) record.

        After :meth:`recover` this is exact (the index maps were just
        rebuilt by a full scan).  The SHB compares it against its
        registry at recovery: a num the registry cannot name proves
        durable subscriptions were lost with an uncommitted table —
        the signal for suspect-registry mode.
        """
        nums: set = set()
        for state in self._pubends.values():
            nums.update(state.last_index.keys())
        return nums

    def read_batch(
        self,
        pubend: str,
        subscriber_num: int,
        after: int,
        buffer_qs: int = 5000,
    ) -> PFSReadResult:
        """Batch-read subscriber ``subscriber_num``'s ticks after ``after``.

        See the module docstring for the exact semantics of the result.

        A walk can cross a *concurrent* ``chop_below`` — a reconnect
        racing a release: the chain enters records the chop has already
        discarded (or that no longer carry the subscriber after a
        recovery rebuilt the index maps).  That is not corruption of
        anything the subscriber still needs — everything at or below
        the break was released — so instead of failing the catchup
        stream the batch is truncated: ``known_from`` is raised to the
        oldest tick the walk could still vouch for, the caller nacks
        the unknown span below it, and the pubend answers L (a gap)
        for whatever was genuinely released.
        """
        if buffer_qs <= 0:
            raise ValueError("buffer_qs must be positive")
        state = self._state(pubend)
        self.reads += 1
        ring: Deque[int] = deque(maxlen=buffer_qs)
        visited = 0
        pushed = 0
        truncated = False
        index = state.last_index.get(subscriber_num, NO_PREVIOUS)
        done = False
        while not done and index != NO_PREVIOUS and index >= state.stream.chopped_below:
            try:
                record = decode_record(state.stream.read(index))
            except RecordNotFoundError:
                truncated = True
                break
            if type(record) is PFSRecordBatch:
                # Intra-batch traversal: the subscriber's chain inside
                # the batch is its member ticks, walked newest→oldest.
                # ``visited`` counts *logical* (per-tick) records so
                # the catchup CPU model is representation-independent.
                prev = record.prev_index_of(subscriber_num)
                if prev is None:
                    # Stale index entry (chop/recovery race): the batch
                    # does not carry this subscriber at all.
                    visited += 1
                    truncated = True
                    break
                for i in reversed(record.ticks_for(subscriber_num)):
                    t = record.timestamps[i]
                    if t < state.chopped_from_ts:
                        # The row representation would have chopped
                        # this tick's record; a straddling batch keeps
                        # it physically, but the walk must not visit
                        # or vouch for released ticks.
                        done = True
                        break
                    visited += 1
                    if t <= after:
                        done = True
                        break
                    ring.append(t)
                    pushed += 1
                else:
                    index = prev
                continue
            visited += 1
            if record.timestamp <= after:
                break
            ring.append(record.timestamp)
            pushed += 1
            prev = record.prev_index_of(subscriber_num)
            if prev is None:
                # The record does not carry this subscriber — a stale
                # index entry left by a chop/recovery race.  The tick
                # just pushed is not a Q for the subscriber: retract it
                # before truncating, or it would be vouched as Q.
                ring.pop()
                pushed -= 1
                truncated = True
                break
            index = prev
        overflowed = pushed > buffer_qs
        known_from = state.chopped_from_ts
        if truncated:
            self.chain_breaks += 1
            boundary = min(ring) if ring else state.last_timestamp + 1
            known_from = max(known_from, boundary)
        q_ticks = sorted(t for t in ring if t >= known_from)
        covered_to = q_ticks[-1] if overflowed and q_ticks else state.last_timestamp
        if not overflowed:
            self.reads_reaching_last += 1
        return PFSReadResult(
            after=after,
            covered_to=max(covered_to, after),
            q_ticks=q_ticks,
            known_from=known_from,
            reached_last_timestamp=not overflowed,
            records_visited=visited,
        )

    # ------------------------------------------------------------------
    # Release / chop
    # ------------------------------------------------------------------
    def chop_below(self, pubend: str, timestamp: int) -> int:
        """Discard records whose tick is below ``timestamp``.

        Invoked as the release point advances; returns records chopped.
        """
        state = self._state(pubend)
        if timestamp <= state.chopped_from_ts:
            return 0
        if HOOKS.enabled:
            # Crash here: the release advanced but nothing was chopped.
            HOOKS.fire("pfs.chop.pre", self.owner)
        stream = state.stream
        chopped = 0
        last_chopped_index = None
        index = stream.chopped_below
        while index < min(stream.next_index, state.durable_next_index):
            record = decode_record(stream.read(index))
            if type(record) is PFSRecordBatch:
                # A batch is discarded only when its *newest* tick is
                # below the chop point; a straddling batch stays whole
                # (readers filter its released ticks via known_from).
                if record.newest_timestamp >= timestamp:
                    break
                chopped += record.n_ticks
            else:
                if record.timestamp >= timestamp:
                    break
                chopped += 1
            last_chopped_index = index
            index += 1
        if last_chopped_index is not None:
            stream.chop(last_chopped_index)
            # Drop stale lastIndex entries that now point below the chop
            # (per-shard floors let untouched num ranges skip the sweep).
            state.last_index.prune_below(last_chopped_index)
        state.chopped_from_ts = timestamp
        if HOOKS.enabled:
            # Crash here: records gone, index maps pruned — catchup
            # walks that raced this chop must degrade, not fail.
            HOOKS.fire("pfs.chop.post", self.owner)
        return chopped

    # ------------------------------------------------------------------
    # Failure / recovery
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Discard appends that never reached the disk."""
        for state in self._pubends.values():
            state.stream.crash_truncate(state.durable_next_index)
        self.recover()

    def recover(self) -> None:
        """Rebuild lastIndex/lastTimestamp by scanning the live streams."""
        for state in self._pubends.values():
            state.last_index.clear()
            state.last_timestamp = state.chopped_from_ts
            stream = state.stream
            for index in range(stream.chopped_below, stream.next_index):
                record = decode_record(stream.read(index))
                newest = (
                    record.newest_timestamp
                    if type(record) is PFSRecordBatch
                    else record.timestamp
                )
                for num in record.subscribers():
                    state.last_index[num] = index
                state.last_timestamp = max(state.last_timestamp, newest)
            state.durable_next_index = stream.next_index
