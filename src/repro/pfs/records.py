"""PFS record codec.

Footnote 2 of the paper: *"Each event causes a log record write of
length 8 + 16n bytes, where n represents the number of matching
subscribers (n > 0)."*

The layout reproduced here:

* 8 bytes — the timestamp of the Q tick,
* per matching subscriber, 16 bytes — the subscriber's numeric id and
  the index of the *previous* record in this log stream that contains
  the same subscriber (the backpointer that makes per-subscriber batch
  reads possible without scanning the whole stream).

The "first record for this subscriber" backpointer (the paper's ⊥) is
encoded as -1.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..util.errors import CorruptLogError

#: Backpointer value meaning "no earlier record contains this subscriber".
NO_PREVIOUS = -1

_TS = struct.Struct("<q")
_ENTRY = struct.Struct("<qq")


@dataclass(frozen=True)
class PFSRecord:
    """One PFS log record: a Q tick and its matching subscribers."""

    timestamp: int
    #: ``[(subscriber_num, prev_index), ...]`` — prev_index is the index
    #: of the previous record containing that subscriber, or NO_PREVIOUS.
    entries: Tuple[Tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        """Exactly ``8 + 16n`` (the paper's footnote 2)."""
        return _TS.size + _ENTRY.size * len(self.entries)

    def subscribers(self) -> List[int]:
        return [num for num, _prev in self.entries]

    def prev_index_of(self, subscriber_num: int) -> Optional[int]:
        """This subscriber's backpointer, or None if not in the record."""
        for num, prev in self.entries:
            if num == subscriber_num:
                return prev
        return None

    def encode(self) -> bytes:
        parts = [_TS.pack(self.timestamp)]
        parts.extend(_ENTRY.pack(num, prev) for num, prev in self.entries)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "PFSRecord":
        if len(data) < _TS.size or (len(data) - _TS.size) % _ENTRY.size != 0:
            raise CorruptLogError(f"bad PFS record length {len(data)}")
        (timestamp,) = _TS.unpack_from(data, 0)
        entries = []
        for offset in range(_TS.size, len(data), _ENTRY.size):
            entries.append(_ENTRY.unpack_from(data, offset))
        return cls(timestamp, tuple(entries))

    @classmethod
    def build(
        cls,
        timestamp: int,
        subscriber_nums: List[int],
        last_index: Dict[int, int],
    ) -> "PFSRecord":
        """Assemble a record, pulling each subscriber's backpointer.

        ``last_index`` maps subscriber_num -> index of the latest record
        containing that subscriber (absent = first appearance).
        """
        if not subscriber_nums:
            raise ValueError("PFS records are only written for n > 0 matches")
        entries = tuple(
            (num, last_index.get(num, NO_PREVIOUS)) for num in sorted(subscriber_nums)
        )
        return cls(timestamp, entries)
