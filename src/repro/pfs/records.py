"""PFS record codec.

Footnote 2 of the paper: *"Each event causes a log record write of
length 8 + 16n bytes, where n represents the number of matching
subscribers (n > 0)."*

The layout reproduced here:

* 8 bytes — the timestamp of the Q tick,
* per matching subscriber, 16 bytes — the subscriber's numeric id and
  the index of the *previous* record in this log stream that contains
  the same subscriber (the backpointer that makes per-subscriber batch
  reads possible without scanning the whole stream).

The "first record for this subscriber" backpointer (the paper's ⊥) is
encoded as -1.

Columnar batches
----------------

:class:`PFSRecordBatch` packs every Q tick of one pump advance into a
single log record laid out column-wise: one timestamps array, one
packed subscriber-num column indexed by per-tick ``(offset, count)``
slices, and one per-subscriber backpointer table.  Consecutive ticks
matching the same subscriber set *share* one column slice, so a run of
k ticks with n matchers stores n nums once instead of k times.  The
batch is purely a storage/CPU representation: the logical content is
exactly the sequence of row records the same ticks would have written,
and every reader (:meth:`PFSRecordBatch.ticks_for`, the recovery scan,
the chop sweep) reproduces the row semantics tick by tick.

A batch record is distinguished from a row record by its first 8
bytes: row records start with a non-negative timestamp, batches with
the negative :data:`BATCH_TAG`.  :func:`decode_record` dispatches.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..util.errors import CorruptLogError

#: Backpointer value meaning "no earlier record contains this subscriber".
NO_PREVIOUS = -1

#: First-8-bytes sentinel marking a columnar batch record.  Row-record
#: timestamps are >= 0 on the wire (the protocol's tick domain), so any
#: negative leading int64 unambiguously tags a batch.
BATCH_TAG = -2

_TS = struct.Struct("<q")
_ENTRY = struct.Struct("<qq")
_BATCH_HEADER = struct.Struct("<qqqq")  # tag, n_ticks, n_subs, column_len


@dataclass(frozen=True)
class PFSRecord:
    """One PFS log record: a Q tick and its matching subscribers."""

    timestamp: int
    #: ``[(subscriber_num, prev_index), ...]`` — prev_index is the index
    #: of the previous record containing that subscriber, or NO_PREVIOUS.
    entries: Tuple[Tuple[int, int], ...]

    @property
    def size_bytes(self) -> int:
        """Exactly ``8 + 16n`` (the paper's footnote 2)."""
        return _TS.size + _ENTRY.size * len(self.entries)

    def subscribers(self) -> List[int]:
        return [num for num, _prev in self.entries]

    def prev_index_of(self, subscriber_num: int) -> Optional[int]:
        """This subscriber's backpointer, or None if not in the record."""
        for num, prev in self.entries:
            if num == subscriber_num:
                return prev
        return None

    def encode(self) -> bytes:
        parts = [_TS.pack(self.timestamp)]
        parts.extend(_ENTRY.pack(num, prev) for num, prev in self.entries)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "PFSRecord":
        if len(data) < _TS.size or (len(data) - _TS.size) % _ENTRY.size != 0:
            raise CorruptLogError(f"bad PFS record length {len(data)}")
        (timestamp,) = _TS.unpack_from(data, 0)
        entries = []
        for offset in range(_TS.size, len(data), _ENTRY.size):
            entries.append(_ENTRY.unpack_from(data, offset))
        return cls(timestamp, tuple(entries))

    @classmethod
    def build(
        cls,
        timestamp: int,
        subscriber_nums: List[int],
        last_index: Dict[int, int],
    ) -> "PFSRecord":
        """Assemble a record, pulling each subscriber's backpointer.

        ``last_index`` maps subscriber_num -> index of the latest record
        containing that subscriber (absent = first appearance).
        """
        if not subscriber_nums:
            raise ValueError("PFS records are only written for n > 0 matches")
        entries = tuple(
            (num, last_index.get(num, NO_PREVIOUS)) for num in sorted(subscriber_nums)
        )
        return cls(timestamp, entries)


@dataclass(frozen=True)
class PFSRecordBatch:
    """One pump advance's Q ticks as a single columnar log record.

    Array-of-struct layout: ``timestamps[i]`` is tick i's timestamp
    (ascending), ``column[offsets[i] : offsets[i] + counts[i]]`` its
    sorted matching subscriber nums, and ``sub_table`` maps each
    distinct subscriber num in the batch to the index of the previous
    *stream record* containing it (NO_PREVIOUS for a first appearance).
    Runs of ticks with identical matcher sets alias one column slice.

    Logically the batch *is* the row records ``(timestamps[i],
    nums_i)`` in order; each subscriber's intra-batch backpointer chain
    is implicit (its ticks within the batch, newest to oldest) and the
    chain leaves the batch through ``sub_table``.
    """

    timestamps: Tuple[int, ...]
    #: per-tick ``(offset, count)`` slices into :attr:`column`.
    slices: Tuple[Tuple[int, int], ...]
    #: packed subscriber-num column (each slice sorted ascending).
    column: Tuple[int, ...]
    #: distinct subscriber num -> pre-batch backpointer, sorted by num.
    sub_table: Tuple[Tuple[int, int], ...]

    @property
    def n_ticks(self) -> int:
        return len(self.timestamps)

    @property
    def newest_timestamp(self) -> int:
        return self.timestamps[-1]

    @property
    def oldest_timestamp(self) -> int:
        return self.timestamps[0]

    @property
    def size_bytes(self) -> int:
        """Physical frame size of the encoded batch."""
        return _BATCH_HEADER.size + 8 * (
            len(self.timestamps) + 2 * len(self.slices)
            + len(self.column) + 2 * len(self.sub_table)
        )

    @property
    def logical_size_bytes(self) -> int:
        """Sum of the footnote-2 sizes of the equivalent row records."""
        return sum(8 + 16 * count for _off, count in self.slices)

    def subscribers(self) -> List[int]:
        """Distinct subscriber nums in the batch (ascending)."""
        return [num for num, _prev in self.sub_table]

    def prev_index_of(self, subscriber_num: int) -> Optional[int]:
        """The pre-batch backpointer, or None if the sub isn't present."""
        table = self.sub_table
        lo, hi = 0, len(table)
        while lo < hi:
            mid = (lo + hi) // 2
            if table[mid][0] < subscriber_num:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(table) and table[lo][0] == subscriber_num:
            return table[lo][1]
        return None

    def nums_at(self, i: int) -> Tuple[int, ...]:
        """Tick i's sorted matching subscriber nums."""
        offset, count = self.slices[i]
        return self.column[offset : offset + count]

    def ticks_for(self, subscriber_num: int) -> List[int]:
        """Tick positions (ascending) whose match set contains the sub.

        Slices are aliased across runs, so membership is tested once
        per distinct slice, not once per tick.
        """
        verdicts: Dict[Tuple[int, int], bool] = {}
        out: List[int] = []
        for i, sl in enumerate(self.slices):
            hit = verdicts.get(sl)
            if hit is None:
                offset, count = sl
                hit = verdicts[sl] = (
                    subscriber_num in self.column[offset : offset + count]
                )
            if hit:
                out.append(i)
        return out

    def encode(self) -> bytes:
        flat: List[int] = [
            BATCH_TAG, len(self.timestamps), len(self.sub_table), len(self.column),
        ]
        flat.extend(self.timestamps)
        for offset, count in self.slices:
            flat.append(offset)
            flat.append(count)
        flat.extend(self.column)
        for num, prev in self.sub_table:
            flat.append(num)
            flat.append(prev)
        return struct.pack(f"<{len(flat)}q", *flat)

    @classmethod
    def decode(cls, data: bytes) -> "PFSRecordBatch":
        if len(data) < _BATCH_HEADER.size or len(data) % 8 != 0:
            raise CorruptLogError(f"bad PFS batch length {len(data)}")
        tag, n_ticks, n_subs, col_len = _BATCH_HEADER.unpack_from(data, 0)
        if tag != BATCH_TAG:
            raise CorruptLogError(f"bad PFS batch tag {tag}")
        n_words = (len(data) - _BATCH_HEADER.size) // 8
        expect = n_ticks + 2 * n_ticks + col_len + 2 * n_subs
        if n_ticks <= 0 or n_subs < 0 or col_len < 0 or n_words != expect:
            raise CorruptLogError(
                f"inconsistent PFS batch geometry: {n_ticks} ticks, "
                f"{n_subs} subs, column {col_len}, {n_words} words"
            )
        words = struct.unpack_from(f"<{n_words}q", data, _BATCH_HEADER.size)
        pos = n_ticks
        timestamps = tuple(words[:pos])
        slices = tuple(
            (words[pos + 2 * i], words[pos + 2 * i + 1]) for i in range(n_ticks)
        )
        pos += 2 * n_ticks
        column = tuple(words[pos : pos + col_len])
        pos += col_len
        sub_table = tuple(
            (words[pos + 2 * i], words[pos + 2 * i + 1]) for i in range(n_subs)
        )
        batch = cls(timestamps, slices, column, sub_table)
        for offset, count in slices:
            if offset < 0 or count <= 0 or offset + count > col_len:
                raise CorruptLogError("PFS batch slice out of bounds")
        return batch

    @classmethod
    def build(
        cls,
        items: Sequence[Tuple[int, Sequence[int]]],
        last_index: Dict[int, int],
    ) -> "PFSRecordBatch":
        """Assemble a batch from ``[(timestamp, subscriber_nums), ...]``.

        Timestamps must be strictly ascending and every nums list
        non-empty.  Consecutive items handing in the *same* nums object
        (the constream's memoized match sets) share one column slice;
        each list is sorted once per distinct object.  ``last_index``
        supplies the pre-batch backpointers and is NOT mutated — the
        caller advances it to the batch's stream index afterwards.
        """
        if not items:
            raise ValueError("PFS batches are only written for >= 1 Q tick")
        timestamps: List[int] = []
        slices: List[Tuple[int, int]] = []
        column: List[int] = []
        seen_slice: Dict[int, Tuple[int, int]] = {}  # id(nums) -> slice
        sub_set: set = set()
        for timestamp, nums in items:
            if not nums:
                raise ValueError("PFS records are only written for n > 0 matches")
            if timestamps and timestamp <= timestamps[-1]:
                raise ValueError(
                    f"non-monotonic batch tick {timestamp} <= {timestamps[-1]}"
                )
            timestamps.append(timestamp)
            sl = seen_slice.get(id(nums))
            if sl is None:
                ordered = sorted(nums)
                sl = (len(column), len(ordered))
                column.extend(ordered)
                seen_slice[id(nums)] = sl
                sub_set.update(ordered)
            slices.append(sl)
        sub_table = tuple(
            (num, last_index.get(num, NO_PREVIOUS)) for num in sorted(sub_set)
        )
        return cls(tuple(timestamps), tuple(slices), tuple(column), sub_table)


AnyPFSRecord = Union[PFSRecord, PFSRecordBatch]


def decode_record(data: bytes) -> AnyPFSRecord:
    """Decode either record kind, dispatching on the leading int64."""
    if len(data) >= _TS.size and _TS.unpack_from(data, 0)[0] == BATCH_TAG:
        return PFSRecordBatch.decode(data)
    return PFSRecord.decode(data)
