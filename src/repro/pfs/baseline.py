"""The baseline the paper argues against: per-subscriber event logs.

Introduction: *"Every edge-broker to which durable subscribers connect
... maintains a persistent event log for each durable subscriber in
which each event that matches the subscriber is placed ... This is the
typical solution adopted at SHBs by current Message Queuing products."*

Disadvantages reproduced here by construction: an event is logged once
*per matching subscriber* (full event bytes each time), so an SHB with
n matching subscribers writes ``n * event_size`` bytes where the PFS
writes ``8 + 16n``.  The Section 5.1.2 microbenchmark compares the two
implementations head-to-head on the same workload; this module is the
"event logging" side of that comparison and also serves as a functional
baseline (it supports delivery, ack-trimming and reconnect reads).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..core.events import Event
from ..storage.disk import SimDisk
from ..storage.logvolume import LogStream, LogVolume


class PerSubscriberEventLogs:
    """MQ-style per-subscriber persistent event queues at an SHB."""

    def __init__(self, volume: Optional[LogVolume] = None, disk: Optional[SimDisk] = None) -> None:
        self.volume = volume if volume is not None else LogVolume.in_memory()
        self.disk = disk
        self._streams: Dict[str, LogStream] = {}
        # (sub_id) -> list of (index, timestamp) for ack-trimming; the
        # timestamp is also encoded in the record for reconnect reads.
        self._index_by_ts: Dict[str, List[Tuple[int, int]]] = {}
        self.appends = 0
        self.bytes_written = 0
        #: ``append_batch`` calls (the per-advance grouping mirror of
        #: the PFS's ``batch_appends``) — the baseline still pays one
        #: physical append per (event, subscriber) pair either way,
        #: which is exactly the cost the paper argues against.
        self.batch_appends = 0

    def _stream(self, sub_id: str) -> LogStream:
        stream = self._streams.get(sub_id)
        if stream is None:
            stream = self.volume.stream(f"subq:{sub_id}")
            self._streams[sub_id] = stream
            self._index_by_ts[sub_id] = []
        return stream

    # ------------------------------------------------------------------
    # Write path: one full event copy per matching subscriber
    # ------------------------------------------------------------------
    def append_event(
        self,
        event: Event,
        matching_subs: List[str],
        on_durable: Optional[Callable[[], None]] = None,
    ) -> int:
        """Log ``event`` once per matching subscriber; returns bytes written."""
        total = 0
        for sub_id in matching_subs:
            stream = self._stream(sub_id)
            record = self._encode(event)
            index = stream.append(record)
            self._index_by_ts[sub_id].append((index, event.timestamp))
            total += len(record)
        self.appends += len(matching_subs)
        self.bytes_written += total
        if self.disk is None:
            if on_durable is not None:
                on_durable()
        else:
            self.disk.write(total, on_durable)
        return total

    def append_batch(
        self,
        items: List[Tuple[Event, List[str]]],
        on_durable: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Ablation parity for :meth:`PersistentFilteringSubsystem.write_batch`.

        One call per pump advance, ``items`` ascending by event
        timestamp.  The MQ-style design has no columnar representation
        to exploit: each event is still copied once per matching
        subscriber, so batching only amortizes the call overhead.
        ``on_durable`` receives each event's timestamp as its copies
        become crash-safe, in item order.
        """
        total = 0
        self.batch_appends += 1
        for event, matching_subs in items:
            size = self.append_event(
                event,
                matching_subs,
                on_durable=(
                    None if on_durable is None
                    else (lambda t=event.timestamp: on_durable(t))
                ),
            )
            total += size
        return total

    @staticmethod
    def _encode(event: Event) -> bytes:
        """A stand-in for the full serialized event (size is what matters)."""
        header = event.timestamp.to_bytes(8, "little", signed=True)
        body = b"\x00" * (event.size_bytes - 8)
        return header + body

    # ------------------------------------------------------------------
    # Read / ack path
    # ------------------------------------------------------------------
    def pending_after(self, sub_id: str, after_ts: int) -> List[int]:
        """Timestamps logged for ``sub_id`` with timestamp > ``after_ts``."""
        return [ts for _idx, ts in self._index_by_ts.get(sub_id, []) if ts > after_ts]

    def read_timestamp(self, sub_id: str, timestamp: int) -> Optional[bytes]:
        for idx, ts in self._index_by_ts.get(sub_id, []):
            if ts == timestamp:
                return self._stream(sub_id).read(idx)
        return None

    def ack_through(self, sub_id: str, timestamp: int) -> int:
        """Trim the subscriber's log through ``timestamp`` (consumption ack)."""
        entries = self._index_by_ts.get(sub_id, [])
        keep = [(idx, ts) for idx, ts in entries if ts > timestamp]
        trimmed = len(entries) - len(keep)
        if trimmed:
            last_acked_index = max(idx for idx, ts in entries if ts <= timestamp)
            self._stream(sub_id).chop(last_acked_index)
            self._index_by_ts[sub_id] = keep
        return trimmed

    def flush(self) -> None:
        self.volume.flush()

    def queue_depth(self, sub_id: str) -> int:
        return len(self._index_by_ts.get(sub_id, []))
