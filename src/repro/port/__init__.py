"""Substrate ports: the seam between protocol code and the world.

The durable-subscription protocol (brokers, pubends, PFS, clients) is
substrate-independent: it touches time, the network, and stable storage
only through three narrow interfaces.  This package names those
interfaces explicitly:

* :class:`~repro.port.clock.Clock` — virtual or wall-clock time with
  ``now``/``at``/``after``/``every``/``post`` scheduling,
* :class:`~repro.port.transport.Connection` /
  :class:`~repro.port.transport.Listener` — an ordered, framed,
  severable message channel,
* :class:`~repro.port.storage.StableStorage` — the write/sync-callback
  contract under which a completion callback *means* the bytes survive
  a crash.

The discrete-event simulation (`net/simtime`, `net/link`,
`storage/disk`) is one adapter family (see
:mod:`repro.adapters.sim`); the real-time asyncio backend
(:mod:`repro.adapters.rt`) is the other.  Tier-1 tests run the sim;
``examples/rt_quickstart.py`` runs the identical protocol classes over
real TCP and real fsyncs.
"""

from .clock import Clock
from .storage import StableStorage
from .transport import Connection, Listener

__all__ = ["Clock", "Connection", "Listener", "StableStorage"]
