"""The Transport port: ordered, framed, severable message channels.

A :class:`Channel` is one established bidirectional session between a
client (subscriber or publisher) and a broker: ``send`` transmits a
protocol message object, ``on_message`` installs the receive handler,
``on_close`` fires when the peer disappears (crash, sever, TCP reset).
The contract the protocol relies on:

* **FIFO per direction** — messages arrive in send order or not at all.
* **Integrity** — a delivered message equals the one sent.  The sim's
  :class:`~repro.net.link.Link` enforces this with the
  :class:`~repro.core.messages.Frame` repr-CRC under fault injection;
  the TCP adapter wraps every payload in the same ``Frame`` plus a
  byte-level CRC header and drops (never delivers) corrupt frames.
* **Loss is legal** — a channel may drop messages (sever, crash, torn
  connection); every protocol layer already recovers via curiosity
  nacks, connect retries and publish retransmission.  ``on_close`` is
  best-effort: a silent peer death may surface only as message loss.
* **Identity** — the channel object's identity names the session;
  brokers key their per-session state by it (``_sessions`` in the SHB).

A :class:`Listener` accepts inbound channels on the broker side; the
sim builds channels directly from links (see
:mod:`repro.adapters.sim`), so only the asyncio adapter listens.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable


@runtime_checkable
class Connection(Protocol):
    """One established, ordered, severable message channel."""

    def send(self, msg: Any) -> None: ...

    def on_message(self, fn: Callable[[Any], None]) -> None: ...

    def on_close(self, fn: Callable[[], None]) -> None: ...

    def close(self) -> None: ...


@runtime_checkable
class Listener(Protocol):
    """Accepts inbound :class:`Connection`\\ s on the broker side."""

    def on_connection(self, fn: Callable[[Connection], None]) -> None: ...

    def close(self) -> None: ...
