"""The Clock port: time and timer scheduling.

Every protocol component (brokers, pubends, curiosity, clients) already
drives its timers through exactly five operations — ``now``, ``at``,
``after``, ``every``, ``post`` — so that quintet *is* the port.  The
discrete-event :class:`repro.net.simtime.Scheduler` satisfies it with
virtual milliseconds; :class:`repro.adapters.rt.clock.AsyncioClock`
satisfies it with wall-clock milliseconds on an asyncio event loop.

Contract highlights the adapters must honor:

* ``now`` is milliseconds, monotonically non-decreasing within a
  process lifetime.  (The rt adapter anchors it to the Unix epoch so
  event timestamps stay monotone *across* broker restarts too.)
* ``at``/``after`` return a handle whose ``cancel()`` is idempotent
  and prevents the callback from firing.
* ``every`` returns a handle with ``cancel()`` and a ``dead`` flag;
  firings land on the ``t0 + n*interval`` grid (no cumulative drift),
  a raising callback kills the periodic (marked ``dead``) unless an
  ``on_error`` hook is supplied, and post-death ``cancel()`` is safe.
* ``post`` is fire-and-forget ``at`` (no handle, no cancellation).
* Callbacks scheduled for the same time fire in scheduling order.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable reference to a scheduled callback."""

    def cancel(self) -> None: ...


@runtime_checkable
class PeriodicTimerHandle(Protocol):
    """A cancellable reference to a repeating callback."""

    cancelled: bool
    dead: bool

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """Time source + timer wheel (ms units)."""

    @property
    def now(self) -> float: ...

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> TimerHandle: ...

    def after(self, delay: float, fn: Callable[..., None], *args: Any) -> TimerHandle: ...

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None: ...

    def every(
        self,
        interval: float,
        fn: Callable[..., None],
        *args: Any,
        first_delay: Optional[float] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> PeriodicTimerHandle: ...
