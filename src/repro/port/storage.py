"""The StableStorage port: the write/sync-callback durability contract.

Every durable structure in the system (tables, event logs, the PFS)
follows one discipline, inherited from the group-commit design of
:class:`~repro.storage.disk.SimDisk`:

1. stage the content (append to a log stream, buffer table rows),
2. call ``write(nbytes, on_durable)`` on the storage device,
3. act on durability **only inside** ``on_durable`` — send the ack,
   disseminate the knowledge, report the release.

The contract the adapters must honor:

* ``on_durable`` fires only once everything staged *before* the call —
  this write and all earlier ones — would survive a crash.  The sim
  models this with sync latency and ``crash_reset`` epochs; the
  real-file adapter (:class:`repro.adapters.rt.storage.RealDisk`)
  flushes + ``fsync``\\ s its attached
  :class:`~repro.storage.logvolume.FileBackend` volumes first.
* Callbacks fire in write order (group commit preserves FIFO).
* A crash may swallow staged writes whose callback never fired; it must
  never fire a callback for content that did not reach the platter.
  (That asymmetry is exactly what makes acked state trustworthy and
  un-acked state recoverable by retransmission.)
* ``crash_reset`` discards staged-but-unsynced writes so their
  callbacks never fire.  For a real process, death *is* the reset —
  the adapter's ``crash_reset`` is a no-op and recovery happens by
  reopening the volume files (torn tails are truncated on open).
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class StableStorage(Protocol):
    """A durable device with group-commit write/sync-callback semantics."""

    #: Broker whose crash voids staged writes (set via Broker._own_storage).
    owner: Optional[str]

    def write(self, nbytes: int, on_durable: Optional[Callable[[], None]] = None) -> None: ...

    def crash_reset(self) -> None: ...
