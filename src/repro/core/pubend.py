"""Pubends: publishing endpoints at the publisher hosting broker.

Section 2: *"Each publisher hosting broker (PHB) maintains one or more
publishing endpoints (pubends).  Each persistent event published to
this broker is assigned to a pubend ... Each pubend maintains a
persistent and ordered event stream, that is indexed by the timestamp
assigned to the event when it was added to this stream."*

The pubend is the root of the knowledge/curiosity tree and the single
point where an event is persistently logged.  Responsibilities:

* assign strictly increasing integer timestamps,
* log the event; *only after the log sync completes* emit a
  :class:`~repro.core.messages.KnowledgeUpdate` carrying the event and
  the implied silence since the previous dissemination (this ordering
  is why PHB logging is on the publish latency path — the paper's
  44 ms),
* periodically disseminate silence so downstream doubt horizons advance
  when no events flow,
* answer nacks from its durable log (or with L ranges for released
  ticks),
* run the release protocol: fold downstream ``(Tr, Td)`` aggregates
  through an :class:`~repro.core.release.EarlyReleasePolicy`, convert
  the released prefix to L and chop the event log.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..metrics.trace import SPAN_PHB_LOG, SPAN_PUBLISH, event_tracer
from ..net.simtime import Scheduler
from ..storage.disk import SimDisk
from ..storage.eventlog import PersistentEventLog
from ..util.intervals import IntervalSet
from .events import Event
from .messages import KnowledgeUpdate
from .release import EarlyReleasePolicy, NoEarlyRelease, ReleaseAggregator


class Pubend:
    """One publishing endpoint and its persistent event stream."""

    def __init__(
        self,
        name: str,
        scheduler: Scheduler,
        disk: Optional[SimDisk] = None,
        policy: Optional[EarlyReleasePolicy] = None,
        silence_interval_ms: float = 25.0,
        journal: Optional[object] = None,
    ) -> None:
        self.name = name
        self.scheduler = scheduler
        #: ``journal`` (a file-backed log stream) makes the event log
        #: survive real process death; see PersistentEventLog.
        self.log = PersistentEventLog(name, disk, journal=journal)
        self.policy = policy if policy is not None else NoEarlyRelease()
        self.release_agg = ReleaseAggregator(name)
        #: Called with each KnowledgeUpdate to disseminate downstream;
        #: installed by the owning PHB broker.
        self.on_knowledge: Optional[Callable[[KnowledgeUpdate], None]] = None
        # --- timestamp bookkeeping -----------------------------------
        self._last_assigned = 0      # highest event timestamp handed out
        self._disseminated = 0       # knowledge emitted for every tick <= this
        self._pending: Deque[int] = deque()  # staged (unsynced) event timestamps
        # --- release state -------------------------------------------
        self._released_bound = 0     # ticks <= bound are L
        self.events_published = 0
        self.events_lost_in_crash = 0
        #: Recent publish→durable latencies (ms), for the latency study.
        #: The event timestamp approximates its staging time, so the
        #: difference at the durable callback is the logging latency.
        self.log_latency_ms: List[float] = []
        self._tracer = event_tracer(scheduler)
        if self.log.max_timestamp is not None or self.log.chopped_below > 0:
            # A journal-recovered log (process restart): adopt its
            # horizons exactly as post-crash recover() does.  Never
            # triggers in the simulation, where fresh logs are empty.
            now = self.current_time
            self._last_assigned = max(self.log.max_timestamp or 0, now)
            self._disseminated = self._last_assigned
            self._released_bound = max(0, self.log.chopped_below - 1)
        self._silence_timer = scheduler.every(silence_interval_ms, self._silence_flush)

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def current_time(self) -> int:
        """``T(p)`` — the pubend's current tick time."""
        return int(self.scheduler.now)

    @property
    def disseminated(self) -> int:
        """Every tick ``<= disseminated`` has had knowledge emitted."""
        return self._disseminated

    @property
    def lost_below(self) -> int:
        """Every tick strictly below this is L (released)."""
        return self._released_bound + 1

    # ------------------------------------------------------------------
    # Publish path
    # ------------------------------------------------------------------
    def publish(
        self,
        attributes: Dict[str, object],
        payload_bytes: int = 250,
        publisher: Optional[str] = None,
        seq: Optional[int] = None,
        ttl_ms: Optional[int] = None,
        on_durable: Optional[Callable[[], None]] = None,
        trace_t0: Optional[float] = None,
    ) -> Event:
        """Assign a timestamp, stage the event for durable logging.

        The returned event is *not yet durable*; knowledge is
        disseminated from the log-sync callback, in order.
        ``on_durable`` additionally fires at that point (used for
        publish acknowledgments).  ``ttl_ms`` sets a JMS-style
        expiration relative to the assigned timestamp.  ``trace_t0``
        is the client-side publish time, when the caller knows it —
        the tracer's end-to-end clock starts there.
        """
        t = max(self._last_assigned + 1, self._disseminated + 1, self.current_time)
        self._last_assigned = t
        expires_at = t + ttl_ms if ttl_ms is not None else None
        event = Event(
            self.name, t, dict(attributes), payload_bytes, publisher,
            seq=seq, expires_at=expires_at,
        )
        self._pending.append(t)

        tracer = self._tracer
        staged_at: Optional[float] = None
        if tracer.active and tracer.begin(event, start_ms=trace_t0):
            staged_at = self.scheduler.now
            tracer.add_span(
                event.event_id, SPAN_PUBLISH, self.name,
                start_ms=trace_t0 if trace_t0 is not None else staged_at,
            )

        def durable() -> None:
            if staged_at is not None:
                tracer.add_span(
                    event.event_id, SPAN_PHB_LOG, self.name, start_ms=staged_at
                )
            self._event_durable(event)
            if on_durable is not None:
                on_durable()

        self.log.append(event, on_durable=durable)
        return event

    def _event_durable(self, event: Event) -> None:
        if self._pending and self._pending[0] == event.timestamp:
            self._pending.popleft()
        else:  # pragma: no cover - group commit preserves order
            try:
                self._pending.remove(event.timestamp)
            except ValueError:
                pass
        self.events_published += 1
        if len(self.log_latency_ms) < 100_000:
            self.log_latency_ms.append(self.scheduler.now - event.timestamp)
        t = event.timestamp
        s_ranges: List[Tuple[int, int]] = []
        if t - 1 >= self._disseminated + 1:
            s_ranges.append((self._disseminated + 1, t - 1))
        self._disseminated = max(self._disseminated, t)
        self._emit(KnowledgeUpdate(self.name, d_events=[event], s_ranges=s_ranges))

    def _silence_flush(self) -> None:
        """Disseminate silence up to now (bounded by staged events)."""
        bound = self.current_time - 1
        if self._pending:
            bound = min(bound, self._pending[0] - 1)
        if bound > self._disseminated:
            update = KnowledgeUpdate(self.name, s_ranges=[(self._disseminated + 1, bound)])
            self._disseminated = bound
            self._emit(update)

    def _emit(self, update: KnowledgeUpdate) -> None:
        if self.on_knowledge is not None and not update.is_empty():
            self.on_knowledge(update)

    # ------------------------------------------------------------------
    # Nack service (root of the recovery tree)
    # ------------------------------------------------------------------
    def serve_nack(self, ranges: IntervalSet, max_events: Optional[int] = None) -> KnowledgeUpdate:
        """Answer a consolidated nack from the durable log.

        For each requested range (served in ascending order): released
        ticks answer L, logged events answer D, everything else at or
        below the dissemination horizon answers S.  Ticks beyond the
        horizon stay unanswered — the requester's curiosity will retry
        and ordinary dissemination usually wins the race.

        ``max_events`` caps the number of events in one reply; the
        unanswered suffix is simply left out and picked up by the
        requester's retry.  This cap, together with the requester's
        retry interval, paces mass recovery (the bounded catchup slope
        of Figure 7) instead of flooding the network.
        """
        update = KnowledgeUpdate(self.name)
        for iv in ranges:
            if max_events is not None and len(update.d_events) >= max_events:
                break
            start, end = iv.start, min(iv.end, self._disseminated)
            if start > end:
                continue
            if start < self.lost_below:
                l_end = min(end, self.lost_below - 1)
                update.l_ranges.append((start, l_end))
                start = l_end + 1
                if start > end:
                    continue
            events = self.log.read_range(start, end)
            if max_events is not None:
                budget = max_events - len(update.d_events)
                if len(events) > budget:
                    events = events[:budget]
                    # Cover only up to the last served event; the rest
                    # of the range stays unanswered for the retry.
                    end = events[-1].timestamp if events else start - 1
            if end < start:
                continue
            update.d_events.extend(events)
            covered = IntervalSet([(e.timestamp, e.timestamp) for e in events])
            for gap in covered.complement_within(start, end):
                update.s_ranges.append((gap.start, gap.end))
        return update

    # ------------------------------------------------------------------
    # Release protocol
    # ------------------------------------------------------------------
    def on_release_report(
        self, child: object, released: int, latest_delivered: int, epoch: int = 0
    ) -> None:
        """Fold a downstream child's release report and try to release.

        ``epoch`` lets a child legitimately regress its minima after a
        migrated subscription was installed under it; the released
        bound itself stays monotone (:meth:`apply_release`), the
        regression only prevents *future* release past the migrated
        subscription's floor.
        """
        self.release_agg.update(child, released, latest_delivered, epoch=epoch)
        self.apply_release()

    def apply_release(self) -> int:
        """Convert the releasable prefix to L; returns events chopped."""
        agg = self.release_agg.aggregate()
        if agg is None:
            return 0
        t_r, t_d = agg
        bound = self.policy.release_bound(self.current_time, t_r, t_d)
        if bound <= self._released_bound:
            return 0
        self._released_bound = bound
        return self.log.chop_below(bound + 1)

    @property
    def release_state(self) -> Optional[Tuple[int, int]]:
        """The pubend's current ``(Tr(p), Td(p))`` aggregate, if known."""
        return self.release_agg.aggregate()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """PHB crashed: staged events are lost; durable state survives."""
        self.events_lost_in_crash += len(self._pending)
        self._pending.clear()
        self.log.crash_reset()
        self._silence_timer.cancel()

    def recover(self) -> None:
        """Rebuild volatile state after a crash.

        The dissemination horizon restarts at the current time: the
        paper's silence flush never runs ahead of ``T(p)``, so nothing
        previously disseminated exceeds it, and ticks between the old
        horizon and now are recoverable through nacks.
        """
        now = self.current_time
        max_logged = self.log.max_timestamp
        self._last_assigned = max(max_logged or 0, now)
        self._disseminated = max(self._disseminated, self._last_assigned)
        self._silence_timer = self.scheduler.every(25.0, self._silence_flush)

    def close(self) -> None:
        self._silence_timer.cancel()
