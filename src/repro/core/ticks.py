"""Tick kinds of the knowledge stream.

Section 3: *"The knowledge stream ... contains four kinds of ticks:
Q (unknown), S (silence), D (data), and L (lost)."*

* **Q** — nothing is known about this timestamp yet.  Q is the default;
  a knowledge stream never transmits Q explicitly.
* **S** — there was no event at this timestamp, *or* there was one but
  it was filtered upstream and is irrelevant to this stream.
* **D** — an event, carried alongside the tick.
* **L** — the pubend has discarded the information (early release); a
  subscriber that still needed this tick receives a *gap message*.

Knowledge accumulation is monotone: Q can become S, D or L; S and D
are terminal for a given stream (with D dominating S when an upstream
refinement reveals an event a coarser filter had hidden); L only ever
appears as a prefix of time, because the release protocol converts a
growing prefix of the pubend's stream to L.
"""

from __future__ import annotations

import enum


class Tick(enum.Enum):
    """The four knowledge-stream tick kinds."""

    Q = "Q"  # unknown
    S = "S"  # silence / filtered
    D = "D"  # data (an event)
    L = "L"  # lost (released by the pubend)

    def is_known(self) -> bool:
        """True for every kind except Q."""
        return self is not Tick.Q

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tick.{self.name}"
