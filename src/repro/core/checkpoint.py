"""Checkpoint Tokens (CT) — the subscriber-owned vector clock.

Section 2: *"When a durable subscriber s first connects to the system,
it is provided a starting point (a timestamp) for each pubend in the
system.  This set of (pubend, timestamp) pairs is essentially a Vector
Clock, and we refer to it as the Checkpoint Token (CT) of subscriber
s."*

The CT is owned by the *subscriber*, not the messaging system: the
subscriber persists it in the same transaction that consumes messages,
acks it periodically, and presents it on reconnect.  The model is
deliberately more flexible than JMS — presenting a stale CT is legal
and yields duplicates/gaps only for already-acknowledged ticks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..util.errors import SubscriptionError


class CheckpointToken:
    """A mutable map ``pubend -> highest consumed timestamp``."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Mapping[str, int]] = None) -> None:
        self._clock: Dict[str, int] = dict(clock or {})

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, pubend: str, default: int = 0) -> int:
        """``CT(s, p)`` — current timestamp value for ``pubend``."""
        return self._clock.get(pubend, default)

    def pubends(self) -> Iterator[str]:
        return iter(self._clock)

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self._clock.items())

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict snapshot (wire format for connect/ack messages)."""
        return dict(self._clock)

    def copy(self) -> "CheckpointToken":
        return CheckpointToken(self._clock)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CheckpointToken):
            return NotImplemented
        return self._clock == other._clock

    def __len__(self) -> int:
        return len(self._clock)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointToken({self._clock!r})"

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def advance(self, pubend: str, timestamp: int) -> None:
        """Set ``CT(s, p) = timestamp``; must not regress.

        The subscriber calls this after consuming a message with
        timestamp ``timestamp`` and all preceding messages from that
        pubend (Section 2).
        """
        current = self._clock.get(pubend)
        if current is not None and timestamp < current:
            raise SubscriptionError(
                f"CT regression for {pubend}: {timestamp} < {current}"
            )
        self._clock[pubend] = timestamp

    def set_initial(self, pubend: str, timestamp: int) -> None:
        """Install a starting point for a pubend not yet tracked."""
        if pubend in self._clock:
            raise SubscriptionError(f"pubend {pubend} already has a CT entry")
        self._clock[pubend] = timestamp

    def merge_max(self, other: "CheckpointToken") -> None:
        """Pointwise maximum — used when recovering from stale replicas."""
        for pubend, t in other.items():
            if t > self._clock.get(pubend, -1):
                self._clock[pubend] = t

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def dominates(self, other: "CheckpointToken") -> bool:
        """True if this CT is >= ``other`` on every pubend ``other`` tracks."""
        return all(self.get(p, -1) >= t for p, t in other.items())
