"""Knowledge streams: a TickMap plus an in-order consumption cursor.

Every consumer of tick knowledge — the SHB's istream, the consolidated
stream and each catchup stream — follows the same discipline: knowledge
accumulates out of order, but *consumption* is strictly in timestamp
order up to the doubt horizon.  :class:`KnowledgeStream` packages that
pattern: :meth:`accumulate` folds in a :class:`KnowledgeUpdate`,
:meth:`advance` returns the newly-resolved runs in order and moves the
cursor, and consumed storage is forgotten to keep memory bounded.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from ..util.intervals import IntervalSet
from .events import Event
from .messages import KnowledgeUpdate
from .tickmap import Run, TickMap
from .ticks import Tick


class KnowledgeStream:
    """One pubend's knowledge with an in-order consumption cursor.

    ``consumed`` is the timestamp of the last tick handed to the
    consumer; it equals the stream's doubt horizon after every
    :meth:`advance`.
    """

    def __init__(self, pubend: str, consumed: int = 0) -> None:
        self.pubend = pubend
        self.tickmap = TickMap()
        self.consumed = consumed

    # ------------------------------------------------------------------
    # Accumulation
    # ------------------------------------------------------------------
    def accumulate(self, update: KnowledgeUpdate) -> None:
        """Fold a knowledge update into the map (idempotent, monotone)."""
        if update.pubend != self.pubend:
            raise ValueError(f"update for {update.pubend} on stream {self.pubend}")
        for start, end in update.l_ranges:
            # L is globally a prefix of time (the release protocol only
            # converts prefixes), so an L range extends the prefix.
            self.tickmap.set_lost_below(end + 1)
        for start, end in update.s_ranges:
            self.tickmap.set_s(start, end)
        for event in update.d_events:
            self.tickmap.set_d(event.timestamp, event)

    def accumulate_many(self, updates: Iterable[KnowledgeUpdate]) -> None:
        """Fold a whole batch of updates before any consumption.

        Batched links hand a list of updates to one receiver callback;
        folding them all first lets the consumer pump once over the
        combined doubt-horizon advance instead of once per update.
        """
        for update in updates:
            self.accumulate(update)

    def accumulate_event(self, event: Event) -> None:
        self.tickmap.set_d(event.timestamp, event)

    def accumulate_silence(self, start: int, end: int) -> None:
        self.tickmap.set_s(start, end)

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    @property
    def doubt_horizon(self) -> int:
        """Highest tick with everything in ``(consumed, tick]`` known."""
        return self.tickmap.doubt_horizon(self.consumed)

    @property
    def frontier(self) -> int:
        """The largest tick the stream knows anything about."""
        return max(self.tickmap.max_known(), self.consumed)

    def unknown_up_to(self, end: int) -> IntervalSet:
        """Q ranges between the cursor and ``end`` — nack candidates."""
        return self.tickmap.unknown_within(self.consumed + 1, end)

    def advance(self, limit: Optional[int] = None) -> List[Run]:
        """Consume every newly-resolved run, in order, up to ``limit``.

        Returns the consumed runs (D runs carry their events; S and L
        runs are coalesced).  The cursor moves to the end of the last
        returned run; consumed storage is forgotten.
        """
        horizon = self.doubt_horizon
        if limit is not None:
            horizon = min(horizon, limit)
        if horizon <= self.consumed:
            return []
        runs = [r for r in self.tickmap.runs_between(self.consumed + 1, horizon)
                if r.kind is not Tick.Q]
        self.consumed = horizon
        self.tickmap.forget_below(horizon + 1)
        return runs

    def peek_runs(self, end: int) -> Iterator[Run]:
        """Inspect runs from the cursor to ``end`` without consuming."""
        return self.tickmap.runs_between(self.consumed + 1, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KnowledgeStream {self.pubend} consumed={self.consumed} dh={self.doubt_horizon}>"
