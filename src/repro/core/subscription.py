"""Durable subscription records and the SHB's persistent registry.

A durable subscription survives disconnection: the SHB must remember —
across its own crashes — which subscriptions it hosts, their filters,
their numeric ids (used in PFS records) and their per-pubend released
(acknowledged) timestamps.  Section 4.1 keeps ``released(s, p)`` in
database tables; :class:`SubscriptionRegistry` stores everything in
:class:`~repro.storage.table.PersistentTable` rows with the same crash
semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..matching.predicates import Predicate
from ..storage.table import PersistentTable
from ..util.errors import SubscriptionError


@dataclass
class DurableSubscription:
    """An SHB's record of one durable subscription."""

    sub_id: str
    num: int                      # compact id used inside PFS records
    predicate: Predicate
    #: released(s, p): highest acknowledged timestamp per pubend.
    released: Dict[str, int] = field(default_factory=dict)
    #: Tick from which this SHB's PFS covers the subscription, per
    #: pubend: the constream's delivery cursor at the moment the
    #: subscription entered the matching engine.  Ticks below it were
    #: matched (and PFS-recorded) without this subscription, so the
    #: PFS's "no record ⇒ silence" claim is meaningless there — a
    #: catchup starting below it must refilter raw events instead of
    #: trusting PFS silence.  Nonzero after a mid-stream registration:
    #: reconnect-anywhere, or re-registration after this SHB lost an
    #: uncommitted registry in a crash.
    pfs_from: Dict[str, int] = field(default_factory=dict)
    connected: bool = False

    def released_for(self, pubend: str) -> int:
        return self.released.get(pubend, 0)


class SubscriptionRegistry:
    """All durable subscriptions hosted by one SHB, crash-persistent.

    Rows live in two tables sharing the SHB's table disk:

    * ``subs``   — ``sub_id -> (num, predicate, initial CT)``,
    * ``released`` — ``"{sub_id}/{pubend}" -> released(s, p)``.

    Acks are written dirty and committed in batches by the SHB (the
    experiments commit every 250 ms); a crash rolls back to the last
    commit, which only ever *under*-reports acknowledgments — safe,
    because redelivery below a subscriber's true CT is filtered by the
    subscriber's own token.
    """

    def __init__(self, subs_table: PersistentTable, released_table: PersistentTable) -> None:
        self._subs_table = subs_table
        self._released_table = released_table
        self._subs: Dict[str, DurableSubscription] = {}
        self._by_num: Dict[int, DurableSubscription] = {}
        self._next_num = 0
        #: Bumped on every membership change (create/drop/crash reset);
        #: lets per-match-set caches (constream num fan-out) detect that
        #: a ``sub_id -> num`` mapping they memoized may be stale.
        self.version = 0
        self._load()

    def _load(self) -> None:
        """Rebuild in-memory state from committed rows (recovery path)."""
        for sub_id, row in self._subs_table.committed_items():
            if len(row) == 3:
                num, predicate, pfs_from = row
            else:  # rows written before pfs_from existed
                num, predicate = row
                pfs_from = {}
            sub = DurableSubscription(sub_id, num, predicate, pfs_from=dict(pfs_from))
            self._subs[sub_id] = sub
            self._by_num[num] = sub
            self._next_num = max(self._next_num, num + 1)
        for key, value in self._released_table.committed_items():
            sub_id, pubend = key.rsplit("/", 1)
            sub = self._subs.get(sub_id)
            if sub is not None:
                sub.released[pubend] = value

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def create(
        self,
        sub_id: str,
        predicate: Predicate,
        pfs_from: Optional[Dict[str, int]] = None,
    ) -> DurableSubscription:
        """Register a brand-new durable subscription.

        ``pfs_from``: per-pubend registration cursor (see
        :class:`DurableSubscription`); persisted with the row so a
        reconnect after any number of SHB crashes still knows where
        PFS coverage for this subscription begins.
        """
        if sub_id in self._subs:
            raise SubscriptionError(f"subscription {sub_id} already exists")
        sub = DurableSubscription(
            sub_id, self._next_num, predicate, pfs_from=dict(pfs_from or {})
        )
        self._next_num += 1
        self.version += 1
        self._subs[sub_id] = sub
        self._by_num[sub.num] = sub
        self._subs_table.put(sub_id, (sub.num, predicate, dict(sub.pfs_from)))
        return sub

    def set_pfs_from(self, sub_id: str, pfs_from: Dict[str, int]) -> None:
        """Raise the row's PFS-coverage cursors (monotone, persisted).

        A migration destination finalizes its coverage claim only after
        the subscription's filter is confirmed applied at the tree root
        (see SHB._on_subscription_synced); the raised cursors must reach
        the same row the recovery path reloads, so the row is rewritten.
        The caller commits.
        """
        sub = self._subs.get(sub_id)
        if sub is None:
            raise SubscriptionError(f"unknown subscription {sub_id}")
        changed = False
        for pubend, t in pfs_from.items():
            if t > sub.pfs_from.get(pubend, 0):
                sub.pfs_from[pubend] = t
                changed = True
        if changed:
            self._subs_table.put(
                sub_id, (sub.num, sub.predicate, dict(sub.pfs_from))
            )

    def drop(self, sub_id: str) -> None:
        """Destroy a durable subscription (unsubscribe)."""
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            return
        self.version += 1
        self._by_num.pop(sub.num, None)
        self._subs_table.delete(sub_id)
        for pubend in list(sub.released):
            self._released_table.delete(f"{sub_id}/{pubend}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, sub_id: str) -> Optional[DurableSubscription]:
        return self._subs.get(sub_id)

    def by_num(self, num: int) -> Optional[DurableSubscription]:
        return self._by_num.get(num)

    def all(self) -> Iterator[DurableSubscription]:
        return iter(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subs

    # ------------------------------------------------------------------
    # Acknowledgments
    # ------------------------------------------------------------------
    def ack(self, sub_id: str, pubend: str, timestamp: int) -> None:
        """Record released(s, p) = timestamp (monotone; stale acks ignored)."""
        sub = self._subs.get(sub_id)
        if sub is None:
            raise SubscriptionError(f"unknown subscription {sub_id}")
        if timestamp <= sub.released.get(pubend, -1):
            return
        sub.released[pubend] = timestamp
        self._released_table.put(f"{sub_id}/{pubend}", timestamp)

    def min_released(self, pubend: str) -> Optional[int]:
        """``min over all hosted subscriptions of released(s, p)``.

        Includes disconnected subscriptions — that is the whole point
        of the release protocol.  None when the SHB hosts none.
        """
        values = [sub.released_for(pubend) for sub in self._subs.values()]
        return min(values) if values else None

    def commit(self, on_durable=None) -> None:
        """Batch-commit registry and ack tables."""
        self._subs_table.commit()
        self._released_table.commit(on_durable)

    def crash_reset(self) -> None:
        self._subs_table.crash_reset()
        self._released_table.crash_reset()
        self._subs.clear()
        self._by_num.clear()
        self._next_num = 0
        self.version += 1
        self._load()
