"""Durable subscription records and the SHB's persistent registry.

A durable subscription survives disconnection: the SHB must remember —
across its own crashes — which subscriptions it hosts, their filters,
their numeric ids (used in PFS records) and their per-pubend released
(acknowledged) timestamps.  Section 4.1 keeps ``released(s, p)`` in
database tables; :class:`SubscriptionRegistry` stores everything in
:class:`~repro.storage.table.PersistentTable` rows with the same crash
semantics.

Representation notes (scale work, representation-only — nothing here
changes protocol behaviour):

* :class:`DurableSubscription` rows are ``__slots__`` dataclasses and
  their ``sub_id`` strings are interned, so 10^5 hosted subscriptions
  do not pay a per-row ``__dict__``.
* Predicates are deduplicated through :func:`intern_predicate` — the
  registry-side extension of the shared-predicate-signature scheme in
  :mod:`repro.matching.aggregate`: 10k subscribers sharing 500 distinct
  filters reference 500 predicate objects, not 10k equal copies.
* Registration-cursor maps (``pfs_from``) are deduplicated through
  :func:`intern_cursor_map` and shared copy-on-write between the row
  and its persisted table value — most subscriptions registered at the
  same delivery cursor reference one map.
* ``released(s, p)`` lives in a registry-level column store (pubend ->
  subscriber num -> tick) instead of a per-row dict: one dict entry
  per (row, pubend) rather than a whole dict object per row.
* ``min_released`` is sharded by subscriber-num range (see
  :data:`SHARD_BITS`): each shard caches its own minimum and an ack
  only invalidates the acking subscriber's shard, so the periodic
  release report touches the shards with fresh acks instead of walking
  every hosted row.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..matching.predicates import Predicate
from ..storage.table import PersistentTable
from ..util.errors import SubscriptionError

#: Subscriber-num shard width: nums ``[k << SHARD_BITS, (k+1) << SHARD_BITS)``
#: share shard ``k``.  256 is wide enough that shard overhead is noise at
#: 10^2 subscribers and narrow enough that 10^5 subscribers spread over
#: ~400 independently-cached shards.
SHARD_BITS = 8

#: Canonical instance per distinct (value-equal) predicate.  Bounded:
#: real deployments have orders of magnitude fewer distinct filters than
#: subscribers, which is the entire point of interning them.
_PREDICATE_POOL: Dict[Predicate, Predicate] = {}
_PREDICATE_POOL_CAP = 1 << 16


def intern_predicate(predicate: Predicate) -> Predicate:
    """Return the canonical shared instance for a value-equal predicate.

    Predicates are frozen dataclasses (hashable by value), so equal
    filters can share one object.  Unhashable predicates — the same
    fallback the aggregate's signature scheme uses — are returned
    as-is, as is everything once the pool is full.
    """
    try:
        pooled = _PREDICATE_POOL.get(predicate)
        if pooled is not None:
            return pooled
        if len(_PREDICATE_POOL) < _PREDICATE_POOL_CAP:
            _PREDICATE_POOL[predicate] = predicate
        return predicate
    except TypeError:
        return predicate


#: Canonical instance per distinct pubend->tick map.  Registration
#: cursors repeat massively (every subscription registered at the same
#: delivery cursor gets the same map), so rows share one frozen-by-
#: convention dict instead of each holding a private copy.  Holders
#: must treat an interned map as immutable: raising a cursor goes
#: through copy-on-write (see :meth:`SubscriptionRegistry.set_pfs_from`).
_MAP_POOL: Dict[tuple, Dict[str, int]] = {}
_MAP_POOL_CAP = 1 << 16


def intern_cursor_map(cursors: Dict[str, int]) -> Dict[str, int]:
    """Return the canonical shared instance for a value-equal cursor map."""
    key = tuple(sorted(cursors.items()))
    pooled = _MAP_POOL.get(key)
    if pooled is not None:
        return pooled
    canonical = {sys.intern(p): t for p, t in cursors.items()}
    if len(_MAP_POOL) < _MAP_POOL_CAP:
        _MAP_POOL[key] = canonical
    return canonical


def _shard_of(num: int) -> int:
    return num >> SHARD_BITS


@dataclass(slots=True)
class DurableSubscription:
    """An SHB's record of one durable subscription."""

    sub_id: str
    num: int                      # compact id used inside PFS records
    predicate: Predicate
    #: released(s, p) column store, *shared with the hosting registry*
    #: (pubend -> subscriber num -> highest acknowledged timestamp).
    #: The row holds a pointer so released_for() stays a row method;
    #: the registry owns all mutation.
    released_columns: Dict[str, Dict[int, int]] = field(default_factory=dict)
    #: Tick from which this SHB's PFS covers the subscription, per
    #: pubend: the constream's delivery cursor at the moment the
    #: subscription entered the matching engine.  Ticks below it were
    #: matched (and PFS-recorded) without this subscription, so the
    #: PFS's "no record ⇒ silence" claim is meaningless there — a
    #: catchup starting below it must refilter raw events instead of
    #: trusting PFS silence.  Nonzero after a mid-stream registration:
    #: reconnect-anywhere, or re-registration after this SHB lost an
    #: uncommitted registry in a crash.
    pfs_from: Dict[str, int] = field(default_factory=dict)
    connected: bool = False

    def released_for(self, pubend: str) -> int:
        column = self.released_columns.get(pubend)
        return column.get(self.num, 0) if column is not None else 0


class SubscriptionRegistry:
    """All durable subscriptions hosted by one SHB, crash-persistent.

    Rows live in two tables sharing the SHB's table disk:

    * ``subs``   — ``sub_id -> (num, predicate, initial CT)``,
    * ``released`` — ``"{sub_id}/{pubend}" -> released(s, p)``.

    Acks are written dirty and committed in batches by the SHB (the
    experiments commit every 250 ms); a crash rolls back to the last
    commit, which only ever *under*-reports acknowledgments — safe,
    because redelivery below a subscriber's true CT is filtered by the
    subscriber's own token.
    """

    def __init__(self, subs_table: PersistentTable, released_table: PersistentTable) -> None:
        self._subs_table = subs_table
        self._released_table = released_table
        self._subs: Dict[str, DurableSubscription] = {}
        #: released(s, p) column store: pubend -> num -> tick.  Shared
        #: by reference with every hosted row (see DurableSubscription).
        self._released: Dict[str, Dict[int, int]] = {}
        self._next_num = 0
        #: Bumped on every membership change (create/drop/crash reset);
        #: lets per-match-set caches (constream num fan-out) detect that
        #: a ``sub_id -> num`` mapping they memoized may be stale.
        self.version = 0
        #: shard id -> {num -> row} membership, keyed by num range.
        self._shards: Dict[int, Dict[int, DurableSubscription]] = {}
        #: pubend -> shard id -> cached min released over that shard.
        #: Invalidation: membership changes clear whole pubend caches;
        #: an ack evicts only the acking row's shard (and only when the
        #: raised value could have been the shard minimum — acks are
        #: monotone, so a row strictly above the cached min cannot be).
        self._min_cache: Dict[str, Dict[int, int]] = {}
        self._load()

    def _load(self) -> None:
        """Rebuild in-memory state from committed rows (recovery path)."""
        for sub_id, row in self._subs_table.committed_items():
            if len(row) == 3:
                num, predicate, pfs_from = row
            else:  # rows written before pfs_from existed
                num, predicate = row
                pfs_from = {}
            sub_id = sys.intern(sub_id)
            sub = DurableSubscription(
                sub_id, num, intern_predicate(predicate),
                released_columns=self._released,
                pfs_from=intern_cursor_map(pfs_from),
            )
            self._subs[sub_id] = sub
            self._shards.setdefault(_shard_of(num), {})[num] = sub
            self._next_num = max(self._next_num, num + 1)
        for key, value in self._released_table.committed_items():
            sub_id, pubend = key.rsplit("/", 1)
            sub = self._subs.get(sub_id)
            if sub is not None:
                self._released.setdefault(sys.intern(pubend), {})[sub.num] = value

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def create(
        self,
        sub_id: str,
        predicate: Predicate,
        pfs_from: Optional[Dict[str, int]] = None,
    ) -> DurableSubscription:
        """Register a brand-new durable subscription.

        ``pfs_from``: per-pubend registration cursor (see
        :class:`DurableSubscription`); persisted with the row so a
        reconnect after any number of SHB crashes still knows where
        PFS coverage for this subscription begins.
        """
        if sub_id in self._subs:
            raise SubscriptionError(f"subscription {sub_id} already exists")
        sub_id = sys.intern(sub_id)
        predicate = intern_predicate(predicate)
        sub = DurableSubscription(
            sub_id, self._next_num, predicate,
            released_columns=self._released,
            pfs_from=intern_cursor_map(pfs_from or {}),
        )
        self._next_num += 1
        self.version += 1
        self._subs[sub_id] = sub
        self._shards.setdefault(_shard_of(sub.num), {})[sub.num] = sub
        self._min_cache.clear()
        # The table row references the same interned map as the row
        # object; set_pfs_from replaces both copy-on-write, so neither
        # is ever mutated in place.
        self._subs_table.put(sub_id, (sub.num, predicate, sub.pfs_from))
        return sub

    def set_pfs_from(self, sub_id: str, pfs_from: Dict[str, int]) -> None:
        """Raise the row's PFS-coverage cursors (monotone, persisted).

        A migration destination finalizes its coverage claim only after
        the subscription's filter is confirmed applied at the tree root
        (see SHB._on_subscription_synced); the raised cursors must reach
        the same row the recovery path reloads, so the row is rewritten.
        The caller commits.
        """
        sub = self._subs.get(sub_id)
        if sub is None:
            raise SubscriptionError(f"unknown subscription {sub_id}")
        updated = dict(sub.pfs_from)
        changed = False
        for pubend, t in pfs_from.items():
            if t > updated.get(pubend, 0):
                updated[sys.intern(pubend)] = t
                changed = True
        if changed:
            # Copy-on-write: interned maps are shared across rows (and
            # with the persisted table value), so never mutate in place.
            sub.pfs_from = intern_cursor_map(updated)
            self._subs_table.put(sub_id, (sub.num, sub.predicate, sub.pfs_from))

    def drop(self, sub_id: str) -> None:
        """Destroy a durable subscription (unsubscribe)."""
        sub = self._subs.pop(sub_id, None)
        if sub is None:
            return
        self.version += 1
        shard = self._shards.get(_shard_of(sub.num))
        if shard is not None:
            shard.pop(sub.num, None)
            if not shard:
                del self._shards[_shard_of(sub.num)]
        self._min_cache.clear()
        self._subs_table.delete(sub_id)
        for pubend, column in self._released.items():
            if column.pop(sub.num, None) is not None:
                self._released_table.delete(f"{sub_id}/{pubend}")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, sub_id: str) -> Optional[DurableSubscription]:
        return self._subs.get(sub_id)

    def by_num(self, num: int) -> Optional[DurableSubscription]:
        shard = self._shards.get(_shard_of(num))
        return shard.get(num) if shard is not None else None

    def all(self) -> Iterator[DurableSubscription]:
        return iter(self._subs.values())

    def __len__(self) -> int:
        return len(self._subs)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._subs

    # ------------------------------------------------------------------
    # Acknowledgments
    # ------------------------------------------------------------------
    def ack(self, sub_id: str, pubend: str, timestamp: int) -> None:
        """Record released(s, p) = timestamp (monotone; stale acks ignored)."""
        sub = self._subs.get(sub_id)
        if sub is None:
            raise SubscriptionError(f"unknown subscription {sub_id}")
        column = self._released.setdefault(sys.intern(pubend), {})
        previous = column.get(sub.num, -1)
        if timestamp <= previous:
            return
        column[sub.num] = timestamp
        self._released_table.put(f"{sub_id}/{pubend}", timestamp)
        cache = self._min_cache.get(pubend)
        if cache is not None:
            shard_id = _shard_of(sub.num)
            cached = cache.get(shard_id)
            # released_for() treats a missing entry as 0, so the row's
            # effective old value is max(previous, 0).
            if cached is not None and max(previous, 0) <= cached:
                del cache[shard_id]

    def min_released(self, pubend: str) -> Optional[int]:
        """``min over all hosted subscriptions of released(s, p)``.

        Includes disconnected subscriptions — that is the whole point
        of the release protocol.  None when the SHB hosts none.
        Computed per num-range shard with cached shard minima; only
        shards invalidated since the last call are rescanned.
        """
        if not self._subs:
            return None
        cache = self._min_cache.setdefault(pubend, {})
        column = self._released.get(pubend, {})
        best: Optional[int] = None
        for shard_id, members in self._shards.items():
            m = cache.get(shard_id)
            if m is None:
                m = min(column.get(num, 0) for num in members)
                cache[shard_id] = m
            if best is None or m < best:
                best = m
        return best

    def commit(self, on_durable=None) -> None:
        """Batch-commit registry and ack tables."""
        self._subs_table.commit()
        self._released_table.commit(on_durable)

    def crash_reset(self) -> None:
        self._subs_table.crash_reset()
        self._released_table.crash_reset()
        self._subs.clear()
        self._released.clear()
        self._shards.clear()
        self._min_cache.clear()
        self._next_num = 0
        self.version += 1
        self._load()
