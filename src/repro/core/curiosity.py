"""Curiosity streams: turning Q ticks into nacks, with consolidation.

Section 3: *"Intermediate knowledge streams serve as caches of data
that increase scalability of recovery, by responding to nacks, and
curiosity streams consolidate nacks from multiple SHBs."*

A :class:`CuriosityStream` tracks the tick ranges its owner *wants*
(is curious about), emits nacks for them through a caller-supplied
send function, and retries on a timer until the knowledge arrives.
Retry pacing is what prevents a storm of duplicate nacks: a range that
has been nacked recently is not re-nacked until ``retry_ms`` passes.

Consolidation across multiple downstream requesters (the intermediate
broker's job) is provided by :class:`NackConsolidator`, which remembers
which downstream links asked for which ranges so replies can be routed
back, while forwarding each range upstream only once per retry window.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, List, Optional

from ..net.simtime import PeriodicHandle, Scheduler
from ..util.intervals import IntervalSet


class CuriosityStream:
    """Tracks wanted tick ranges for one pubend and emits paced nacks.

    Re-nack pacing hardens against lossy links: when the same ranges
    keep being re-nacked without progress (the retry *streak*), the
    retry interval grows by ``backoff_factor`` per streak step up to
    ``backoff_max_ms``, optionally jittered by up to ``jitter_ms`` (to
    de-synchronize recovering streams), and once the streak exceeds
    ``retry_budget`` further re-nacks are suppressed until knowledge
    for a tracked range actually arrives.  The defaults (factor 1.0,
    no jitter, no budget) reproduce the fixed-interval behavior
    exactly, draw no random numbers, and leave healthy-run transcripts
    untouched.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        pubend: str,
        send_nack: Callable[[IntervalSet], None],
        poll_ms: float = 20.0,
        retry_ms: float = 1000.0,
        backoff_factor: float = 1.0,
        backoff_max_ms: Optional[float] = None,
        jitter_ms: float = 0.0,
        retry_budget: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if jitter_ms < 0.0:
            raise ValueError("jitter_ms must be non-negative")
        self.scheduler = scheduler
        self.pubend = pubend
        self._send_nack = send_nack
        self.poll_ms = poll_ms
        self.retry_ms = retry_ms
        self.backoff_factor = backoff_factor
        self.backoff_max_ms = (
            backoff_max_ms if backoff_max_ms is not None else retry_ms * 8.0
        )
        self.jitter_ms = jitter_ms
        self.retry_budget = retry_budget
        self._rng = rng
        self._wanted = IntervalSet()
        # Recently-nacked ranges, kept in two generations rotated every
        # ``retry_ms``: a range is suppressed for between one and two
        # retry periods after its nack.  Two normalized sets make the
        # re-nack check two set differences regardless of how many
        # nacks were sent — this is on the critical path of mass
        # catchup with hundreds of concurrent streams.
        self._gen_cur = IntervalSet()
        self._gen_prev = IntervalSet()
        self._rotated_at = scheduler.now
        self._rotation_interval = retry_ms
        self._dirty = True  # something changed since the last poll
        self._timer: Optional[PeriodicHandle] = None
        # Ranges nacked at least once and not yet resolved: a due range
        # intersecting this set is a *retry*, which advances the streak.
        self._renacked = IntervalSet()
        self._retry_streak = 0
        self.nacks_sent = 0
        self.ticks_nacked = 0
        self.ranges_nacked = 0  # interval fragments across all nacks
        self.renacks = 0  # nacks that repeated an already-nacked range
        self.budget_suppressed = 0  # re-nacks withheld by the retry budget

    # ------------------------------------------------------------------
    # Interest management
    # ------------------------------------------------------------------
    def want(self, start: int, end: int) -> None:
        """Declare curiosity about every tick in ``[start, end]``."""
        self._wanted.add(start, end)
        self._dirty = True
        self._ensure_timer()

    def want_set(self, ranges: IntervalSet) -> None:
        self._wanted.update(ranges)
        self._dirty = True
        if self._wanted:
            self._ensure_timer()

    def set_want(self, ranges: IntervalSet) -> None:
        """Replace the wanted set wholesale.

        Convenient for owners that recompute their Q gaps from scratch
        (the SHB's head-knowledge gap check): ranges that became known
        since the last call drop out automatically.
        """
        self._wanted = ranges.copy()
        self._dirty = True
        if self._renacked:
            # Ranges that dropped out of the recomputed want set were
            # satisfied some other way — that counts as progress.
            pruned = self._renacked.intersection(self._wanted)
            if pruned.tick_count() != self._renacked.tick_count():
                self._retry_streak = 0
            self._renacked = pruned
        if self._wanted:
            self._ensure_timer()

    def resolve(self, start: int, end: int) -> None:
        """Knowledge for ``[start, end]`` arrived; stop asking for it."""
        self._wanted.remove(start, end)
        self._dirty = True
        if self._renacked and self._renacked.intersection(
            IntervalSet.span(start, end)
        ):
            self._renacked.remove(start, end)
            self._retry_streak = 0  # progress: retries are working again

    def resolve_below(self, t: int) -> None:
        """Everything below ``t`` is resolved (cursor advanced past it)."""
        self._wanted.chop_below(t)
        self._dirty = True
        if self._renacked and self._renacked.min() < t:
            self._renacked.chop_below(t)
            self._retry_streak = 0

    @property
    def outstanding(self) -> IntervalSet:
        """Ranges still wanted (snapshot)."""
        return self._wanted.copy()

    @property
    def outstanding_ticks(self) -> int:
        return self._wanted.tick_count()

    # ------------------------------------------------------------------
    # Nack pacing
    # ------------------------------------------------------------------
    def _ensure_timer(self) -> None:
        if self._timer is None:
            self._timer = self.scheduler.every(self.poll_ms, self._poll, first_delay=0.0)

    def _poll(self) -> None:
        now = self.scheduler.now
        if now - self._rotated_at >= self._rotation_interval:
            self._gen_prev = self._gen_cur
            self._gen_cur = IntervalSet()
            self._rotated_at = now
            self._dirty = True
        if not self._wanted:
            if not self._gen_cur and not self._gen_prev and self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        if not self._dirty:
            return
        self._dirty = False
        due = self._wanted.difference(self._gen_cur)
        due.difference_update(self._gen_prev)
        if not due:
            return
        repeats = due.intersection(self._renacked) if self._renacked else IntervalSet()
        if repeats:
            self._retry_streak += 1
            if self.retry_budget is not None and self._retry_streak > self.retry_budget:
                # Budget exhausted: withhold the repeats (fresh curiosity
                # still flows).  Knowledge arriving for a tracked range
                # resets the streak and re-arms retries.
                self.budget_suppressed += 1
                self._gen_cur.update(repeats)
                due.difference_update(repeats)
                if not due:
                    self._rotation_interval = self._next_interval()
                    return
            else:
                self.renacks += 1
        self.nacks_sent += 1
        self.ticks_nacked += due.tick_count()
        self.ranges_nacked += len(due)
        self._gen_cur.update(due)
        self._renacked.update(due)
        self._send_nack(due)
        self._rotation_interval = self._next_interval()

    def _next_interval(self) -> float:
        interval = self.retry_ms
        if self.backoff_factor > 1.0 and self._retry_streak:
            interval = min(
                self.retry_ms * self.backoff_factor**self._retry_streak,
                self.backoff_max_ms,
            )
        if self.jitter_ms > 0.0 and self._rng is not None:
            interval += self._rng.uniform(0.0, self.jitter_ms)
        return interval

    def kick(self) -> None:
        """Forget suppression and re-nack everything outstanding now.

        Called when a severed upstream link is restored: nacks in flight
        on the old connection died with it, so waiting out the retry
        window would only add latency to recovery.
        """
        if not self._wanted:
            return
        self._gen_cur.clear()
        self._gen_prev.clear()
        self._retry_streak = 0
        self._rotation_interval = self.retry_ms
        self._rotated_at = self.scheduler.now
        self._dirty = True
        self._ensure_timer()

    @property
    def coalescing_ratio(self) -> float:
        """Mean ticks carried per transmitted nack range.

        ``IntervalSet`` normalization means a contiguous run of doubt
        ships as one range however it accumulated; this reports how much
        that collapses the wire traffic (1.0 = no coalescing win).
        """
        if self.ranges_nacked == 0:
            return 0.0
        return self.ticks_nacked / self.ranges_nacked

    def close(self) -> None:
        """Stop the nack timer (stream discarded on catchup switchover)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._wanted.clear()
        self._gen_cur.clear()
        self._gen_prev.clear()
        self._renacked.clear()
        self._retry_streak = 0


class NackConsolidator:
    """Consolidates nacks from multiple downstream requesters.

    Used by intermediate brokers and by the SHB itself (whose istream,
    constream-recovery and many catchup streams all generate curiosity
    for the same upstream link).  ``register`` records who asked for
    what; ``to_forward`` computes the portion not already forwarded
    within the retry window; ``route`` answers which requesters care
    about an arriving knowledge range.
    """

    def __init__(
        self, scheduler: Scheduler, retry_ms: float = 1000.0, suppress: bool = True
    ) -> None:
        self.scheduler = scheduler
        self.retry_ms = retry_ms
        #: When False, consolidation is disabled: every nack forwards
        #: upstream (the ablation baseline for the Figure 8 claim).
        self.suppress = suppress
        self._interest: Dict[Hashable, IntervalSet] = {}
        # Two-generation suppression of duplicate upstream forwards
        # (same scheme as CuriosityStream; see there).
        self._fwd_cur = IntervalSet()
        self._fwd_prev = IntervalSet()
        self._rotated_at = scheduler.now
        self.consolidated_ticks = 0
        self.forwarded_ticks = 0

    def register(self, requester: Hashable, ranges: IntervalSet) -> None:
        """Record that ``requester`` wants ``ranges``."""
        self._interest.setdefault(requester, IntervalSet()).update(ranges)

    def to_forward(self, ranges: IntervalSet) -> IntervalSet:
        """The sub-ranges that must be forwarded upstream now.

        Ranges already forwarded within the retry window are suppressed
        (this is the nack consolidation the paper credits for the low
        PHB overhead during mass catchup, Figure 8).
        """
        if not self.suppress:
            self.forwarded_ticks += ranges.tick_count()
            return ranges.copy()
        now = self.scheduler.now
        if now - self._rotated_at >= self.retry_ms:
            self._fwd_prev = self._fwd_cur
            self._fwd_cur = IntervalSet()
            self._rotated_at = now
        asked = ranges.tick_count()
        due = ranges.difference(self._fwd_cur)
        due.difference_update(self._fwd_prev)
        if due:
            self._fwd_cur.update(due)
            self.forwarded_ticks += due.tick_count()
        self.consolidated_ticks += asked - due.tick_count()
        return due

    def interest_of(self, requester: Hashable) -> Optional[IntervalSet]:
        """The ranges ``requester`` is still waiting for (live view)."""
        return self._interest.get(requester)

    def route(self, start: int, end: int) -> List[Hashable]:
        """Requesters whose registered interest intersects ``[start, end]``."""
        span = IntervalSet.span(start, end)
        out = []
        for requester, interest in self._interest.items():
            if interest.intersection(span):
                out.append(requester)
        return out

    def satisfy(self, start: int, end: int) -> None:
        """Knowledge for ``[start, end]`` was delivered to requesters."""
        self.satisfy_set(IntervalSet.span(start, end))

    def satisfy_set(self, ranges: IntervalSet) -> None:
        """Batch form of :meth:`satisfy` — one pass per requester."""
        empty = []
        for requester, interest in self._interest.items():
            interest.difference_update(ranges)
            if not interest:
                empty.append(requester)
        for requester in empty:
            del self._interest[requester]
        # The answered ranges are no longer in flight: a *later* nack
        # for them (a slower requester that registered after the reply
        # passed) must be forwarded, not suppressed.
        self._fwd_cur.difference_update(ranges)
        self._fwd_prev.difference_update(ranges)

    def drop_requester(self, requester: Hashable) -> None:
        self._interest.pop(requester, None)

    def reset_suppression(self) -> None:
        """Forget the forwarded-recently window (upstream link restored).

        Forwards suppressed because "we already asked" are wrong once
        the connection that carried the ask is gone; the next
        :meth:`to_forward` after this sends everything due again.
        """
        self._fwd_cur.clear()
        self._fwd_prev.clear()
        self._rotated_at = self.scheduler.now

    @property
    def pending_requesters(self) -> int:
        return len(self._interest)
