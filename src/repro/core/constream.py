"""The consolidated stream (Section 4.1).

One constream per (SHB, pubend) drives *all* connected subscribers that
are not in catchup mode — the consolidation that lets an SHB host many
subscribers.  It maintains:

* ``latestDelivered(p)`` — the latest event delivered to all
  non-catchup subscribers **and** durably logged in the PFS.  Persisted
  in a table so it survives SHB crashes.
* the doubt horizon — highest timestamp with no Q below it; events
  between ``latestDelivered`` and the horizon are delivered in sequence.
* ``released(s, p)`` per subscriber (held in the
  :class:`~repro.core.subscription.SubscriptionRegistry`) and the
  derived ``released(p) = min(latestDelivered, min_s released(s, p))``.

Delivery discipline: an event is *delivered* to a subscriber the moment
it is enqueued on the FIFO link (no application-level ack), but
delivery to the **PFS** completes only when the record is durable —
``latestDelivered`` advances to a tick only once every D tick at or
below it has a durable PFS record.  The constream never emits a gap
message: the release protocol guarantees no tick above
``latestDelivered`` is ever converted to L, and an L run reaching this
stream is a protocol violation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from ..matching.engine import MatchingEngine
from ..metrics.trace import event_tracer
from ..net.simtime import Scheduler
from ..pfs.pfs import PersistentFilteringSubsystem
from ..storage.table import PersistentTable
from ..util.errors import ProtocolError
from .knowledge import KnowledgeStream
from .messages import EventMessage, KnowledgeUpdate, SilenceMessage
from .subscription import SubscriptionRegistry
from .ticks import Tick

DeliverFn = Callable[[str, object], None]
DeliverBatchFn = Callable[[str, List[EventMessage]], None]


class ConsolidatedStream:
    """The shared delivery stream for non-catchup subscribers."""

    def __init__(
        self,
        pubend: str,
        scheduler: Scheduler,
        registry: SubscriptionRegistry,
        engine: MatchingEngine,
        pfs: PersistentFilteringSubsystem,
        meta_table: PersistentTable,
        deliver: DeliverFn,
        silence_interval_ms: float = 100.0,
        silence_lag_ms: int = 200,
        deliver_batch: Optional[DeliverBatchFn] = None,
    ) -> None:
        self.pubend = pubend
        self.scheduler = scheduler
        self.registry = registry
        self.engine = engine
        self.pfs = pfs
        self.meta_table = meta_table
        self.deliver = deliver
        #: When set, a pump hands each subscriber its matched events for
        #: the whole doubt-horizon advance as one list (one broker CPU
        #: job and one wire batch per subscriber per pump) instead of
        #: one ``deliver`` call per event.
        self.deliver_batch = deliver_batch
        self.silence_lag_ms = silence_lag_ms
        self._meta_key = f"latestDelivered:{pubend}"
        #: Recovered from the committed table on construction: after an
        #: SHB crash the constream resumes from the durable value.
        self.latest_delivered: int = meta_table.get(self._meta_key, 0)
        self.knowledge = KnowledgeStream(pubend, consumed=self.latest_delivered)
        self._pending_pfs: Deque[int] = deque()  # D ticks awaiting PFS durability
        self._non_catchup: Dict[str, int] = {}   # sub_id -> last message timestamp
        self._listeners: List[Callable[[int], None]] = []
        self.events_delivered = 0
        self.silences_sent = 0
        self.expired_skipped = 0
        self.fanout_batches = 0  # deliver_batch calls issued
        self._pumping = False
        self._repump = False
        # Frozen match-set reuse: the engine memoizes match results per
        # event as shared frozensets, so consecutive ticks matching the
        # same subscriber set hand back the *same* object — memoize the
        # derived per-set work too.  ``_nums_cache`` (match set -> PFS
        # nums, in the set's own iteration order) is guarded by the
        # registry version, since drop/re-create can rebind a sub_id to
        # a new num; ``_order_cache`` (match set -> sorted fan-out
        # order) depends on nothing but the set itself.
        self._nums_cache: Dict[frozenset, List[int]] = {}
        self._nums_cache_version = registry.version
        self._order_cache: Dict[frozenset, List[str]] = {}
        self._tracer = event_tracer(scheduler)
        self._silence_timer = scheduler.every(silence_interval_ms, self._silence_tick)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def add_non_catchup(self, sub_id: str, floor: Optional[int] = None) -> None:
        """A connected subscriber joins (new, or finished catching up).

        ``floor`` is the subscriber's resume point: no tick at or below
        it is delivered.  It defaults to the current delivery cursor
        (right for catchup switchover and brand-new subscriptions) but
        can be *ahead* of it — an SHB recovering from a crash replays
        from its committed latestDelivered, while a reconnecting
        subscriber's CT reflects everything the previous incarnation
        already delivered; redelivering would violate exactly-once.
        """
        if floor is None:
            floor = self.delivered_cursor
        self._non_catchup[sub_id] = max(floor, self.delivered_cursor)

    def remove_subscriber(self, sub_id: str) -> None:
        """Subscriber disconnected (it becomes catchup on reconnect)."""
        self._non_catchup.pop(sub_id, None)

    @property
    def non_catchup_count(self) -> int:
        return len(self._non_catchup)

    def is_non_catchup(self, sub_id: str) -> bool:
        return sub_id in self._non_catchup

    def on_latest_delivered(self, fn: Callable[[int], None]) -> None:
        """Register a listener for latestDelivered advances."""
        self._listeners.append(fn)

    def remove_latest_delivered_listener(self, fn: Callable[[int], None]) -> None:
        """Deregister a listener (catchup streams do this on switchover)."""
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Knowledge intake and delivery
    # ------------------------------------------------------------------
    @property
    def doubt_horizon(self) -> int:
        return self.knowledge.doubt_horizon

    def accumulate(self, update: KnowledgeUpdate) -> None:
        self.knowledge.accumulate(update)
        self.pump()

    def accumulate_many(self, updates: Iterable[KnowledgeUpdate]) -> None:
        """Fold a batch of updates, then pump once over the combined
        advance — the intake half of batched delivery."""
        self.knowledge.accumulate_many(updates)
        self.pump()

    @property
    def delivered_cursor(self) -> int:
        """The subscriber-delivery cursor: every tick at or below it has
        been pumped (enqueued to matching non-catchup subscribers and
        written to the PFS, though not necessarily PFS-durable yet).

        ``latest_delivered`` trails this by the PFS sync window; catchup
        switchover and new-subscriber starting points use this cursor,
        while crash recovery and the release protocol use the durable
        ``latest_delivered``.
        """
        return self.knowledge.consumed

    def pump(self) -> None:
        """Deliver every newly-resolved tick in order (Section 4.1).

        Re-entrant calls (e.g. from a synchronous PFS-durability
        callback of a write issued inside the pump) are deferred so
        delivery order is preserved: the outer invocation drains until
        no new knowledge remains.
        """
        if self._pumping:
            self._repump = True
            return
        self._pumping = True
        try:
            while True:
                self._repump = False
                self._pump_once()
                if not self._repump:
                    break
        finally:
            self._pumping = False

    def _pump_once(self) -> None:
        runs = self.knowledge.advance()
        # Pass 1 — classify: collect the live D ticks of the whole
        # advance and batch-match them in one engine call.  Matching is
        # pure CPU (no scheduling, no delivery), so hoisting it out of
        # the delivery loop cannot reorder any externally visible
        # action; it only lets the engine amortize index probes and
        # counting across the coalesced tick-range.
        live: List = []
        for run in runs:
            if run.kind is Tick.L:
                raise ProtocolError(
                    f"L tick {run.start} above latestDelivered reached constream "
                    f"{self.pubend} — release protocol violation"
                )
            if run.kind is not Tick.D:
                continue
            event = run.event
            assert event is not None
            if event.expired(self.scheduler.now):
                # JMS-style publisher expiration: an expired event is
                # delivered to nobody and needs no PFS record (catchup
                # reads correctly see the tick as silence).
                self.expired_skipped += 1
                continue
            live.append((run.start, event))
        if not live:
            self._recompute_latest_delivered()
            return
        match_sets = self.engine.match_at_batch(
            [(event.event_id, event.attributes) for _t, event in live]
        )
        # Pass 2 — PFS: collect the advance's Q ticks and hand the PFS
        # ONE columnar append for the whole advance.  The PFS stages
        # the identical per-tick logical disk writes (so sync batching
        # and durability-ack order are byte-identical to the per-tick
        # write loop) and acknowledges each tick through
        # ``_pfs_durable`` as it becomes crash-safe.
        items: List = []
        prev_set = None
        nums: List[int] = []
        for (t, event), matched in zip(live, match_sets):
            if self._tracer.tracing:
                self._tracer.on_match(event.event_id, self.pubend)
            if matched is not prev_set:
                # The engine memoizes match sets per attribute set, so a
                # run of ticks hands back the same frozenset object —
                # resolve it to PFS nums once per run, not per tick.
                prev_set = matched
                nums = self._nums_for(matched)
            if nums:
                # The PFS logs the Q tick for every matching durable
                # subscriber, connected or not.
                items.append((t, nums))
        if items:
            self._pending_pfs.extend(t for t, _nums in items)
            self.pfs.write_batch(self.pubend, items, on_durable=self._pfs_durable)
        # Pass 3 — deliver: per tick in order, exactly the pre-batch
        # sequence of subscriber handoffs.  Event messages carry no
        # per-subscriber state and nothing on the delivery path mutates
        # a payload (see Frame), so one shared message per tick fans
        # out to every subscriber.
        batches: Optional[Dict[str, List[EventMessage]]] = (
            {} if self.deliver_batch is not None else None
        )
        if batches is None:
            for (t, event), matched in zip(live, match_sets):
                msg: Optional[EventMessage] = None
                for sub_id in matched:
                    last_sent = self._non_catchup.get(sub_id)
                    if last_sent is not None and t > last_sent:
                        if msg is None:
                            # Pooled across the fan-out loop: one shared
                            # message per tick, and none at all when no
                            # connected subscriber wants the tick (the
                            # common case at scale — headless durables).
                            msg = EventMessage(self.pubend, t, event)
                        self.deliver(sub_id, msg)
                        self._non_catchup[sub_id] = t
                        self.events_delivered += 1
        else:
            self._pump_batched(live, match_sets, batches)
        if batches:
            assert self.deliver_batch is not None
            for sub_id, msgs in batches.items():
                self.deliver_batch(sub_id, msgs)
                self.fanout_batches += 1
        self._recompute_latest_delivered()

    def _pump_batched(
        self,
        live: List,
        match_sets: List[frozenset],
        batches: Dict[str, List[EventMessage]],
    ) -> None:
        """Batched fan-out of one advance, vectorized per matched-set run.

        The engine memoizes match results per attribute set, so
        consecutive ticks matching the same subscribers hand back the
        *same* frozenset — group them into runs and fan each run out
        with one membership lookup per subscriber instead of one per
        (tick, subscriber).

        Equivalence with the per-tick loop (this path feeds the pinned
        determinism digests, so it must be exact):

        * PFS writes, pending-PFS bookkeeping and trace notes already
          happened in ``_pump_once``'s collection pass, per tick in
          tick order — only the subscriber loop lives here.
        * The fast path requires every listed subscriber to be strictly
          behind the run (``last_sent < first tick``).  Then the
          per-tick loop would touch each of them first at the run's
          first tick, in ``_order_for`` order, and deliver every tick
          of the run — so sub-major iteration reproduces both the
          ``batches``-dict insertion order (= ``deliver_batch`` call
          order) and each subscriber's message list exactly.  Any
          subscriber mid-run (a fresh floor inside the run) falls the
          whole run back to the per-tick loop.
        * Membership can grow mid-run (a catchup switchover fired by a
          synchronous PFS-durability callback calls
          ``add_non_catchup``), but only with a floor at or above the
          already-consumed advance — such a subscriber receives
          nothing this pump under either loop.
        """
        n = len(live)
        i = 0
        while i < n:
            matched = match_sets[i]
            j = i + 1
            while j < n and match_sets[j] is matched:
                j += 1
            run = live[i:j]
            i = j
            order = self._order_for(matched)
            t0 = run[0][0]
            plan = []
            fast = True
            for sub_id in order:
                last_sent = self._non_catchup.get(sub_id)
                if last_sent is None:
                    continue
                if last_sent >= t0:
                    fast = False
                    break
                plan.append(sub_id)
            if fast:
                if plan:
                    msgs = [EventMessage(self.pubend, t, event) for t, event in run]
                    t_last = run[-1][0]
                    delivered = len(msgs)
                    for sub_id in plan:
                        bucket = batches.get(sub_id)
                        if bucket is None:
                            batches[sub_id] = msgs.copy()
                        else:
                            bucket.extend(msgs)
                        self._non_catchup[sub_id] = t_last
                        self.events_delivered += delivered
            else:
                for t, event in run:
                    msg: Optional[EventMessage] = None
                    for sub_id in order:
                        last_sent = self._non_catchup.get(sub_id)
                        if last_sent is not None and t > last_sent:
                            if msg is None:
                                msg = EventMessage(self.pubend, t, event)
                            batches.setdefault(sub_id, []).append(msg)
                            self._non_catchup[sub_id] = t
                            self.events_delivered += 1

    def _nums_for(self, matched: frozenset) -> List[int]:
        """PFS subscriber nums for a match set, memoized per set.

        Iterates ``matched`` itself (not a sorted copy) so the PFS
        record order is identical to the pre-cache implementation.
        """
        if self._nums_cache_version != self.registry.version:
            # Any registry membership change may rebind sub_id -> num.
            self._nums_cache.clear()
            self._nums_cache_version = self.registry.version
        nums = self._nums_cache.get(matched)
        if nums is None:
            if len(self._nums_cache) >= 4096:
                self._nums_cache.clear()
            nums = []
            for sub_id in matched:
                sub = self.registry.get(sub_id)
                if sub is not None:
                    nums.append(sub.num)
            self._nums_cache[matched] = nums
        return nums

    def _order_for(self, matched: frozenset) -> List[str]:
        """The sorted fan-out order of a match set, memoized per set."""
        order = self._order_cache.get(matched)
        if order is None:
            if len(self._order_cache) >= 4096:
                self._order_cache.clear()
            order = self._order_cache[matched] = sorted(matched)
        return order

    def _pfs_durable(self, t: int) -> None:
        if self._pending_pfs and self._pending_pfs[0] == t:
            self._pending_pfs.popleft()
        else:  # pragma: no cover - PFS durability is FIFO
            try:
                self._pending_pfs.remove(t)
            except ValueError:
                return
        self._recompute_latest_delivered()

    def _recompute_latest_delivered(self) -> None:
        if self._pending_pfs:
            candidate = self._pending_pfs[0] - 1
        else:
            candidate = self.knowledge.consumed
        if candidate > self.latest_delivered:
            self.latest_delivered = candidate
            self.meta_table.put(self._meta_key, candidate)
            for fn in self._listeners:
                fn(candidate)

    # ------------------------------------------------------------------
    # Silence to prevent CT lag (Section 4.1)
    # ------------------------------------------------------------------
    def _silence_tick(self) -> None:
        horizon = self.latest_delivered
        msg: Optional[SilenceMessage] = None  # shared by every lagging sub
        for sub_id, last_sent in list(self._non_catchup.items()):
            if horizon - last_sent >= self.silence_lag_ms:
                if msg is None:
                    msg = SilenceMessage(self.pubend, horizon)
                self.deliver(sub_id, msg)
                self._non_catchup[sub_id] = horizon
                self.silences_sent += 1

    # ------------------------------------------------------------------
    # Release bookkeeping
    # ------------------------------------------------------------------
    @property
    def released(self) -> int:
        """``released(p)`` — the highest timestamp that can be released."""
        min_sub = self.registry.min_released(self.pubend)
        if min_sub is None:
            return self.latest_delivered
        return min(self.latest_delivered, min_sub)

    def fast_forward(self, cursor: int) -> None:
        """Supervised-join bootstrap: adopt ``cursor`` as already seen.

        A freshly admitted SHB owes history to nobody (it hosts no
        subscriptions yet); instead of nacking the pubend's entire past,
        the supervisor hands it the current dissemination point and this
        stream treats everything at or below it as consumed.  The caller
        commits the meta table afterwards.
        """
        if cursor <= self.latest_delivered:
            return
        self.knowledge.consumed = max(self.knowledge.consumed, cursor)
        self.knowledge.tickmap.forget_below(cursor + 1)
        self.latest_delivered = cursor
        self.meta_table.put(self._meta_key, cursor)
        for fn in self._listeners:
            fn(cursor)

    @property
    def committed_latest_delivered(self) -> int:
        """The crash-durable latestDelivered — where recovery resumes.

        Release reports must be capped here: if the pubend converted a
        tick above this value to L and the SHB then crashed, the
        recovering constream would replay into the released region and
        be forced to emit gaps to well-behaved subscribers, which the
        protocol forbids.
        """
        return self.meta_table.get_committed(self._meta_key, 0)

    def close(self) -> None:
        self._silence_timer.cancel()
