"""TickMap: the in-memory representation of one knowledge stream.

Conceptually a knowledge stream assigns a :class:`~repro.core.ticks.Tick`
to *every* integer timestamp.  A :class:`TickMap` stores that total
function compactly:

* an L *prefix*: every tick below :attr:`lost_below` is lost,
* a set of D points, each carrying its event,
* an :class:`~repro.util.intervals.IntervalSet` of all known (S or D)
  ticks — S ticks are the known ticks that are not D points,
* everything else is Q.

Accumulation is monotone (see :mod:`repro.core.ticks`): Q→{S,D,L}; a
D arriving for a tick recorded as S *upgrades* it (an upstream filter
union can classify a tick S for one stream while a finer downstream
refiltering reveals the event — the map keeps the stronger fact and
counts the upgrade for diagnostics).  An S arriving for a known D is
ignored for the same reason.

The map also implements the two cursor-style queries every stream
needs: the *doubt horizon* ("highest timestamp such that all ticks up
to it are not Q", Section 4.1) and ordered run iteration for in-order
delivery.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..util.intervals import Interval, IntervalSet
from .events import Event
from .ticks import Tick


@dataclass(frozen=True)
class Run:
    """A maximal run of consecutive ticks with the same kind.

    ``event`` is set only for D runs, which always have length 1
    (timestamps are fine-grained enough that no two events share one).
    """

    start: int
    end: int
    kind: Tick
    event: Optional[Event] = None

    def __len__(self) -> int:
        return self.end - self.start + 1


class TickMap:
    """Compact storage for one knowledge stream's tick assignments."""

    def __init__(self, lost_below: int = 0) -> None:
        self._known = IntervalSet()  # S and D ticks at/above the L prefix
        self._d: Dict[int, Event] = {}
        self._d_times: List[int] = []  # sorted
        self._lost_below = lost_below
        self.s_over_d_conflicts = 0
        self.d_over_s_upgrades = 0

    # ------------------------------------------------------------------
    # Accumulation (monotone)
    # ------------------------------------------------------------------
    def set_d(self, t: int, event: Event) -> bool:
        """Record an event at tick ``t``.  Returns True if new knowledge."""
        if t < self._lost_below:
            return False  # already released; stale information
        if t in self._d:
            return False  # idempotent re-delivery
        if t in self._known:
            self.d_over_s_upgrades += 1  # S being refined to D
        else:
            self._known.add(t)
        self._d[t] = event
        bisect.insort(self._d_times, t)
        return True

    def set_s(self, start: int, end: int) -> None:
        """Record silence for every tick in ``[start, end]``.

        Ticks already known as D keep their event; ticks below the L
        prefix are ignored.
        """
        start = max(start, self._lost_below)
        if start > end:
            return
        # Count (for diagnostics) D points that an S assertion covers.
        lo = bisect.bisect_left(self._d_times, start)
        hi = bisect.bisect_right(self._d_times, end)
        if lo < hi:
            self.s_over_d_conflicts += hi - lo
        self._known.add(start, end)

    def set_lost_below(self, t: int) -> None:
        """Extend the L prefix: every tick ``< t`` becomes lost.

        Knowledge below the new prefix is discarded (it can never be
        queried as anything but L again).
        """
        if t <= self._lost_below:
            return
        self._lost_below = t
        self._known.chop_below(t)
        cut = bisect.bisect_left(self._d_times, t)
        for old in self._d_times[:cut]:
            del self._d[old]
        del self._d_times[:cut]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def lost_below(self) -> int:
        return self._lost_below

    def kind(self, t: int) -> Tick:
        """The tick kind assigned to timestamp ``t``."""
        if t < self._lost_below:
            return Tick.L
        if t in self._d:
            return Tick.D
        if t in self._known:
            return Tick.S
        return Tick.Q

    def event_at(self, t: int) -> Optional[Event]:
        return self._d.get(t)

    def doubt_horizon(self, base: int) -> int:
        """Highest ``h >= base`` such that no tick in ``(base, h]`` is Q."""
        h = base
        if h + 1 < self._lost_below:
            h = self._lost_below - 1
        iv = self._known.interval_containing(h + 1)
        if iv is not None:
            h = iv.end
        return h

    def max_known(self) -> int:
        """The largest non-Q tick (or ``lost_below - 1`` if none)."""
        if self._known:
            return self._known.max()
        return self._lost_below - 1

    def unknown_within(self, start: int, end: int) -> IntervalSet:
        """The Q ticks inside ``[start, end]`` — what a nack asks for."""
        start = max(start, self._lost_below)
        if start > end:
            return IntervalSet()
        return self._known.complement_within(start, end)

    def known_within(self, start: int, end: int) -> IntervalSet:
        """The S/D ticks in ``[start, end]`` (L prefix not included)."""
        return self._known.intersect_span(start, end)

    def events_between(self, start: int, end: int) -> List[Event]:
        """All D events with ``start <= t <= end``, ascending."""
        lo = bisect.bisect_left(self._d_times, start)
        hi = bisect.bisect_right(self._d_times, end)
        return [self._d[t] for t in self._d_times[lo:hi]]

    def runs_between(self, start: int, end: int) -> Iterator[Run]:
        """Yield maximal same-kind runs covering ``[start, end]`` in order.

        D runs are single ticks with their event attached; Q runs are
        included so a delivery loop can stop at the first one and a
        catchup stream can turn them into nacks.
        """
        if start > end:
            return
        cursor = start
        if cursor < self._lost_below:
            l_end = min(end, self._lost_below - 1)
            yield Run(cursor, l_end, Tick.L)
            cursor = l_end + 1
        if cursor > end:
            return
        for iv in self._known.intersect_span(cursor, end):
            if iv.start > cursor:
                yield Run(cursor, iv.start - 1, Tick.Q)
            yield from self._runs_within_known(iv, max_end=end)
            cursor = iv.end + 1
        if cursor <= end:
            yield Run(cursor, end, Tick.Q)

    def _runs_within_known(self, iv: Interval, max_end: int) -> Iterator[Run]:
        """Split one known interval into alternating S runs and D points."""
        cursor = iv.start
        lo = bisect.bisect_left(self._d_times, iv.start)
        hi = bisect.bisect_right(self._d_times, iv.end)
        for t in self._d_times[lo:hi]:
            if t > cursor:
                yield Run(cursor, t - 1, Tick.S)
            yield Run(t, t, Tick.D, self._d[t])
            cursor = t + 1
        if cursor <= min(iv.end, max_end):
            yield Run(cursor, iv.end, Tick.S)

    def classify_within(
        self, start: int, end: int
    ) -> "tuple[List[Event], List[tuple[int, int]], List[tuple[int, int]], IntervalSet]":
        """Bucket ``[start, end]`` into ``(d_events, s_ranges, l_ranges, q_set)``.

        The shape a cache-serving broker needs to answer a nack: the D
        events to ship, maximal (already coalesced) S and L ranges, and
        the Q remainder it must ask upstream about.  Built from
        :meth:`runs_between`, so each contiguous run of silence is one
        range, not one per tick.
        """
        d_events: List[Event] = []
        s_ranges: List[tuple[int, int]] = []
        l_ranges: List[tuple[int, int]] = []
        q_set = IntervalSet()
        for run in self.runs_between(start, end):
            if run.kind is Tick.D:
                d_events.append(run.event)  # type: ignore[arg-type]
            elif run.kind is Tick.S:
                s_ranges.append((run.start, run.end))
            elif run.kind is Tick.L:
                l_ranges.append((run.start, run.end))
            else:
                q_set.add(run.start, run.end)
        return d_events, s_ranges, l_ranges, q_set

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    def forget_below(self, t: int) -> None:
        """Drop storage for ticks below ``t`` *without* declaring them L.

        Used once a consumer's cursor has passed ``t``; queries below
        the cursor are the caller's bug, and would now read Q.
        """
        self._known.chop_below(t)
        cut = bisect.bisect_left(self._d_times, t)
        for old in self._d_times[:cut]:
            del self._d[old]
        del self._d_times[:cut]

    @property
    def d_count(self) -> int:
        return len(self._d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TickMap L<{self._lost_below} known={self._known.as_tuples()!r} "
            f"d={len(self._d)}>"
        )
