"""Catchup streams (Sections 4.1–4.2).

When durable subscriber *s* reconnects with ``CT(s, p)`` below the
constream's ``latestDelivered(p)``, the SHB creates a private catchup
stream whose doubt horizon starts at ``CT(s, p)``.  The stream:

1. batch-reads the PFS to learn which timestamps above its cursor are
   Q for this subscriber (everything else in the covered span is S —
   no event retrieval, no refiltering),
2. nacks the Q ticks upstream, paced by a flow-control window so the
   client is not overwhelmed with catchup event messages,
3. accumulates the replies and delivers event/silence/gap messages in
   timestamp order,
4. when its cursor reaches ``latestDelivered(p)``, fires the switchover
   callback — the SHB discards the stream and the subscriber joins the
   constream ("non-catchup" mode).

A new PFS read is issued only once every Q tick of the previous read
has been nacked and delivered, mirroring the read-buffer behaviour the
paper analyses in Figure 8 (5000-tick buffer, reads shortening as
catchup progresses).

Ticks below the PFS chop point (released before this subscriber
caught up) are nacked like any others; the pubend answers them with L
ranges, which surface to the application as explicit gap messages —
the "gap honesty" guarantee of the early-release model.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..metrics.trace import event_tracer
from ..net.simtime import Scheduler
from ..pfs.pfs import PersistentFilteringSubsystem, PFSReadResult
from ..util.intervals import IntervalSet
from .constream import ConsolidatedStream
from .curiosity import CuriosityStream
from .knowledge import KnowledgeStream
from .messages import EventMessage, GapMessage, KnowledgeUpdate, SilenceMessage
from .subscription import DurableSubscription
from .ticks import Tick

DeliverFn = Callable[[object], None]
NackFn = Callable[[IntervalSet], None]
CostedRunner = Callable[[float, Callable[[], None]], None]

#: CPU cost charged per PFS record visited during a batch read (ms).
PFS_READ_COST_PER_RECORD_MS = 0.002
#: Fixed CPU cost per PFS batch read (ms).
PFS_READ_BASE_COST_MS = 0.5


class CatchupStream:
    """Private recovery stream for one (subscriber, pubend) pair."""

    def __init__(
        self,
        scheduler: Scheduler,
        pubend: str,
        sub: DurableSubscription,
        start_ts: int,
        pfs: PersistentFilteringSubsystem,
        constream: ConsolidatedStream,
        deliver: DeliverFn,
        send_nack: NackFn,
        on_switchover: Callable[[], None],
        buffer_qs: int = 5000,
        nack_window_ticks: int = 256,
        run_costed: Optional[CostedRunner] = None,
        refilter_until: int = 0,
        caches_valid: bool = True,
        track_deliveries: bool = False,
        rate_boost: Optional[float] = 1.9,
    ) -> None:
        self.scheduler = scheduler
        self.pubend = pubend
        self.sub = sub
        self.pfs = pfs
        self.constream = constream
        self.deliver = deliver
        self.on_switchover = on_switchover
        self.buffer_qs = buffer_qs
        self.nack_window_ticks = nack_window_ticks
        self._run_costed = run_costed if run_costed is not None else (lambda _cost, fn: fn())
        #: Reconnect-anywhere support (the paper's feature 5): this
        #: SHB's PFS has no records for the subscriber below this tick
        #: (the subscription was registered here mid-stream), so that
        #: span is recovered by nacking *everything* and refiltering
        #: the returned events against the subscription's own predicate.
        self.refilter_until = refilter_until
        #: False only for reconnect-anywhere streams: broker knowledge
        #: caches were filtered under a subscription union that did not
        #: include this subscriber, so their S ticks cannot be trusted
        #: for the refilter span.  A refiltering stream whose
        #: subscription *was* registered (the no-PFS ablation) keeps
        #: cache service.
        self.caches_valid = caches_valid
        #: End-to-end flow control (the paper's "flow control scheme,
        #: between the SHB and the subscribing client, to control the
        #: rate of nacks initiated, so as not to overwhelm the client"):
        #: when tracking is on, event messages count against the window
        #: until the host reports them actually sent
        #: (:meth:`on_delivery_sent`), so a congested broker/client
        #: throttles this stream's requests.  With many simultaneous
        #: catchup streams this self-balances them to fair shares.
        self.track_deliveries = track_deliveries
        self.undelivered = 0
        # Client-rate pacing (the paper's congestion-control hook [14]):
        # requests are token-bucketed at ``rate_boost`` times the
        # subscriber's own event rate, estimated from PFS read density.
        # The resulting catchup duration is scale-free:
        # ``disconnection / (rate_boost - 1)`` — the proportionality
        # Figure 5 shows (5-6 s catchup for a 5 s disconnection).
        # ``rate_boost=None`` disables pacing (recover at full speed).
        self.rate_boost = rate_boost
        self._rate_eps: Optional[float] = None  # estimated events/s
        #: Burst allowance: how many events may be requested ahead of
        #: the paced rate.  Small relative to the window so that even a
        #: short disconnection is recovered at the paced rate (the
        #: proportionality of Figure 5), not in one burst.
        self._burst = float(min(16, nack_window_ticks))
        self._tokens = self._burst
        self._tokens_at = scheduler.now
        self._resume_scheduled = False
        self.events_refiltered_out = 0
        self.knowledge = KnowledgeStream(pubend, consumed=start_ts)
        self.curiosity = CuriosityStream(scheduler, pubend, send_nack)
        self._tracer = event_tracer(scheduler)
        self.started_at_ms = scheduler.now
        self.start_ts = start_ts
        self.closed = False
        self.events_delivered = 0
        self.gap_ticks = 0
        self.pfs_reads = 0
        self._pumping = False
        self._repump = False
        # Q ticks from the current PFS read not yet handed to curiosity
        # (flow control: released in windows as delivery progresses).
        self._unrequested: List[int] = []
        self._covered_to = start_ts  # PFS knowledge requested up to here
        self._read_in_flight = False
        # Watch the constream so we re-read when latestDelivered moves.
        constream.on_latest_delivered(self._on_latest_delivered)
        self._kick()

    # ------------------------------------------------------------------
    # Target
    # ------------------------------------------------------------------
    @property
    def target(self) -> int:
        """Catchup is complete when the cursor reaches this value.

        The constream's *delivery cursor*: every tick at or below it
        has already been pumped to non-catchup subscribers (and written
        to the PFS, whose reads see staged records), and every tick
        above it will be pumped after this subscriber switches over.
        Capping here makes the handoff exactly-once in both directions.
        """
        return self.constream.delivered_cursor

    @property
    def cursor(self) -> int:
        return self.knowledge.consumed

    # ------------------------------------------------------------------
    # PFS reads
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self.closed:
            return
        if self._maybe_switchover():
            return
        if self._buffer_exhausted() and self._covered_to < min(self.refilter_until, self.target):
            # Refiltering span: the PFS cannot answer for this
            # subscriber here.  Request the next window of ticks
            # wholesale; D replies are filtered in _pump_once.
            if self.undelivered >= self.nack_window_ticks:
                return  # window full; resume when deliveries drain
            span_end = min(
                self._covered_to + self.nack_window_ticks,
                self.refilter_until,
                self.target,
            )
            if span_end > self._covered_to:
                self.curiosity.want(self._covered_to + 1, span_end)
                self._covered_to = span_end
            return
        if not self._read_in_flight and self._buffer_exhausted() and self._covered_to < self.target:
            self._read_in_flight = True
            # Snapshot the constream's delivery cursor *now*: the PFS
            # contents and this cursor are consistent at this instant,
            # and the silence-fill in _read_done must not extend past
            # it (Q ticks written after this snapshot would otherwise
            # be silently skipped).
            target_at_read = self.target
            result = self.pfs.read_batch(
                self.pubend, self.sub.num, after=self._covered_to, buffer_qs=self.buffer_qs
            )
            cost = PFS_READ_BASE_COST_MS + PFS_READ_COST_PER_RECORD_MS * result.records_visited
            self._run_costed(cost, lambda: self._read_done(result, target_at_read))
        else:
            self._request_more()

    def _buffer_exhausted(self) -> bool:
        """All Q ticks of the previous read nacked and delivered."""
        return (
            not self._unrequested
            and self.curiosity.outstanding_ticks == 0
            and self.cursor >= min(self._covered_to, self.target)
        )

    def _read_done(self, result: PFSReadResult, target_at_read: int) -> None:
        self._read_in_flight = False
        if self.closed:
            return
        self.pfs_reads += 1
        # Update the event-rate estimate from the read's Q-tick density
        # (timestamps are milliseconds, so density × 1000 = events/s).
        span = result.covered_to - result.after
        if span > 200 and result.q_ticks:
            self._rate_eps = len(result.q_ticks) * 1000.0 / span
        cursor = self.knowledge.consumed
        # Ticks below the PFS chop point are unknown here; nack them —
        # the pubend answers L (released) or better (cache hits).
        if result.known_from > cursor + 1:
            self.curiosity.want(cursor + 1, result.known_from - 1)
        # The PFS speaks for ticks up to covered_to.  When the read
        # reached lastTimestamp, ticks between covered_to and the
        # delivery cursor *at snapshot time* are final too: the
        # constream writes the PFS in timestamp order before advancing
        # its cursor, so a tick at or below the snapshot cursor with no
        # PFS record matched nobody — silence for this subscriber as
        # well.  (The *current* cursor must not be used: Q ticks may
        # have been written between the snapshot and this callback.)
        span_end = result.covered_to
        if result.reached_last_timestamp:
            span_end = max(span_end, target_at_read)
        # Within the covered span: q_ticks are Q, the rest S.
        span_start = max(cursor + 1, result.known_from)
        if span_end >= span_start:
            q_set = IntervalSet([(t, t) for t in result.q_ticks if span_start <= t <= span_end])
            for s_iv in q_set.complement_within(span_start, span_end):
                self.knowledge.accumulate_silence(s_iv.start, s_iv.end)
            self._unrequested.extend(
                t for t in result.q_ticks if span_start <= t <= span_end
            )
        self._covered_to = max(self._covered_to, span_end)
        self._request_more()
        self.pump()

    def _request_more(self) -> None:
        """Flow control: keep at most ``nack_window_ticks`` in flight.

        "In flight" spans the whole pipeline: ticks nacked upstream and
        not yet answered, plus answered events not yet actually sent to
        the client (when delivery tracking is on).
        """
        if self.closed:
            return
        room = (
            self.nack_window_ticks
            - self.curiosity.outstanding_ticks
            - self.undelivered
        )
        if room <= 0 or not self._unrequested:
            return
        room = self._take_tokens(room)
        if room <= 0:
            return
        batch, self._unrequested = self._unrequested[:room], self._unrequested[room:]
        want = IntervalSet()
        for t in batch:
            want.add(t)
        self.curiosity.want_set(want)

    # ------------------------------------------------------------------
    # Rate pacing
    # ------------------------------------------------------------------
    def _take_tokens(self, wanted: int) -> int:
        """Grant up to ``wanted`` request tokens; schedule a resume when
        the bucket limits progress."""
        if self.rate_boost is None or self._rate_eps is None:
            return wanted
        rate = self.rate_boost * self._rate_eps
        now = self.scheduler.now
        self._tokens = min(
            self._burst,
            self._tokens + (now - self._tokens_at) * rate / 1000.0,
        )
        self._tokens_at = now
        granted = min(wanted, int(self._tokens))
        self._tokens -= granted
        if granted < wanted and not self._resume_scheduled:
            deficit = max(1.0, wanted - granted)
            self._resume_scheduled = True
            self.scheduler.after(deficit * 1000.0 / rate, self._resume_after_tokens)
        return granted

    def _resume_after_tokens(self) -> None:
        self._resume_scheduled = False
        if not self.closed:
            self._request_more()
            self._kick()

    # ------------------------------------------------------------------
    # Knowledge intake
    # ------------------------------------------------------------------
    def on_knowledge(self, update: KnowledgeUpdate) -> None:
        """A nack reply (or cached knowledge) routed to this stream."""
        if self.closed:
            return
        if self._tracer.tracing and update.d_events:
            for event in update.d_events:
                self._tracer.note_arrival(event.event_id)
        self.knowledge.accumulate(update)
        for start, end in update.s_ranges:
            self.curiosity.resolve(start, end)
        for start, end in update.l_ranges:
            self.curiosity.resolve(start, end)
        for event in update.d_events:
            self.curiosity.resolve(event.timestamp, event.timestamp)
        self.pump()

    def _on_latest_delivered(self, _t: int) -> None:
        if not self.closed:
            self._kick()

    def on_delivery_sent(self) -> None:
        """Host callback: one tracked event message left the broker."""
        if self.closed:
            return
        if self.undelivered > 0:
            self.undelivered -= 1
        self._request_more()
        self._kick()

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Deliver newly-resolved runs in order; check switchover.

        Re-entrant calls (a PFS read completing synchronously inside a
        delivery, etc.) are deferred to the outer invocation so message
        order per subscriber is preserved.
        """
        if self._pumping:
            self._repump = True
            return
        self._pumping = True
        try:
            while not self.closed:
                self._repump = False
                self._pump_once()
                if not self._repump:
                    break
        finally:
            self._pumping = False

    def _pump_once(self) -> None:
        runs = self.knowledge.advance(limit=self.target)
        for run in runs:
            if run.kind is Tick.D:
                assert run.event is not None
                if run.event.expired(self.scheduler.now):
                    # Publisher-specified expiration: skip delivery;
                    # the CT still advances via the silence marker.
                    self.deliver(SilenceMessage(self.pubend, run.end))
                    continue
                if run.start <= self.refilter_until and not self.sub.predicate.matches(
                    run.event.attributes
                ):
                    # Refiltered span: the event came back because we
                    # asked for *all* ticks; it does not match this
                    # subscription — silence, not delivery.
                    self.events_refiltered_out += 1
                    self.deliver(SilenceMessage(self.pubend, run.end))
                    continue
                if self.track_deliveries:
                    self.undelivered += 1
                if self._tracer.tracing:
                    self._tracer.on_catchup_resolve(run.event.event_id, self.pubend)
                self.deliver(EventMessage(self.pubend, run.start, run.event))
                self.events_delivered += 1
            elif run.kind is Tick.S:
                self.deliver(SilenceMessage(self.pubend, run.end))
            elif run.kind is Tick.L:
                self.gap_ticks += len(run)
                self.deliver(GapMessage(self.pubend, run.end))
        if runs:
            self.curiosity.resolve_below(self.knowledge.consumed + 1)
        self._kick()

    # ------------------------------------------------------------------
    # Switchover / teardown
    # ------------------------------------------------------------------
    def _maybe_switchover(self) -> bool:
        if self.cursor >= self.target:
            self.close()
            self.on_switchover()
            return True
        return False

    @property
    def catchup_duration_ms(self) -> float:
        return self.scheduler.now - self.started_at_ms

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.curiosity.close()
        self.constream.remove_latest_delivered_listener(self._on_latest_delivered)
