"""Protocol messages.

Two families:

**Inside the overlay** (broker↔broker, and pubend→SHB):
:class:`KnowledgeUpdate` carries tick knowledge downstream (data,
silence and lost ranges for one pubend); :class:`Nack` carries
curiosity upstream; :class:`ReleaseUpdate` aggregates release state
upstream; :class:`SubscriptionAdd`/:class:`SubscriptionRemove`
propagate filters upstream so intermediate brokers can filter.

**Last hop** (SHB→subscriber): Section 2's three message kinds.  Each
carries a pubend and a timestamp ``t``; with ``t0`` the timestamp of
the preceding message from that pubend:

* :class:`EventMessage` — an event at ``t``; no matching events in
  ``(t0, t)``.
* :class:`SilenceMessage` — no matching events in ``(t0, t]``.
* :class:`GapMessage` — events may have existed in ``(t0, t]`` but the
  information was discarded by early release.

Plus the client↔SHB control plane (connect/ack/publish).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..matching.predicates import Predicate
from ..util.intervals import coalesce_ranges
from .events import Event

#: Estimated control-message framing bytes, used for CPU/disk cost models.
CONTROL_HEADER_BYTES = 48


# ---------------------------------------------------------------------------
# Wire framing (CRC-checked transmission envelope)
# ---------------------------------------------------------------------------
def frame_checksum(payload: Any) -> int:
    """Deterministic CRC32 of a message (or batch of messages).

    The simulation never serializes messages to bytes, so the checksum
    is computed over ``repr`` — stable within a process because every
    message type is a plain dataclass and dict ordering is insertion
    ordering.  Only links with payload-corruption faults enabled pay
    this cost; the fault-0 path never builds frames.
    """
    return zlib.crc32(repr(payload).encode())


class Frame:
    """A checksummed transmission envelope used by lossy links.

    :class:`~repro.net.link.LinkEnd` wraps each transmission in a frame
    when corruption faults are enabled; the receiving end verifies the
    CRC before unwrapping and silently drops (and counts) frames whose
    payload was corrupted in flight.  The protocol then recovers the
    lost information exactly as it recovers a dropped message — via
    curiosity/nacks or periodic retransmission.
    """

    __slots__ = ("payload", "crc")

    def __init__(self, payload: Any, crc: Optional[int] = None) -> None:
        self.payload = payload
        self.crc = frame_checksum(payload) if crc is None else crc

    def verify(self) -> bool:
        """True when the payload still matches the sender-computed CRC."""
        return self.crc == frame_checksum(self.payload)

    def corrupt_in_flight(self) -> None:
        """Simulate bit errors on the wire.

        Payload objects are shared with the sender, so rather than
        mutating them the frame records the damage in its checksum —
        indistinguishable to the receiver from flipped payload bits.
        """
        self.crc ^= 0x5A5A5A5A

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame crc={self.crc:#010x} payload={type(self.payload).__name__}>"


# ---------------------------------------------------------------------------
# Overlay messages
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class KnowledgeUpdate:
    """New tick knowledge for one pubend, flowing downstream.

    ``d_events`` are D ticks (each event carries its own timestamp);
    ``s_ranges`` and ``l_ranges`` are closed ``[start, end]`` tick
    ranges.  Ranges never overlap each other or the D ticks.
    """

    pubend: str
    d_events: List[Event] = field(default_factory=list)
    s_ranges: List[Tuple[int, int]] = field(default_factory=list)
    l_ranges: List[Tuple[int, int]] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.d_events or self.s_ranges or self.l_ranges)

    def max_tick(self) -> Optional[int]:
        """The largest tick this update says anything about."""
        candidates: List[int] = [e.timestamp for e in self.d_events]
        candidates += [end for _s, end in self.s_ranges]
        candidates += [end for _s, end in self.l_ranges]
        return max(candidates) if candidates else None

    @property
    def size_bytes(self) -> int:
        return (
            CONTROL_HEADER_BYTES
            + sum(e.size_bytes for e in self.d_events)
            + 16 * (len(self.s_ranges) + len(self.l_ranges))
        )

    def coalesce(self) -> "KnowledgeUpdate":
        """Merge adjacent/overlapping S and L ranges in place.

        Filtering and nack answering append ranges tick-by-tick, so a
        silenced run of *n* events arrives as *n* single-tick ranges;
        after coalescing it is one.  The covered ticks are unchanged,
        so receivers fold the update into their tick maps identically.
        Returns ``self`` for chaining at send sites.
        """
        if len(self.s_ranges) > 1:
            self.s_ranges = coalesce_ranges(self.s_ranges)
        if len(self.l_ranges) > 1:
            self.l_ranges = coalesce_ranges(self.l_ranges)
        return self


@dataclass
class Nack:
    """A request for knowledge about Q tick ranges of one pubend.

    ``refilter_below``: ticks below this value must not be answered
    from *filtered* caches (intermediate/SHB knowledge caches).  Those
    caches record the stream as filtered by a subscription union that
    did not yet include the requesting (reconnect-anywhere) subscriber,
    so their S ticks may hide events the requester needs.  Only the
    pubend — which filters by the *current* union — may answer them.
    """

    pubend: str
    ranges: List[Tuple[int, int]]
    refilter_below: int = 0

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 16 * len(self.ranges)


@dataclass
class ReleaseUpdate:
    """Release-protocol state flowing upstream (Section 3).

    ``released`` is the minimum released timestamp across the sender's
    subtree; ``latest_delivered`` the minimum latestDelivered(p).  The
    pubend's aggregated values are ``Tr(p)`` and ``Td(p)``.

    ``epoch`` supports durable-subscriber migration: within one epoch a
    child's reports are monotone (the aggregator clamps regressions as
    resend noise), but installing a migrated subscription can
    legitimately *lower* the destination SHB's minima.  The destination
    bumps its epoch with the first post-install report, telling
    aggregators to accept the regression.  Safe because the migration
    protocol installs at the destination before the source withdraws,
    so the global minimum never regresses below what the pubend already
    released.
    """

    pubend: str
    released: int
    latest_delivered: int
    epoch: int = 0

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 16


@dataclass
class SubscriptionAdd:
    """Propagates a subscription's filter upstream for routing/filtering.

    ``epoch`` distinguishes the two ways an add travels: ``None`` marks
    an immediate add (a new subscription) applied straight to the live
    union; an integer marks one element of a numbered full-union
    refresh, staged by the receiver and swapped in atomically when the
    matching :class:`SubscriptionSync` confirms the whole refresh
    arrived (see that class).
    """

    sub_id: str
    predicate: Predicate
    epoch: Optional[int] = None

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 64


@dataclass
class SubscriptionRemove:
    """Withdraws a previously propagated subscription filter."""

    sub_id: str

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class SubscriptionSync:
    """Marks a complete subscription refresh from the sender's subtree.

    Subscription unions at upstream brokers are volatile soft state: a
    recovered broker treats each child's union as *cold* and passes
    events unfiltered (correct, just less efficient) until the child's
    next refresh completes — which this message signals.  SHBs emit it
    after periodically re-sending all their SubscriptionAdds;
    intermediate brokers forward it once every one of their own
    children is warm.

    ``epoch`` ties the sync to a numbered refresh: the receiver marks
    the child warm only if it actually received all ``sub_count`` adds
    of that epoch.  On a lossless link the count always matches; on a
    lossy one a partial refresh leaves the child cold (unfiltered —
    safe) until a later refresh survives intact.  ``epoch=None`` keeps
    the legacy unconditional-warm behavior for hand-built tests.

    ``want_ack`` requests a :class:`SubscriptionSynced` confirmation
    once the refresh has been applied *at the tree root* — set by a
    migration destination, whose PFS-coverage claim for the installed
    subscription is only valid for ticks classified after every
    upstream filter learned its predicate (see PROTOCOL.md §8).
    """

    sub_count: int
    epoch: Optional[int] = None
    want_ack: bool = False

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class SubscriptionSynced:
    """Downstream ack: an epoch-tagged refresh is applied root-to-here.

    ``epoch`` is the highest refresh epoch of the receiving child that
    the whole upstream chain has applied.  The PHB replies directly
    when a ``want_ack`` sync warms; an intermediate broker forwards the
    ack to its child only after its *own* covering refresh was acked
    from above.  Every hop queues the ack behind already-classified
    knowledge (same CPU queue, same FIFO link), so by the time the ack
    arrives, every D→S classification made under the pre-refresh union
    has arrived too — the receiver can bound the span in which upstream
    silence is untrustworthy by its local clock at ack receipt.
    """

    epoch: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


def clip_update(update: KnowledgeUpdate, lo: int, hi: int) -> KnowledgeUpdate:
    """The portion of a knowledge update within ``[lo, hi]``."""
    out = KnowledgeUpdate(update.pubend)
    if lo > hi:
        return out
    out.d_events = [e for e in update.d_events if lo <= e.timestamp <= hi]
    for start, end in update.s_ranges:
        s, e = max(start, lo), min(end, hi)
        if s <= e:
            out.s_ranges.append((s, e))
    for start, end in update.l_ranges:
        s, e = max(start, lo), min(end, hi)
        if s <= e:
            out.l_ranges.append((s, e))
    return out


def clip_update_to_set(update: KnowledgeUpdate, interest) -> KnowledgeUpdate:
    """The portion of a knowledge update covered by an interval set.

    Used to route nack replies to exactly the ticks a requester asked
    for.  One membership / intersection query per item — never per
    interval of the interest set, which can be large during mass
    catchup.
    """
    out = KnowledgeUpdate(update.pubend)
    out.d_events = [e for e in update.d_events if e.timestamp in interest]
    for start, end in update.s_ranges:
        for iv in interest.intersect_span(start, end):
            out.s_ranges.append((iv.start, iv.end))
    for start, end in update.l_ranges:
        for iv in interest.intersect_span(start, end):
            out.l_ranges.append((iv.start, iv.end))
    return out


def split_update(update: KnowledgeUpdate, cutoff: int) -> Tuple[KnowledgeUpdate, KnowledgeUpdate]:
    """Split into (ticks <= cutoff, ticks > cutoff).

    Used by brokers to separate *old* knowledge (nack replies destined
    for catchup streams) from *new* head knowledge (istream/constream).
    """
    hi = update.max_tick()
    if hi is None:
        return KnowledgeUpdate(update.pubend), KnowledgeUpdate(update.pubend)
    old = clip_update(update, 0, cutoff)
    new = clip_update(update, cutoff + 1, hi)
    return old, new


# ---------------------------------------------------------------------------
# Last-hop messages (SHB -> subscriber)
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class EventMessage:
    """An event that matches the subscription; see module docstring.

    ``__slots__`` and instance sharing (the constream fans one message
    per tick out to every matching subscriber) keep the last hop cheap
    at 10^5 subscribers; nothing on the delivery path mutates one.
    """

    pubend: str
    t: int
    event: Event

    @property
    def size_bytes(self) -> int:
        return self.event.size_bytes


@dataclass(slots=True)
class SilenceMessage:
    """No matching events in ``(t0, t]``; advances the subscriber's CT."""

    pubend: str
    t: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass(slots=True)
class GapMessage:
    """Information about ``(t0, t]`` was discarded by early release."""

    pubend: str
    t: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


# ---------------------------------------------------------------------------
# Client <-> SHB control plane
# ---------------------------------------------------------------------------
@dataclass
class ConnectRequest:
    """A durable subscriber (re)connects.

    ``checkpoint`` is None on first-ever connect (the SHB assigns a
    starting CT at latestDelivered, Section 4.1); on reconnect it is
    the subscriber's current CT.  ``predicate`` is required on first
    connect and ignored afterwards (durable subscriptions keep their
    filter).
    """

    sub_id: str
    checkpoint: Optional[Dict[str, int]] = None
    predicate: Optional[Predicate] = None

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 16 * len(self.checkpoint or {})


@dataclass
class ConnectAccept:
    """The SHB's reply: the CT delivery will resume from."""

    sub_id: str
    checkpoint: Dict[str, int]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 16 * len(self.checkpoint)


@dataclass
class AckCheckpoint:
    """Periodic acknowledgment of everything up to the carried CT."""

    sub_id: str
    checkpoint: Dict[str, int]

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 16 * len(self.checkpoint)


@dataclass
class DisconnectRequest:
    """A graceful disconnect (involuntary ones just drop the link)."""

    sub_id: str

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class PublishRequest:
    """A publisher client hands an event body to its PHB.

    ``seq`` (with ``publisher``) enables exactly-once publishing: the
    PHB deduplicates retransmissions and acknowledges each sequence
    number once the event is durably logged.  ``client_ms`` is the
    client-side publish time (simulation clock) used to anchor latency
    traces; retransmissions keep the original value.
    """

    attributes: Dict[str, object]
    payload_bytes: int
    publisher: Optional[str] = None
    seq: Optional[int] = None
    pubend: Optional[str] = None
    ttl_ms: Optional[int] = None
    client_ms: Optional[float] = None

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + self.payload_bytes


@dataclass
class PublishAck:
    """PHB acknowledgment: everything up to ``seq`` is durably logged."""

    publisher: str
    seq: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class ConnectRefused:
    """The SHB refuses a connect it can no longer serve.

    Sent when the subscription has been migrated away (``redirect_to``
    names the destination SHB) or the SHB is draining and not admitting
    new subscriptions (``redirect_to`` is None — the supervisor's
    placement policy decides where the client should go).
    """

    sub_id: str
    reason: str
    redirect_to: Optional[str] = None

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


# ---------------------------------------------------------------------------
# Supervisor <-> SHB migration control plane
# ---------------------------------------------------------------------------
# A durable-subscription handoff moves a subscription's identity,
# predicate, released CT, JMS CT rows and per-pubend PFS cursor from a
# source SHB to a destination SHB.  Every message carries the
# supervisor-chosen ``handoff_id`` (unique per attempt) and ``epoch``
# (strictly increasing per subscription across attempts); receivers use
# the epoch to reject stale retries of superseded attempts, making the
# whole flow idempotent under duplication, reordering and retransmission.
#
# Window ordering (the durability boundaries, each a crash-point site):
#   1. source snapshots state           -> MigrateOffer
#   2. dest installs + commits durable  -> MigrateInstalled
#   3. source drops + tombstone durable -> MigrateDone
# The destination installs *before* the source withdraws, so both
# registries briefly hold the subscription — release-safe, because the
# aggregated minimum over a superset of reporters is never larger.
@dataclass
class MigrateRequest:
    """Supervisor asks the source SHB to snapshot a subscription."""

    handoff_id: str
    sub_id: str
    epoch: int
    dest: str

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class MigrateOffer:
    """Source SHB's snapshot of the subscription's durable state.

    ``found`` is False when the subscription does not exist at the
    source (already migrated away, or never registered) — the payload
    fields are then empty.  ``released_ct`` is the per-pubend released
    CT from the registry (the exactly-once floor); ``pfs_from`` the
    per-pubend PFS registration cursor below which the destination must
    not trust its own PFS; ``jms_ct`` the subscription's durable JMS
    checkpoint vector (pubend → consumed-up-to tick).
    """

    handoff_id: str
    sub_id: str
    epoch: int
    found: bool = True
    predicate: Optional[Predicate] = None
    released_ct: Dict[str, int] = field(default_factory=dict)
    pfs_from: Dict[str, int] = field(default_factory=dict)
    jms_ct: Dict[str, int] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 64 + 16 * (len(self.released_ct) + len(self.pfs_from))


@dataclass
class MigrateInstall:
    """Supervisor hands the snapshot to the destination SHB."""

    handoff_id: str
    sub_id: str
    epoch: int
    source: str
    predicate: Optional[Predicate] = None
    released_ct: Dict[str, int] = field(default_factory=dict)
    pfs_from: Dict[str, int] = field(default_factory=dict)
    jms_ct: Dict[str, int] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES + 64 + 16 * (len(self.released_ct) + len(self.pfs_from))


@dataclass
class MigrateInstalled:
    """Destination SHB confirms the install is durably committed."""

    handoff_id: str
    sub_id: str
    epoch: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class MigrateCommit:
    """Supervisor tells the source to withdraw the subscription."""

    handoff_id: str
    sub_id: str
    epoch: int
    dest: str

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES


@dataclass
class MigrateDone:
    """Source SHB confirms the withdrawal (tombstone durable)."""

    handoff_id: str
    sub_id: str
    epoch: int

    @property
    def size_bytes(self) -> int:
        return CONTROL_HEADER_BYTES
