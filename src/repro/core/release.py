"""The event retention and release protocol (Section 3).

Terminology (all per pubend ``p``):

* ``T(p)`` — the current time at the pubend.
* ``Td(p)`` — minimum ``latestDelivered(p)`` across all SHBs.
* ``Tr(p)`` — minimum released timestamp across all SHBs.
* Invariant: ``Tr(p) <= Td(p)``.

At every node of the knowledge graph a :class:`ReleaseAggregator`
maintains the two minima over its downstream children; the pubend's
aggregated values are the ``Tr``/``Td`` fed to its early-release
policy.

A policy decides the highest tick that may be converted to L:

* always allowed for ``t <= Tr(p)`` (everyone acknowledged it),
* an *early-release* policy may additionally release ticks in
  ``(Tr(p), Td(p)]`` — never beyond ``Td(p)``, so connected non-catchup
  subscribers (the "well-behaved" ones) never see a gap.

:class:`MaxRetainPolicy` is the paper's example ("PHB Controlled
Policy"): release ``t`` once ``t <= Td(p)`` and ``T(p) - t >
maxRetain(p)``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..util.errors import ProtocolError


class EarlyReleasePolicy:
    """Decides how far the pubend may convert ticks to L."""

    def release_bound(self, now: int, t_r: int, t_d: int) -> int:
        """Highest tick that may become L given current state.

        Must never return more than ``t_d`` beyond ``t_r`` semantics:
        concretely the result must satisfy ``result >= t_r`` implies
        ``result <= max(t_r, t_d)``.
        """
        raise NotImplementedError


class NoEarlyRelease(EarlyReleasePolicy):
    """Release only fully-acknowledged ticks (the experiments' default).

    The paper disabled early release in Section 5 "since we wanted to
    observe system behavior when no gap messages are delivered".
    """

    def release_bound(self, now: int, t_r: int, t_d: int) -> int:
        return t_r


class MaxRetainPolicy(EarlyReleasePolicy):
    """The PHB-controlled policy of Section 3.

    ``t`` may become L when::

        t <= Tr(p)  or  (t <= Td(p) and T(p) - t > maxRetain(p))

    A subscriber in catchup mode risks a gap if its CT falls behind
    ``T(p)`` by more than ``maxRetain(p)``.
    """

    def __init__(self, max_retain_ms: int) -> None:
        if max_retain_ms <= 0:
            raise ValueError("max_retain_ms must be positive")
        self.max_retain_ms = max_retain_ms

    def release_bound(self, now: int, t_r: int, t_d: int) -> int:
        aged_bound = min(t_d, now - self.max_retain_ms - 1)
        return max(t_r, aged_bound)


class ReleaseAggregator:
    """Min-combines release state reported by downstream children.

    Children are registered explicitly (one per downstream link hosting
    subscribers for this pubend); the aggregate is only meaningful once
    every registered child has reported, and :meth:`aggregate` returns
    None until then — releasing on partial information could discard
    ticks an unreported SHB still needs.
    """

    def __init__(self, pubend: str) -> None:
        self.pubend = pubend
        self._children: Dict[Hashable, Optional[Tuple[int, int]]] = {}
        self._child_epochs: Dict[Hashable, int] = {}

    def register_child(self, child: Hashable) -> None:
        """Declare a downstream child that will report release state."""
        self._children.setdefault(child, None)

    def unregister_child(self, child: Hashable) -> None:
        self._children.pop(child, None)
        self._child_epochs.pop(child, None)

    def update(
        self, child: Hashable, released: int, latest_delivered: int, epoch: int = 0
    ) -> None:
        """Fold in a child's :class:`~repro.core.messages.ReleaseUpdate`.

        Within one epoch a child's minima are monotone, so lower values
        are clamped away as resend/reorder noise.  A higher ``epoch``
        signals a legitimate regression — a migrated subscription was
        installed under this child, lowering its minima — and replaces
        the stored values outright.  A *lower* epoch marks a stale
        retransmission and is ignored entirely.
        """
        if released > latest_delivered:
            raise ProtocolError(
                f"release update violates Tr <= Td: {released} > {latest_delivered}"
            )
        prev_epoch = self._child_epochs.get(child, 0)
        if epoch < prev_epoch:
            return
        previous = self._children.get(child)
        if previous is not None and epoch == prev_epoch:
            # Reports are cumulative; a child may resend the same values
            # but must never regress (its own minima are monotone).
            released = max(released, previous[0])
            latest_delivered = max(latest_delivered, previous[1])
        self._child_epochs[child] = epoch
        self._children[child] = (released, latest_delivered)

    def child_epoch(self, child: Hashable) -> int:
        """The latest release epoch reported by ``child`` (0 = none)."""
        return self._child_epochs.get(child, 0)

    def aggregate(self) -> Optional[Tuple[int, int]]:
        """``(min released, min latestDelivered)`` over all children."""
        if not self._children or any(v is None for v in self._children.values()):
            return None
        released = min(v[0] for v in self._children.values())  # type: ignore[index]
        latest = min(v[1] for v in self._children.values())  # type: ignore[index]
        return released, latest

    @property
    def child_count(self) -> int:
        return len(self._children)
