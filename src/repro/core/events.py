"""Published events.

The paper distinguishes *events* (application messages published into
the system) from control messages exchanged inside the overlay.  An
event is immutable once published: the pubend stamps it with a
timestamp that is unique and monotonically increasing within that
pubend's stream ("time ticks are fine-grained enough to ensure no 2
events occur at the same time", Section 2).

The experiments use 418-byte events carrying a 250-byte application
payload; :data:`HEADER_BYTES` captures the 168-byte framing overhead so
workloads can express sizes the way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

#: Wire/framing overhead per event (418 total - 250 payload in the paper).
HEADER_BYTES = 168

#: The payload size used throughout the paper's evaluation.
PAPER_PAYLOAD_BYTES = 250


@dataclass(frozen=True)
class Event:
    """An application event as stored and routed by the system.

    ``pubend`` and ``timestamp`` jointly identify the event; the
    exactly-once guarantee is phrased in terms of this pair.
    ``attributes`` is the content the matching engine filters on;
    ``payload_bytes`` stands in for the opaque application body (only
    its size matters to the system).
    """

    pubend: str
    timestamp: int
    attributes: Mapping[str, Any] = field(default_factory=dict)
    payload_bytes: int = PAPER_PAYLOAD_BYTES
    publisher: Optional[str] = None
    #: Publisher-assigned sequence number (reliable-publishing dedup).
    seq: Optional[int] = None
    #: JMS-style expiration: after this tick the event is no longer
    #: delivered to anyone (None = never expires).  Contrast with the
    #: administrative early-release model, which reclaims *storage* and
    #: notifies affected subscribers with gap messages.
    expires_at: Optional[int] = None

    def expired(self, now: float) -> bool:
        return self.expires_at is not None and now > self.expires_at

    @property
    def size_bytes(self) -> int:
        """Total on-the-wire / on-disk size including framing."""
        return HEADER_BYTES + self.payload_bytes

    @property
    def event_id(self) -> str:
        """A globally unique identifier (pubend + timestamp)."""
        return f"{self.pubend}:{self.timestamp}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.event_id} attrs={dict(self.attributes)!r}>"
