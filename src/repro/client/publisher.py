"""Publisher clients.

Publishers hand events to their PHB; the experiments drive fixed
aggregate input rates (800 events/s spread over 4 pubends) with
attribute assignment that lets subscription workloads hit exact
per-subscriber rates.  :class:`PeriodicPublisher` is the steady-rate
driver used by every benchmark; applications can also call
:meth:`PublisherHostingBroker.publish` directly.

:class:`ReliablePublisher` implements exactly-once publishing (the
companion guarantee from the authors' DSN'02 paper, which this paper
builds on): each event carries a per-publisher sequence number, the
PHB acknowledges once the event is durably logged and deduplicates
retransmissions, and the publisher retries unacknowledged events —
so a PHB crash between accept and log-sync loses nothing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from ..broker.phb import PublisherHostingBroker
from ..core import messages as M
from ..core.events import PAPER_PAYLOAD_BYTES
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler

AttributeFn = Callable[[int], Dict[str, object]]


class PeriodicPublisher:
    """Publishes to one pubend at a fixed rate with generated attributes."""

    def __init__(
        self,
        scheduler: Scheduler,
        phb: PublisherHostingBroker,
        pubend: str,
        rate_per_s: float,
        attribute_fn: AttributeFn,
        payload_bytes: int = PAPER_PAYLOAD_BYTES,
        name: Optional[str] = None,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.scheduler = scheduler
        self.phb = phb
        self.pubend = pubend
        self.interval_ms = 1000.0 / rate_per_s
        self.attribute_fn = attribute_fn
        self.payload_bytes = payload_bytes
        self.name = name or f"pub-{pubend}"
        self.published = 0
        self._timer: Optional[PeriodicHandle] = None

    def start(self, first_delay_ms: Optional[float] = None) -> None:
        if self._timer is not None:
            return
        self._timer = self.scheduler.every(
            self.interval_ms, self._tick, first_delay=first_delay_ms
        )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _tick(self) -> None:
        if self.phb.node.is_down:
            return  # the PHB is crashed; drop (publisher would retry/block)
        attributes = self.attribute_fn(self.published)
        self.phb.publish(
            self.pubend, attributes, self.payload_bytes, publisher=self.name,
            trace_t0=self.scheduler.now,
        )
        self.published += 1


class ReliablePublisher:
    """Exactly-once publishing over a client link to the PHB.

    Events queue locally, are transmitted with monotonically increasing
    sequence numbers inside a bounded window, and are retransmitted
    until the PHB acknowledges their durable logging.  Combined with
    the PHB's sequence dedup this gives exactly-once from application
    to event log across crashes of either side of the link.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        phb: Optional[PublisherHostingBroker],
        node: Optional[Node],
        name: str,
        pubend: str,
        window: int = 64,
        retransmit_ms: float = 500.0,
        link_latency_ms: float = 0.5,
        channel: Optional[object] = None,
    ) -> None:
        self.scheduler = scheduler
        self.phb = phb
        self.node = node
        self.name = name
        self.pubend = pubend
        self.window = window
        self.retransmit_ms = retransmit_ms
        if channel is None:
            assert phb is not None and node is not None
            link = Link(scheduler, node, phb.node, link_latency_ms)
            phb.attach_publisher(link, node)
            self._send: LinkEnd = link.end_for_sender(node)
            link.end_for_sender(phb.node).on_receive(self._on_message, lambda _m: 0.01)
        else:
            # rt substrate: an already-open transport channel to the
            # PHB; acks arrive over the same channel (wired below, once
            # the ack-tracking state exists).
            self._send = channel  # type: ignore[assignment]
        self._next_seq = 1
        self._acked_seq = 0
        #: Unacknowledged, transmitted requests (seq ascending).
        self._unacked: Deque[M.PublishRequest] = deque()
        #: Backlog not yet transmitted (window closed).
        self._backlog: Deque[M.PublishRequest] = deque()
        self._timer = scheduler.every(retransmit_ms, self._retransmit_check)
        self._last_progress = scheduler.now
        self.published = 0
        self.retransmissions = 0
        if channel is not None:
            channel.on_message(self._on_message)  # type: ignore[attr-defined]

    def rebind(self, channel: object) -> None:
        """Adopt a fresh channel after a reconnect (rt substrate).

        The unacked window is retransmitted immediately — the PHB's
        sequence dedup absorbs anything that did survive the old
        connection — and the backlog pump resumes.
        """
        channel.on_message(self._on_message)  # type: ignore[attr-defined]
        self._send = channel  # type: ignore[assignment]
        self._last_progress = self.scheduler.now
        for request in self._unacked:
            self.retransmissions += 1
            self._send.send(request)
        self._pump()

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def publish(
        self,
        attributes: Dict[str, object],
        payload_bytes: int = PAPER_PAYLOAD_BYTES,
        ttl_ms: Optional[int] = None,
    ) -> int:
        """Queue an event for exactly-once publication; returns its seq."""
        request = M.PublishRequest(
            dict(attributes), payload_bytes, publisher=self.name,
            seq=self._next_seq, pubend=self.pubend, ttl_ms=ttl_ms,
            client_ms=self.scheduler.now,
        )
        self._next_seq += 1
        self.published += 1
        self._backlog.append(request)
        self._pump()
        return request.seq  # type: ignore[return-value]

    @property
    def unacknowledged(self) -> int:
        return len(self._unacked) + len(self._backlog)

    def close(self) -> None:
        self._timer.cancel()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self._backlog and len(self._unacked) < self.window:
            request = self._backlog.popleft()
            self._unacked.append(request)
            self._send.send(request)

    def _on_message(self, msg: object) -> None:
        if isinstance(msg, M.PublishAck) and msg.seq > self._acked_seq:
            self._acked_seq = msg.seq
            self._last_progress = self.scheduler.now
            while self._unacked and self._unacked[0].seq <= msg.seq:
                self._unacked.popleft()
            self._pump()

    def _retransmit_check(self) -> None:
        if not self._unacked:
            return
        if self.scheduler.now - self._last_progress < self.retransmit_ms:
            return
        # No progress for a full timeout: resend the window in order
        # (the PHB deduplicates anything that did arrive).
        self._last_progress = self.scheduler.now
        for request in self._unacked:
            self.retransmissions += 1
            self._send.send(request)
