"""Durable subscriber clients.

Implements the subscriber side of the Section 2 system model:

* owns its Checkpoint Token, advancing it as event/silence/gap messages
  arrive in per-pubend timestamp order,
* persists the CT locally "in the context of the transaction that
  consumes messages" (modelled by a committed snapshot taken every
  ``commit_every`` consumed messages; a client crash rolls back to it),
* acks the CT to the SHB periodically (the experiments use 250 ms),
* can disconnect (gracefully or by crash) and reconnect presenting its
  current — or a deliberately stale — CT.

The client also keeps the verification counters the test-suite's
exactly-once checks are built on: per-pubend delivery counts, strict
monotonicity violations (which would indicate duplicates or reordering)
and received gap ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..broker.shb import SubscriberHostingBroker
from ..core import messages as M
from ..core.checkpoint import CheckpointToken
from ..matching.predicates import Predicate
from ..metrics.trace import event_tracer
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler
from ..util.errors import NotConnectedError


@dataclass
class DeliveryStats:
    """Verification counters for one subscriber."""

    events: int = 0
    silences: int = 0
    gaps: int = 0
    order_violations: int = 0
    last_event_ts: Dict[str, int] = field(default_factory=dict)
    gap_ranges: List[Tuple[str, int, int]] = field(default_factory=list)


class DurableSubscriber:
    """A durable subscriber application process."""

    def __init__(
        self,
        scheduler: Scheduler,
        sub_id: str,
        node: Node,
        predicate: Predicate,
        ack_interval_ms: float = 250.0,
        commit_every: int = 1,
        record_events: bool = False,
        on_event: Optional[object] = None,
        connect_retry_ms: Optional[float] = None,
    ) -> None:
        self.scheduler = scheduler
        self.sub_id = sub_id
        self.node = node
        self.predicate = predicate
        self.ack_interval_ms = ack_interval_ms
        self.commit_every = commit_every
        self.record_events = record_events
        #: Optional application callback invoked with each EventMessage
        #: as it is consumed (used e.g. for latency measurement).
        self.on_event = on_event
        #: When set, a ConnectRequest that has not been answered by a
        #: ConnectAccept is retransmitted every this-many ms.  Without
        #: it, a request eaten by a down SHB leaves the client believing
        #: it is connected while the SHB has no session — wedged until
        #: someone notices.  ``None`` (the default) keeps the legacy
        #: no-retry behavior and adds no scheduler events.
        self.connect_retry_ms = connect_retry_ms
        self.ct = CheckpointToken()
        self.committed_ct = CheckpointToken()
        self._since_commit = 0
        self._shb: Optional[SubscriberHostingBroker] = None
        self._link: Optional[Link] = None
        self._send: Optional[LinkEnd] = None
        self._sever: Optional[object] = None  # drops the current session
        self._ack_timer: Optional[PeriodicHandle] = None
        self._connect_timer: Optional[PeriodicHandle] = None
        self._pending_request: Optional[M.ConnectRequest] = None
        self._first_connect_done = False
        self.connected = False
        #: Last ConnectRefused received, as ``(reason, redirect_to)``.
        #: A refusal drops the connection; the application (or the
        #: supervisor's redirect logic in the experiments) decides where
        #: to reconnect — typically ``redirect_to``, the SHB a migrated
        #: subscription now lives on.
        self.last_refusal: Optional[Tuple[str, Optional[str]]] = None
        self._tracer = event_tracer(scheduler)
        self.stats = DeliveryStats()
        self.received_event_ids: List[str] = []
        self.received_event_id_set: Set[str] = set()
        self.duplicate_events = 0

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(
        self,
        shb: SubscriberHostingBroker,
        latency_ms: float = 0.5,
        batch_window_ms: Optional[float] = None,
    ) -> None:
        """Connect (first time or reconnect) to an SHB.

        The client link's batching window defaults to the SHB's
        ``batch_window_ms`` so one knob configures the whole last hop.
        """
        if self.connected:
            raise NotConnectedError(f"{self.sub_id} is already connected")
        if batch_window_ms is None:
            batch_window_ms = getattr(shb, "batch_window_ms", 0.0)
        self._shb = shb
        link = Link(
            self.scheduler, self.node, shb.node, latency_ms,
            batch_window_ms=batch_window_ms,
        )
        self._send = shb.attach_client(link, self.node)
        self._link = link
        self._sever = link.sever
        shb_end = link.end_for_sender(shb.node)
        shb_end.on_receive(self._on_message, shb.costs.client_recv_cost)
        link.on_disconnect(self._on_link_down)
        self._start_session()

    def connect_channel(self, chan) -> None:
        """Connect over a transport-port channel (rt substrate).

        The channel stands in for the sim link: sends go through it and
        its close event is the link-down signal.  The session protocol
        itself — connect request (CT and predicate on reconnect), ack
        timer, connect-request retry — is exactly what :meth:`connect`
        runs.
        """
        if self.connected:
            raise NotConnectedError(f"{self.sub_id} is already connected")
        self._shb = None
        self._link = None
        self._send = chan
        self._sever = chan.close
        chan.on_message(self._on_message)
        chan.on_close(self._on_link_down)
        self._start_session()

    def _start_session(self) -> None:
        assert self._send is not None
        if self._first_connect_done:
            # The predicate rides along so a reconnect to a *different*
            # SHB (reconnect-anywhere) can register the subscription
            # there; an SHB that already knows the subscription ignores
            # it.
            request = M.ConnectRequest(
                self.sub_id, checkpoint=self.ct.as_dict(), predicate=self.predicate
            )
        else:
            request = M.ConnectRequest(self.sub_id, predicate=self.predicate)
        self._send.send(request)
        self.connected = True
        self._ack_timer = self.scheduler.every(self.ack_interval_ms, self._send_ack)
        if self.connect_retry_ms is not None:
            self._pending_request = request
            self._connect_timer = self.scheduler.every(
                self.connect_retry_ms, self._retry_connect
            )

    def disconnect(self) -> None:
        """Graceful disconnect (sends a DisconnectRequest first)."""
        if not self.connected:
            return
        assert self._send is not None
        self._send.send(M.DisconnectRequest(self.sub_id))
        # A transport channel is ours to close; a sim link is shared
        # bookkeeping and is simply abandoned after the request.
        sever = self._sever if self._link is None else None
        self._drop_connection()
        if sever is not None:
            sever()  # type: ignore[operator]

    def crash(self) -> None:
        """Involuntary disconnect: the link just drops.

        The CT rolls back to the committed snapshot, exactly as an
        application recovering from its own failure would observe.
        """
        if self.connected and self._sever is not None:
            self._sever()  # type: ignore[operator]
        self._drop_connection()
        self.ct = self.committed_ct.copy()

    def _drop_connection(self) -> None:
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        self._cancel_connect_retry()
        self.connected = False
        self._link = None
        self._send = None
        self._sever = None

    def _cancel_connect_retry(self) -> None:
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        self._pending_request = None

    def _retry_connect(self) -> None:
        """Retransmit an unanswered ConnectRequest (the SHB may have
        been down, or crashed after receiving it but before accepting)."""
        if not self.connected or self._pending_request is None or self._send is None:
            self._cancel_connect_retry()
            return
        self._send.send(self._pending_request)

    def _on_link_down(self) -> None:
        # SHB crashed (or the link was severed out from under us).
        if self.connected:
            self._drop_connection()

    # ------------------------------------------------------------------
    # Message consumption
    # ------------------------------------------------------------------
    def _on_message(self, msg: object) -> None:
        if isinstance(msg, M.ConnectAccept):
            self._on_accept(msg)
        elif isinstance(msg, M.ConnectRefused):
            self._on_refused(msg)
        elif isinstance(msg, M.EventMessage):
            self._consume_event(msg)
        elif isinstance(msg, M.SilenceMessage):
            self._consume_marker(msg.pubend, msg.t, is_gap=False)
        elif isinstance(msg, M.GapMessage):
            self._consume_marker(msg.pubend, msg.t, is_gap=True)

    def _on_refused(self, msg: M.ConnectRefused) -> None:
        """The SHB cannot host us (draining, or we migrated away)."""
        self.last_refusal = (msg.reason, msg.redirect_to)
        sever = self._sever
        self._drop_connection()
        if sever is not None:
            sever()  # type: ignore[operator]

    def _on_accept(self, msg: M.ConnectAccept) -> None:
        self._cancel_connect_retry()
        if not self._first_connect_done:
            # The SHB assigned our starting point; adopt it wholesale.
            self.ct = CheckpointToken(msg.checkpoint)
            self.committed_ct = self.ct.copy()
            self._first_connect_done = True

    def _consume_event(self, msg: M.EventMessage) -> None:
        last = self.stats.last_event_ts.get(msg.pubend, -1)
        if msg.t <= last or msg.t <= self.ct.get(msg.pubend, -1):
            self.stats.order_violations += 1
        self.stats.last_event_ts[msg.pubend] = max(last, msg.t)
        self.stats.events += 1
        if self.record_events:
            event_id = msg.event.event_id
            if event_id in self.received_event_id_set:
                self.duplicate_events += 1
            else:
                self.received_event_id_set.add(event_id)
                self.received_event_ids.append(event_id)
        self._advance(msg.pubend, msg.t)
        if self._tracer.tracing:
            self._tracer.on_consume(msg.event.event_id, self.sub_id)
        if self.on_event is not None:
            self.on_event(msg)  # type: ignore[operator]

    def _consume_marker(self, pubend: str, t: int, is_gap: bool) -> None:
        if t < self.ct.get(pubend, 0):
            self.stats.order_violations += 1
            return
        if is_gap:
            self.stats.gaps += 1
            self.stats.gap_ranges.append((pubend, self.ct.get(pubend, 0) + 1, t))
        else:
            self.stats.silences += 1
        self._advance(pubend, t)

    def _advance(self, pubend: str, t: int) -> None:
        if t > self.ct.get(pubend, -1):
            self.ct.advance(pubend, t)
        self._since_commit += 1
        if self._since_commit >= self.commit_every:
            self.committed_ct = self.ct.copy()
            self._since_commit = 0

    # ------------------------------------------------------------------
    # Acks
    # ------------------------------------------------------------------
    def _send_ack(self) -> None:
        if self.connected and self._send is not None:
            # Ack the *committed* CT: acknowledging past it could turn
            # a client crash into message loss.
            self._send.send(M.AckCheckpoint(self.sub_id, self.committed_ct.as_dict()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "connected" if self.connected else "disconnected"
        return f"<DurableSubscriber {self.sub_id} {state} events={self.stats.events}>"
