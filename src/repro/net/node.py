"""Simulated processing nodes with a serial CPU service model.

Every broker and client machine in the paper's testbed is a real
computer whose CPU saturates: Figure 4's peak-throughput numbers and
Figure 8's CPU-idle plots are direct consequences of that.  This module
reproduces the effect with the simplest queueing model that yields it:

* each :class:`Node` owns one logical CPU served in FIFO order,
* work is submitted as ``(cost_ms, callback)`` pairs,
* the callback runs when its *service completes*, so queueing delay and
  service time both contribute to latency,
* busy time is accounted into a :class:`~repro.util.rate.BusyTracker`
  so experiments can sample CPU idle exactly the way the paper plots it.

Crash-stop failures: :meth:`Node.crash` discards all queued work and
makes the node reject submissions; :meth:`Node.recover` brings it back
with an empty queue (volatile state is the owner's problem — brokers
re-initialize from their persistent stores, Section 4.1).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from ..util.errors import NodeDownError
from ..util.rate import BusyTracker
from .simtime import Scheduler

#: Marker held in ``_in_service`` while a job's completion is posted.
#: Completions are fire-and-forget (:meth:`Scheduler.post`) — a crash
#: does not cancel them, it bumps the epoch so they return unheeded.
_BUSY = object()


class Node:
    """A named machine with one FIFO-served CPU and crash semantics."""

    def __init__(self, scheduler: Scheduler, name: str, speed: float = 1.0) -> None:
        """``speed`` scales service costs: 2.0 halves every CPU cost.

        The paper's brokers ran on 6-way SMP boxes; rather than model
        parallelism we fold aggregate capacity into ``speed``.
        """
        if speed <= 0:
            raise ValueError("speed must be positive")
        self.scheduler = scheduler
        self.name = name
        self.speed = speed
        self.busy = BusyTracker()
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._in_service: Optional[object] = None
        self._down = False
        self._epoch = 0  # bumped on crash; stale completions are ignored
        self._crash_listeners: List[Callable[[], None]] = []
        self._recover_listeners: List[Callable[[], None]] = []
        # Optional external stall source (models e.g. the JVM GC pauses
        # that produce the periodic dips in Figure 6): while stalled, the
        # CPU finishes its current item but starts nothing new.
        self._stalled_until = 0.0

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        return self._down

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for service (excludes the one in service)."""
        return len(self._queue)

    def on_crash(self, fn: Callable[[], None]) -> None:
        """Register a callback fired when the node crashes."""
        self._crash_listeners.append(fn)

    def on_recover(self, fn: Callable[[], None]) -> None:
        """Register a callback fired when the node recovers."""
        self._recover_listeners.append(fn)

    # ------------------------------------------------------------------
    # Work submission
    # ------------------------------------------------------------------
    def submit(self, cost_ms: float, fn: Callable[[], None]) -> None:
        """Queue ``fn`` to run after ``cost_ms / speed`` of CPU service.

        Raises :class:`NodeDownError` if the node is crashed; network
        links catch this and silently drop deliveries, matching the
        behaviour of messages sent to a dead TCP endpoint.
        """
        if self._down:
            raise NodeDownError(f"node {self.name} is down")
        if cost_ms < 0:
            raise ValueError("cost must be non-negative")
        self._queue.append((cost_ms / self.speed, fn))
        if self._in_service is None:
            self._start_next()

    def try_submit(self, cost_ms: float, fn: Callable[[], None]) -> bool:
        """Like :meth:`submit` but returns False instead of raising."""
        if self._down:
            return False
        self.submit(cost_ms, fn)
        return True

    def stall(self, duration_ms: float) -> None:
        """Pause the CPU for ``duration_ms`` (models GC pauses etc.).

        The item currently in service finishes normally; the next item
        does not begin until the stall expires.
        """
        self._stalled_until = max(self._stalled_until, self.scheduler.now + duration_ms)
        # If the CPU is idle right now, arrange to start work when the
        # stall expires (new submissions would also trigger a start, but
        # queued work must not be forgotten).
        if self._in_service is None and self._queue:
            epoch = self._epoch
            self.scheduler.at(
                self._stalled_until,
                lambda: self._start_next() if epoch == self._epoch and self._in_service is None else None,
            )

    def _start_next(self) -> None:
        if self._down or not self._queue:
            return
        now = self.scheduler.now
        if now < self._stalled_until:
            epoch = self._epoch
            self.scheduler.at(
                self._stalled_until,
                lambda: self._start_next() if epoch == self._epoch and self._in_service is None else None,
            )
            return
        cost, fn = self._queue.popleft()
        epoch = self._epoch
        self.busy.add_busy(cost)
        self._in_service = _BUSY
        self.scheduler.post(now + cost, self._complete, epoch, fn)

    def _complete(self, epoch: int, fn: Callable[[], None]) -> None:
        if epoch != self._epoch:
            return  # the node crashed while this job was in service
        self._in_service = None
        try:
            fn()
        finally:
            if self._in_service is None:
                self._start_next()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Crash-stop: lose all queued and in-service work immediately."""
        if self._down:
            return
        self._down = True
        self._epoch += 1
        self._queue.clear()
        # The posted completion (if any) will fire with a stale epoch
        # and return without running the job.
        self._in_service = None
        for fn in list(self._crash_listeners):
            fn()

    def recover(self) -> None:
        """Bring the node back with an empty queue."""
        if not self._down:
            return
        self._down = False
        self._stalled_until = 0.0
        for fn in list(self._recover_listeners):
            fn()

    def fail_for(self, duration_ms: float) -> None:
        """Crash now and recover after ``duration_ms`` of virtual time."""
        self.crash()
        self.scheduler.after(duration_ms, self.recover)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "down" if self._down else "up"
        return f"<Node {self.name} {state} q={len(self._queue)}>"
