"""Discrete-event simulation kernel.

The paper's evaluation ran on a cluster of IBM RS/6000 servers; this
reproduction runs the identical protocol code against a deterministic
discrete-event scheduler instead.  The kernel is deliberately tiny:

* time is a float in **milliseconds** (the paper's tick unit),
* events fire in ``(time, sequence)`` order, so equal-time events fire
  in scheduling order and every run is exactly reproducible,
* handles support O(1) cancellation (lazily removed from the heap),
* fire-and-forget callbacks (:meth:`Scheduler.post`) skip the handle
  allocation entirely — the per-message hot path (link arrivals,
  batch flushes) schedules bare heap tuples.

Periodic activities (knowledge flushes, ack timers, metric sampling)
are built from :meth:`Scheduler.every`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class EventHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., None]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True
        self.fn = None  # release references early
        self.args = ()


class PeriodicHandle:
    """A cancellable reference to a repeating callback.

    ``dead`` is set when the periodic stops because its callback raised
    (and no ``on_error`` hook swallowed the failure); ``cancel`` is safe
    to call in that state — it is a no-op beyond marking ``cancelled``.
    """

    __slots__ = ("_current", "cancelled", "dead")

    def __init__(self) -> None:
        self._current: Optional[EventHandle] = None
        self.cancelled = False
        self.dead = False

    def cancel(self) -> None:
        self.cancelled = True
        if self._current is not None:
            self._current.cancel()
            self._current = None


class Scheduler:
    """The virtual clock and event queue shared by a whole simulation."""

    def __init__(self) -> None:
        self._now = 0.0
        # Entries are (time, seq, EventHandle) for cancellable events or
        # (time, seq, fn, args) for posted ones; seq is unique, so heap
        # comparisons are decided before reaching the third element and
        # the two shapes coexist in one heap.
        self._heap: List[Tuple[Any, ...]] = []
        self._seq = itertools.count()
        self._executed = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._executed

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        handle = EventHandle(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def after(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self._now + delay, fn, *args)

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at ``time``, fire-and-forget.

        The hot-path variant of :meth:`at` for callbacks that are never
        cancelled (link arrivals, batch flushes): no
        :class:`EventHandle` is allocated and no cancellation check runs
        at fire time.  Firing order relative to :meth:`at` events is
        identical — both share the ``(time, seq)`` key.
        """
        if time < self._now:
            raise ValueError(f"cannot schedule in the past: {time} < {self._now}")
        heapq.heappush(self._heap, (time, next(self._seq), fn, args))

    def every(
        self,
        interval: float,
        fn: Callable[..., None],
        *args: Any,
        first_delay: Optional[float] = None,
        on_error: Optional[Callable[[BaseException], None]] = None,
    ) -> PeriodicHandle:
        """Schedule ``fn(*args)`` every ``interval`` ms until cancelled.

        The first firing happens after ``first_delay`` (default: one full
        interval).  Firings land on the absolute grid ``t0 + n*interval``
        (``t0`` the first firing time): each target is computed by one
        multiply-add from the anchor, never by accumulating relative
        delays, so float rounding cannot drift a long-running periodic
        off its grid (at interval 0.1 the 10^6th firing is still within
        one ulp of ``10^5``).

        A callback that raises stops the periodic: the handle is marked
        ``dead``, ``cancel()`` stays safe, and the exception propagates
        to the caller of :meth:`step`/:meth:`run`.  Passing ``on_error``
        keeps the periodic alive instead: the hook receives the
        exception and the next firing is scheduled as usual (unless the
        hook itself raises, or cancelled the handle).
        """
        if interval <= 0:
            raise ValueError(f"non-positive interval: {interval}")
        periodic = PeriodicHandle()
        delay = interval if first_delay is None else first_delay
        anchor = self._now + delay
        count = 0

        def tick() -> None:
            nonlocal count
            if periodic.cancelled:
                return
            try:
                fn(*args)
            except Exception as exc:
                if on_error is None:
                    periodic.dead = True
                    periodic._current = None
                    raise
                on_error(exc)
            if not periodic.cancelled:
                count += 1
                target = anchor + count * interval
                if target < self._now:
                    # The callback consumed virtual time past one or
                    # more grid points (nested run_until); skip forward
                    # to the next future grid point rather than firing
                    # a catch-up burst in the past.
                    count = int((self._now - anchor) // interval) + 1
                    target = max(anchor + count * interval, self._now)
                periodic._current = self.at(target, tick)

        periodic._current = self.at(anchor, tick)
        return periodic

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if len(entry) == 4:  # posted: (time, seq, fn, args)
                self._now = entry[0]
                self._executed += 1
                entry[2](*entry[3])
                return True
            time, _seq, handle = entry
            if handle.cancelled:
                continue
            self._now = time
            fn, args = handle.fn, handle.args
            handle.fn, handle.args = None, ()  # allow GC of closures
            assert fn is not None
            self._executed += 1
            fn(*args)
            return True
        return False

    def run_until(self, time: float) -> None:
        """Execute every event with timestamp ``<= time``; advance clock to ``time``."""
        while self._heap:
            next_time = self._heap[0][0]
            if next_time > time:
                break
            if not self.step():
                break
        if time > self._now:
            self._now = time

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue (optionally bounded).  Returns events executed."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed
