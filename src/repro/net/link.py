"""Point-to-point FIFO links between simulation nodes.

Gryphon brokers connect over TCP; the properties the protocol relies on
are (1) FIFO delivery per direction, (2) silent loss of everything in
flight when an endpoint crashes, and (3) connection teardown notifying
the surviving endpoint.  :class:`Link` provides exactly those.

Delivery of a message costs CPU at the *receiver* (``recv_cost_ms``
from the message, see :class:`repro.net.transport.Endpoint`), so a
flooded receiver saturates and back-pressures throughput — the effect
behind Figure 4's peak-rate measurements.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .node import Node
from .simtime import Scheduler


class LinkEnd:
    """One direction of a :class:`Link` (sender's view)."""

    def __init__(self, link: "Link", sender: Node, receiver: Node) -> None:
        self._link = link
        self.sender = sender
        self.receiver = receiver
        self._handler: Optional[Callable[[Any], None]] = None
        self._recv_cost: Callable[[Any], float] = lambda _msg: 0.0
        self._last_arrival = 0.0
        self.sent = 0
        self.delivered = 0
        self.dropped = 0

    def on_receive(self, handler: Callable[[Any], None], recv_cost: Callable[[Any], float]) -> None:
        """Install the receiver-side handler and its CPU-cost model."""
        self._handler = handler
        self._recv_cost = recv_cost

    def send(self, msg: Any) -> None:
        """Transmit ``msg``; it arrives after the link latency, in order.

        Messages sent while either endpoint is down are dropped, as are
        messages whose receiver crashes while they are in flight (the
        crash bumps the receiver's epoch, so their completion callbacks
        never run — see :class:`repro.net.node.Node`).
        """
        self.sent += 1
        if self._link.down or self.sender.is_down or self.receiver.is_down:
            self.dropped += 1
            return
        scheduler = self._link.scheduler
        arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
        self._last_arrival = arrival
        scheduler.at(arrival, self._arrive, msg)

    def _arrive(self, msg: Any) -> None:
        if self._link.down or self.receiver.is_down or self._handler is None:
            self.dropped += 1
            return
        handler = self._handler
        if not self.receiver.try_submit(self._recv_cost(msg), lambda: handler(msg)):
            self.dropped += 1
            return
        self.delivered += 1


class Link:
    """A bidirectional FIFO channel between two nodes."""

    def __init__(self, scheduler: Scheduler, a: Node, b: Node, latency_ms: float = 1.0) -> None:
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.down = False
        self.a_to_b = LinkEnd(self, a, b)
        self.b_to_a = LinkEnd(self, b, a)
        self._disconnect_listeners: List[Callable[[], None]] = []
        # A crash of either endpoint tears the connection down from the
        # point of view of the survivor.
        a.on_crash(self._endpoint_crashed)
        b.on_crash(self._endpoint_crashed)

    def end_for_sender(self, node: Node) -> LinkEnd:
        """The directed end whose sender is ``node``."""
        if node is self.a_to_b.sender:
            return self.a_to_b
        if node is self.b_to_a.sender:
            return self.b_to_a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def on_disconnect(self, fn: Callable[[], None]) -> None:
        self._disconnect_listeners.append(fn)

    def sever(self) -> None:
        """Administratively cut the link (both directions)."""
        if self.down:
            return
        self.down = True
        for fn in list(self._disconnect_listeners):
            fn()

    def restore(self) -> None:
        """Re-establish a severed link (a fresh FIFO connection)."""
        self.down = False
        self.a_to_b._last_arrival = 0.0
        self.b_to_a._last_arrival = 0.0

    def _endpoint_crashed(self) -> None:
        for fn in list(self._disconnect_listeners):
            fn()
