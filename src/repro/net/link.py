"""Point-to-point FIFO links between simulation nodes.

Gryphon brokers connect over TCP; the properties the protocol relies on
are (1) FIFO delivery per direction, (2) silent loss of everything in
flight when an endpoint crashes, and (3) connection teardown notifying
the surviving endpoint.  :class:`Link` provides exactly those.

Delivery of a message costs CPU at the *receiver* (``recv_cost_ms``
from the message, see :class:`repro.net.transport.Endpoint`), so a
flooded receiver saturates and back-pressures throughput — the effect
behind Figure 4's peak-rate measurements.

Links optionally batch: with ``batch_window_ms > 0`` a direction
buffers messages for up to that long and ships the whole buffer as one
transmission — one scheduled callback and one receiver CPU submission
(costing the sum of the per-message receive costs) instead of one of
each per message.  FIFO order and the loss semantics above are
unchanged; a window of 0 uses the exact unbatched path.

Links optionally misbehave: a :class:`FaultSpec` installed on a
direction makes it drop, duplicate, reorder (within a bound) or
corrupt transmissions, each with an independent probability drawn from
a per-direction seeded RNG.  Corrupt transmissions travel inside a
CRC-checked :class:`~repro.core.messages.Frame` and are counted and
discarded by the receiving end, exactly like a frame whose checksum
fails on a real wire.  With no faults installed (the default) every
send takes the exact pre-fault code path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..core.messages import Frame
from .node import Node
from .simtime import Scheduler


@dataclass(frozen=True)
class FaultSpec:
    """Per-direction link fault probabilities (all default to healthy).

    ``drop_p``/``dup_p``/``corrupt_p`` apply independently to each
    transmission (a batched flush is one transmission, like one TCP
    segment).  ``reorder_p`` delays a transmission by up to
    ``reorder_max_ms`` *without* holding back later traffic, so
    successors may overtake it — bounded reordering.
    """

    drop_p: float = 0.0
    dup_p: float = 0.0
    reorder_p: float = 0.0
    reorder_max_ms: float = 5.0
    corrupt_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "dup_p", "reorder_p", "corrupt_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")
        if self.reorder_max_ms < 0:
            raise ValueError("reorder_max_ms must be non-negative")

    @property
    def active(self) -> bool:
        return bool(self.drop_p or self.dup_p or self.reorder_p or self.corrupt_p)


class LinkStats:
    """Aggregate wire counters across every link sharing a scheduler.

    ``messages`` counts logical messages put on the wire, and
    ``transmissions`` the scheduled arrival callbacks that carried them,
    so ``messages / transmissions`` is the mean batch size and
    ``transmissions / events published`` is the messages-per-event
    figure the batching benchmarks report.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.transmissions = 0
        self.batches = 0  # transmissions that carried more than one message
        self.largest_batch = 0
        self.dropped = 0
        # Injected-fault counters (messages, not transmissions).
        self.fault_dropped = 0
        self.corrupt_dropped = 0
        self.duplicated = 0
        self.reordered = 0

    @property
    def mean_batch_size(self) -> float:
        if self.transmissions == 0:
            return 0.0
        return self.messages / self.transmissions

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "transmissions": self.transmissions,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "dropped": self.dropped,
            "fault_dropped": self.fault_dropped,
            "corrupt_dropped": self.corrupt_dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "mean_batch_size": self.mean_batch_size,
        }


def link_stats(scheduler: Scheduler) -> LinkStats:
    """The shared :class:`LinkStats` for ``scheduler`` (created lazily).

    Client links churn (each reconnect makes a fresh :class:`Link`), so
    per-link counters undercount; every link reports into this single
    per-scheduler aggregate as well.
    """
    stats = getattr(scheduler, "_link_stats", None)
    if stats is None:
        stats = LinkStats()
        scheduler._link_stats = stats  # type: ignore[attr-defined]
    return stats


class LinkEnd:
    """One direction of a :class:`Link` (sender's view)."""

    def __init__(self, link: "Link", sender: Node, receiver: Node) -> None:
        self._link = link
        self.sender = sender
        self.receiver = receiver
        self._handler: Optional[Callable[[Any], None]] = None
        self._batch_handler: Optional[Callable[[List[Any]], None]] = None
        self._recv_cost: Callable[[Any], float] = lambda _msg: 0.0
        self._last_arrival = 0.0
        self._buffer: List[Any] = []
        self._flush_pending = False
        self._faults: Optional[FaultSpec] = None
        self._fault_rng: Optional[random.Random] = None
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.transmissions = 0
        self.fault_dropped = 0
        self.corrupt_dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def on_receive(
        self,
        handler: Callable[[Any], None],
        recv_cost: Callable[[Any], float],
        batch_handler: Optional[Callable[[List[Any]], None]] = None,
    ) -> None:
        """Install the receiver-side handler and its CPU-cost model.

        ``batch_handler``, if given, receives the whole message list of
        a batched transmission in one call (still charged the summed
        per-message cost); otherwise ``handler`` is invoked once per
        message, in order.  Unbatched transmissions always use
        ``handler``.
        """
        self._handler = handler
        self._recv_cost = recv_cost
        self._batch_handler = batch_handler

    def set_faults(self, spec: Optional[FaultSpec], seed: int = 0) -> None:
        """Install (or clear, with ``None``/inactive spec) fault injection.

        The direction's RNG is derived from ``seed`` plus the endpoint
        names, so every direction of every link draws an independent but
        reproducible stream; it persists across spec changes so repeated
        loss bursts do not replay the same pattern.
        """
        if spec is None or not spec.active:
            self._faults = None
            return
        self._faults = spec
        if self._fault_rng is None:
            self._fault_rng = random.Random(
                f"link-faults:{seed}:{self.sender.name}>{self.receiver.name}"
            )

    def send(self, msg: Any) -> None:
        """Transmit ``msg``; it arrives after the link latency, in order.

        Messages sent while either endpoint is down are dropped, as are
        messages whose receiver crashes while they are in flight (the
        crash bumps the receiver's epoch, so their completion callbacks
        never run — see :class:`repro.net.node.Node`).
        """
        self.sent += 1
        if self._link.down or self.sender.is_down or self.receiver.is_down:
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        if self._link.batch_window_ms <= 0.0:
            if self._faults is not None:
                self._transmit_faulty(msg, is_batch=False)
                return
            scheduler = self._link.scheduler
            arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
            self._last_arrival = arrival
            self._record_transmission(1)
            scheduler.post(arrival, self._arrive, msg)
            return
        self._buffer.append(msg)
        if not self._flush_pending:
            self._flush_pending = True
            scheduler = self._link.scheduler
            scheduler.post(scheduler.now + self._link.batch_window_ms, self._flush)

    def _flush(self) -> None:
        self._flush_pending = False
        batch, self._buffer = self._buffer, []
        if not batch:
            return
        if self._link.down or self.sender.is_down or self.receiver.is_down:
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        if self._faults is not None:
            self._transmit_faulty(batch, is_batch=True)
            return
        scheduler = self._link.scheduler
        arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
        self._last_arrival = arrival
        self._record_transmission(len(batch))
        scheduler.post(arrival, self._arrive_batch, batch)

    def _transmit_faulty(self, payload: Any, is_batch: bool) -> None:
        """The fault-injected transmission path (one TCP-segment analog).

        Fault order per transmission: drop, then corruption (framing),
        then duplication, then per-copy reordering.  A reordered copy
        skips the FIFO clamp — later transmissions may overtake it —
        but stays within ``reorder_max_ms`` of the nominal arrival.
        """
        spec, rng = self._faults, self._fault_rng
        assert spec is not None and rng is not None
        stats = self._link.stats
        n = len(payload) if is_batch else 1
        if spec.drop_p and rng.random() < spec.drop_p:
            self.fault_dropped += n
            stats.fault_dropped += n
            return
        wire: Any = payload
        if spec.corrupt_p:
            wire = Frame(payload)
            if rng.random() < spec.corrupt_p:
                wire.corrupt_in_flight()
        copies = 1
        if spec.dup_p and rng.random() < spec.dup_p:
            copies = 2
            self.duplicated += n
            stats.duplicated += n
        scheduler = self._link.scheduler
        arrive = self._arrive_batch if is_batch else self._arrive
        for _ in range(copies):
            if spec.reorder_p and rng.random() < spec.reorder_p:
                arrival = (
                    scheduler.now + self._link.latency_ms
                    + rng.uniform(0.0, spec.reorder_max_ms)
                )
                self.reordered += n
                stats.reordered += n
            else:
                arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
                self._last_arrival = arrival
            self._record_transmission(n)
            scheduler.post(arrival, arrive, wire)

    def _discard_buffer(self) -> None:
        """Drop (and count) messages buffered on a torn-down connection.

        Called when the link severs or an endpoint crashes: a batch
        buffer is in-flight connection state, so delivering it on the
        *next* connection after a restore would violate the fail-stop
        loss contract.  Counting keeps delivered+dropped+buffered exact.
        """
        if self._buffer:
            n = len(self._buffer)
            self._buffer.clear()
            self.dropped += n
            self._link.stats.dropped += n

    def _record_transmission(self, n_messages: int) -> None:
        self.transmissions += 1
        stats = self._link.stats
        stats.transmissions += 1
        stats.messages += n_messages
        if n_messages > 1:
            stats.batches += 1
        if n_messages > stats.largest_batch:
            stats.largest_batch = n_messages

    def _check_frame(self, wire: Any, n: int) -> Optional[Any]:
        """Unwrap a CRC :class:`Frame`; ``None`` if the checksum fails."""
        if not isinstance(wire, Frame):
            return wire
        if not wire.verify():
            self.corrupt_dropped += n
            self._link.stats.corrupt_dropped += n
            return None
        return wire.payload

    def _arrive(self, msg: Any) -> None:
        if self._link.down or self.receiver.is_down or self._handler is None:
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        msg = self._check_frame(msg, 1)
        if msg is None:
            return
        handler = self._handler
        if not self.receiver.try_submit(self._recv_cost(msg), lambda: handler(msg)):
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        self.delivered += 1

    def _arrive_batch(self, batch: Any) -> None:
        if isinstance(batch, Frame):
            unwrapped = self._check_frame(batch, len(batch.payload))
            if unwrapped is None:
                return
            batch = unwrapped
        if self._link.down or self.receiver.is_down or self._handler is None:
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        cost = sum(self._recv_cost(m) for m in batch)
        batch_handler = self._batch_handler
        if batch_handler is not None:
            job: Callable[[], None] = lambda: batch_handler(batch)
        else:
            handler = self._handler

            def job() -> None:
                for m in batch:
                    handler(m)

        if not self.receiver.try_submit(cost, job):
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        self.delivered += len(batch)


class Link:
    """A bidirectional FIFO channel between two nodes."""

    def __init__(
        self,
        scheduler: Scheduler,
        a: Node,
        b: Node,
        latency_ms: float = 1.0,
        batch_window_ms: float = 0.0,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if batch_window_ms < 0:
            raise ValueError("batch window must be non-negative")
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.batch_window_ms = batch_window_ms
        self.stats = link_stats(scheduler)
        self.down = False
        self.a_to_b = LinkEnd(self, a, b)
        self.b_to_a = LinkEnd(self, b, a)
        self._disconnect_listeners: List[Callable[[], None]] = []
        self._restore_listeners: List[Callable[[], None]] = []
        # A crash of either endpoint tears the connection down from the
        # point of view of the survivor.
        a.on_crash(self._endpoint_crashed)
        b.on_crash(self._endpoint_crashed)

    def end_for_sender(self, node: Node) -> LinkEnd:
        """The directed end whose sender is ``node``."""
        if node is self.a_to_b.sender:
            return self.a_to_b
        if node is self.b_to_a.sender:
            return self.b_to_a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def on_disconnect(self, fn: Callable[[], None]) -> None:
        self._disconnect_listeners.append(fn)

    def on_restore(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run whenever a severed link comes back up.

        Brokers use this to re-sync state eagerly (refresh subscriptions,
        re-report release levels, kick curiosity) instead of waiting out
        a poll interval.
        """
        self._restore_listeners.append(fn)

    def set_faults(
        self,
        a_to_b: Optional[FaultSpec] = None,
        b_to_a: Optional[FaultSpec] = None,
        seed: int = 0,
    ) -> None:
        """Install fault specs on both directions (``None`` clears one)."""
        self.a_to_b.set_faults(a_to_b, seed)
        self.b_to_a.set_faults(b_to_a, seed)

    def clear_faults(self) -> None:
        self.a_to_b.set_faults(None)
        self.b_to_a.set_faults(None)

    def sever(self) -> None:
        """Administratively cut the link (both directions)."""
        if self.down:
            return
        self.down = True
        # Teardown loses the connection's buffered (unsent) batches.
        self.a_to_b._discard_buffer()
        self.b_to_a._discard_buffer()
        for fn in list(self._disconnect_listeners):
            fn()

    def restore(self) -> None:
        """Re-establish a severed link (a fresh FIFO connection)."""
        was_down = self.down
        self.down = False
        self.a_to_b._discard_buffer()
        self.b_to_a._discard_buffer()
        self.a_to_b._last_arrival = 0.0
        self.b_to_a._last_arrival = 0.0
        if was_down:
            for fn in list(self._restore_listeners):
                fn()

    def _endpoint_crashed(self) -> None:
        # The crashed end's buffer is volatile state; the survivor's
        # buffer dies with the connection.  Both are lost, and counted.
        self.a_to_b._discard_buffer()
        self.b_to_a._discard_buffer()
        for fn in list(self._disconnect_listeners):
            fn()
