"""Point-to-point FIFO links between simulation nodes.

Gryphon brokers connect over TCP; the properties the protocol relies on
are (1) FIFO delivery per direction, (2) silent loss of everything in
flight when an endpoint crashes, and (3) connection teardown notifying
the surviving endpoint.  :class:`Link` provides exactly those.

Delivery of a message costs CPU at the *receiver* (``recv_cost_ms``
from the message, see :class:`repro.net.transport.Endpoint`), so a
flooded receiver saturates and back-pressures throughput — the effect
behind Figure 4's peak-rate measurements.

Links optionally batch: with ``batch_window_ms > 0`` a direction
buffers messages for up to that long and ships the whole buffer as one
transmission — one scheduled callback and one receiver CPU submission
(costing the sum of the per-message receive costs) instead of one of
each per message.  FIFO order and the loss semantics above are
unchanged; a window of 0 uses the exact unbatched path.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .node import Node
from .simtime import Scheduler


class LinkStats:
    """Aggregate wire counters across every link sharing a scheduler.

    ``messages`` counts logical messages put on the wire, and
    ``transmissions`` the scheduled arrival callbacks that carried them,
    so ``messages / transmissions`` is the mean batch size and
    ``transmissions / events published`` is the messages-per-event
    figure the batching benchmarks report.
    """

    def __init__(self) -> None:
        self.messages = 0
        self.transmissions = 0
        self.batches = 0  # transmissions that carried more than one message
        self.largest_batch = 0
        self.dropped = 0

    @property
    def mean_batch_size(self) -> float:
        if self.transmissions == 0:
            return 0.0
        return self.messages / self.transmissions

    def snapshot(self) -> dict:
        return {
            "messages": self.messages,
            "transmissions": self.transmissions,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "dropped": self.dropped,
            "mean_batch_size": self.mean_batch_size,
        }


def link_stats(scheduler: Scheduler) -> LinkStats:
    """The shared :class:`LinkStats` for ``scheduler`` (created lazily).

    Client links churn (each reconnect makes a fresh :class:`Link`), so
    per-link counters undercount; every link reports into this single
    per-scheduler aggregate as well.
    """
    stats = getattr(scheduler, "_link_stats", None)
    if stats is None:
        stats = LinkStats()
        scheduler._link_stats = stats  # type: ignore[attr-defined]
    return stats


class LinkEnd:
    """One direction of a :class:`Link` (sender's view)."""

    def __init__(self, link: "Link", sender: Node, receiver: Node) -> None:
        self._link = link
        self.sender = sender
        self.receiver = receiver
        self._handler: Optional[Callable[[Any], None]] = None
        self._batch_handler: Optional[Callable[[List[Any]], None]] = None
        self._recv_cost: Callable[[Any], float] = lambda _msg: 0.0
        self._last_arrival = 0.0
        self._buffer: List[Any] = []
        self._flush_pending = False
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.transmissions = 0

    def on_receive(
        self,
        handler: Callable[[Any], None],
        recv_cost: Callable[[Any], float],
        batch_handler: Optional[Callable[[List[Any]], None]] = None,
    ) -> None:
        """Install the receiver-side handler and its CPU-cost model.

        ``batch_handler``, if given, receives the whole message list of
        a batched transmission in one call (still charged the summed
        per-message cost); otherwise ``handler`` is invoked once per
        message, in order.  Unbatched transmissions always use
        ``handler``.
        """
        self._handler = handler
        self._recv_cost = recv_cost
        self._batch_handler = batch_handler

    def send(self, msg: Any) -> None:
        """Transmit ``msg``; it arrives after the link latency, in order.

        Messages sent while either endpoint is down are dropped, as are
        messages whose receiver crashes while they are in flight (the
        crash bumps the receiver's epoch, so their completion callbacks
        never run — see :class:`repro.net.node.Node`).
        """
        self.sent += 1
        if self._link.down or self.sender.is_down or self.receiver.is_down:
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        if self._link.batch_window_ms <= 0.0:
            scheduler = self._link.scheduler
            arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
            self._last_arrival = arrival
            self._record_transmission(1)
            scheduler.at(arrival, self._arrive, msg)
            return
        self._buffer.append(msg)
        if not self._flush_pending:
            self._flush_pending = True
            self._link.scheduler.after(self._link.batch_window_ms, self._flush)

    def _flush(self) -> None:
        self._flush_pending = False
        batch, self._buffer = self._buffer, []
        if not batch:
            return
        if self._link.down or self.sender.is_down or self.receiver.is_down:
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        scheduler = self._link.scheduler
        arrival = max(scheduler.now + self._link.latency_ms, self._last_arrival)
        self._last_arrival = arrival
        self._record_transmission(len(batch))
        scheduler.at(arrival, self._arrive_batch, batch)

    def _record_transmission(self, n_messages: int) -> None:
        self.transmissions += 1
        stats = self._link.stats
        stats.transmissions += 1
        stats.messages += n_messages
        if n_messages > 1:
            stats.batches += 1
        if n_messages > stats.largest_batch:
            stats.largest_batch = n_messages

    def _arrive(self, msg: Any) -> None:
        if self._link.down or self.receiver.is_down or self._handler is None:
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        handler = self._handler
        if not self.receiver.try_submit(self._recv_cost(msg), lambda: handler(msg)):
            self.dropped += 1
            self._link.stats.dropped += 1
            return
        self.delivered += 1

    def _arrive_batch(self, batch: List[Any]) -> None:
        if self._link.down or self.receiver.is_down or self._handler is None:
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        cost = sum(self._recv_cost(m) for m in batch)
        batch_handler = self._batch_handler
        if batch_handler is not None:
            job: Callable[[], None] = lambda: batch_handler(batch)
        else:
            handler = self._handler

            def job() -> None:
                for m in batch:
                    handler(m)

        if not self.receiver.try_submit(cost, job):
            self.dropped += len(batch)
            self._link.stats.dropped += len(batch)
            return
        self.delivered += len(batch)


class Link:
    """A bidirectional FIFO channel between two nodes."""

    def __init__(
        self,
        scheduler: Scheduler,
        a: Node,
        b: Node,
        latency_ms: float = 1.0,
        batch_window_ms: float = 0.0,
    ) -> None:
        if latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if batch_window_ms < 0:
            raise ValueError("batch window must be non-negative")
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.batch_window_ms = batch_window_ms
        self.stats = link_stats(scheduler)
        self.down = False
        self.a_to_b = LinkEnd(self, a, b)
        self.b_to_a = LinkEnd(self, b, a)
        self._disconnect_listeners: List[Callable[[], None]] = []
        # A crash of either endpoint tears the connection down from the
        # point of view of the survivor.
        a.on_crash(self._endpoint_crashed)
        b.on_crash(self._endpoint_crashed)

    def end_for_sender(self, node: Node) -> LinkEnd:
        """The directed end whose sender is ``node``."""
        if node is self.a_to_b.sender:
            return self.a_to_b
        if node is self.b_to_a.sender:
            return self.b_to_a
        raise ValueError(f"{node!r} is not an endpoint of this link")

    def on_disconnect(self, fn: Callable[[], None]) -> None:
        self._disconnect_listeners.append(fn)

    def sever(self) -> None:
        """Administratively cut the link (both directions)."""
        if self.down:
            return
        self.down = True
        for fn in list(self._disconnect_listeners):
            fn()

    def restore(self) -> None:
        """Re-establish a severed link (a fresh FIFO connection)."""
        self.down = False
        self.a_to_b._last_arrival = 0.0
        self.b_to_a._last_arrival = 0.0

    def _endpoint_crashed(self) -> None:
        for fn in list(self._disconnect_listeners):
            fn()
