"""repro — a reproduction of "Scalably Supporting Durable Subscriptions
in a Publish/Subscribe System" (Bhola, Zhao, Auerbach; DSN 2003).

The package implements the paper's Gryphon-style durable-subscription
protocol in full — only-once event logging at publisher hosting
brokers, the Persistent Filtering Subsystem, consolidated/catchup
streams and the retention/release protocol with early-release policies
— on top of a deterministic discrete-event simulation substrate that
stands in for the original hardware testbed.

Quickstart::

    from repro import (Scheduler, build_two_broker, PeriodicPublisher,
                       DurableSubscriber, Eq, Node)

    sim = Scheduler()
    overlay = build_two_broker(sim, pubends=["P1"])
    machine = Node(sim, "client")
    sub = DurableSubscriber(sim, "s1", machine, Eq("group", 1))
    sub.connect(overlay.shbs[0])
    pub = PeriodicPublisher(sim, overlay.phb, "P1", rate_per_s=100,
                            attribute_fn=lambda i: {"group": i % 4})
    pub.start()
    sim.run_until(10_000)          # ten simulated seconds
    print(sub.stats.events)        # exactly the matching events, once each

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .broker.costs import DEFAULT_COSTS, CostModel
from .broker.intermediate import IntermediateBroker
from .broker.phb import PublisherHostingBroker
from .broker.shb import SubscriberHostingBroker
from .broker.topology import (
    Overlay,
    build_chain,
    build_single_broker,
    build_star,
    build_tree,
    build_two_broker,
)
from .client.publisher import PeriodicPublisher, ReliablePublisher
from .client.subscriber import DurableSubscriber
from .core.checkpoint import CheckpointToken
from .core.events import Event
from .core.messages import EventMessage, GapMessage, SilenceMessage
from .core.release import MaxRetainPolicy, NoEarlyRelease
from .core.ticks import Tick
from .matching.predicates import (
    And,
    Between,
    Cmp,
    Eq,
    Everything,
    Exists,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    Nothing,
    Or,
    Prefix,
)
from .matching.selector import SelectorSyntaxError, parse_selector
from .matching.topics import Topic
from .net.link import Link
from .net.node import Node
from .net.simtime import Scheduler
from .sim.failures import FailureSchedule

__version__ = "1.0.0"

__all__ = [
    "And",
    "Between",
    "CheckpointToken",
    "Cmp",
    "CostModel",
    "DEFAULT_COSTS",
    "DurableSubscriber",
    "Eq",
    "Event",
    "EventMessage",
    "Everything",
    "Exists",
    "FailureSchedule",
    "GapMessage",
    "Ge",
    "Gt",
    "In",
    "IntermediateBroker",
    "Le",
    "Link",
    "Lt",
    "MaxRetainPolicy",
    "Ne",
    "NoEarlyRelease",
    "Node",
    "Not",
    "Nothing",
    "Or",
    "Overlay",
    "PeriodicPublisher",
    "Prefix",
    "PublisherHostingBroker",
    "ReliablePublisher",
    "Scheduler",
    "SelectorSyntaxError",
    "SilenceMessage",
    "SubscriberHostingBroker",
    "parse_selector",
    "Tick",
    "Topic",
    "build_chain",
    "build_single_broker",
    "build_star",
    "build_tree",
    "build_two_broker",
]
