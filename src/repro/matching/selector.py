"""JMS message-selector parser.

JMS applications express subscriptions as SQL-92-style selector strings
(``"symbol = 'IBM' AND quantity > 1000"``).  This module compiles the
practical core of that language into the native predicate tree, so the
JMS layer (and anyone who prefers strings) can use it:

* comparisons: ``=  <>  <  <=  >  >=`` over numbers and strings,
* ``BETWEEN x AND y`` / ``NOT BETWEEN``,
* ``IN ('a', 'b')`` / ``NOT IN``,
* ``IS NULL`` / ``IS NOT NULL`` (attribute absence/presence),
* ``LIKE 'prefix%'`` (prefix patterns compile to the indexed-friendly
  :class:`~repro.matching.predicates.Prefix`; general patterns with
  ``%``/``_`` fall back to a scan predicate),
* ``AND`` / ``OR`` / ``NOT`` with conventional precedence and parens,
* literals: integers, floats, single-quoted strings (with ``''``
  escaping), TRUE/FALSE.

The grammar (precedence low→high)::

    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | primary
    primary   := '(' or_expr ')' | comparison
    comparison:= ident (op literal | BETWEEN lit AND lit | IN '(' ... ')'
                 | IS [NOT] NULL | [NOT] LIKE string | ident)

Usage::

    from repro.matching.selector import parse_selector
    predicate = parse_selector("group IN (1, 3) AND price >= 10.5")
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional

from ..util.errors import ReproError
from .predicates import (
    And,
    Between,
    Cmp,
    Eq,
    Exists,
    In,
    Ne,
    Not,
    Or,
    Predicate,
    Prefix,
)


class SelectorSyntaxError(ReproError):
    """The selector string could not be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*|\.\d+)
  | (?P<int>\d+)
  | (?P<str>'(?:[^']|'')*')
  | (?P<op><>|<=|>=|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$.]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "BETWEEN", "IN", "IS", "NULL", "LIKE",
             "TRUE", "FALSE"}


@dataclass(frozen=True)
class _Token:
    kind: str     # 'kw', 'ident', 'num', 'str', 'op', '(', ')', ','
    value: Any
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SelectorSyntaxError(f"unexpected character {text[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        raw = match.group()
        if kind == "ws":
            continue
        if kind == "float":
            tokens.append(_Token("num", float(raw), match.start()))
        elif kind == "int":
            tokens.append(_Token("num", int(raw), match.start()))
        elif kind == "str":
            tokens.append(_Token("str", raw[1:-1].replace("''", "'"), match.start()))
        elif kind == "op":
            tokens.append(_Token("op", raw, match.start()))
        elif kind == "lparen":
            tokens.append(_Token("(", raw, match.start()))
        elif kind == "rparen":
            tokens.append(_Token(")", raw, match.start()))
        elif kind == "comma":
            tokens.append(_Token(",", raw, match.start()))
        else:
            upper = raw.upper()
            if upper in _KEYWORDS:
                tokens.append(_Token("kw", upper, match.start()))
            else:
                tokens.append(_Token("ident", raw, match.start()))
    return tokens


@dataclass(frozen=True)
class _Like(Predicate):
    """General LIKE pattern (compiled to a regex; scan-only)."""

    attr: str
    pattern: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr)
        if not isinstance(got, str):
            return False
        return _like_regex(self.pattern).fullmatch(got) is not None


_LIKE_CACHE: dict = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("".join(parts), re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled


class _Parser:
    def __init__(self, tokens: List[_Token], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.i = 0

    # -- token helpers ---------------------------------------------------
    def peek(self) -> Optional[_Token]:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise SelectorSyntaxError("unexpected end of selector")
        self.i += 1
        return tok

    def accept_kw(self, word: str) -> bool:
        tok = self.peek()
        if tok is not None and tok.kind == "kw" and tok.value == word:
            self.i += 1
            return True
        return False

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise SelectorSyntaxError(
                f"expected {value or kind} at position {tok.pos}, got {tok.value!r}"
            )
        return tok

    # -- grammar ----------------------------------------------------------
    def parse(self) -> Predicate:
        expr = self.or_expr()
        if self.peek() is not None:
            tok = self.peek()
            raise SelectorSyntaxError(f"trailing input at position {tok.pos}: {tok.value!r}")
        return expr

    def or_expr(self) -> Predicate:
        terms = [self.and_expr()]
        while self.accept_kw("OR"):
            terms.append(self.and_expr())
        return terms[0] if len(terms) == 1 else Or(terms)

    def and_expr(self) -> Predicate:
        terms = [self.not_expr()]
        while self.accept_kw("AND"):
            terms.append(self.not_expr())
        return terms[0] if len(terms) == 1 else And(terms)

    def not_expr(self) -> Predicate:
        if self.accept_kw("NOT"):
            return Not(self.not_expr())
        return self.primary()

    def primary(self) -> Predicate:
        tok = self.peek()
        if tok is not None and tok.kind == "(":
            self.next()
            inner = self.or_expr()
            self.expect(")")
            return inner
        return self.comparison()

    def literal(self) -> Any:
        tok = self.next()
        if tok.kind in ("num", "str"):
            return tok.value
        if tok.kind == "kw" and tok.value in ("TRUE", "FALSE"):
            return tok.value == "TRUE"
        raise SelectorSyntaxError(f"expected a literal at position {tok.pos}")

    def comparison(self) -> Predicate:
        tok = self.next()
        if tok.kind != "ident":
            raise SelectorSyntaxError(
                f"expected an attribute name at position {tok.pos}, got {tok.value!r}"
            )
        attr = tok.value
        nxt = self.peek()
        if nxt is None:
            # Bare boolean attribute: "enabled" means enabled = TRUE.
            return Eq(attr, True)
        negated = False
        if nxt.kind == "kw" and nxt.value == "NOT":
            self.next()
            negated = True
            nxt = self.peek()
            if nxt is None:
                raise SelectorSyntaxError("dangling NOT")
        if nxt.kind == "op":
            op = self.next().value
            value = self.literal()
            if negated:
                raise SelectorSyntaxError("NOT is not valid before a comparison operator")
            if op == "=":
                return Eq(attr, value)
            if op == "<>":
                return Ne(attr, value)
            return Cmp(attr, op, value)
        if nxt.kind == "kw" and nxt.value == "BETWEEN":
            self.next()
            lo = self.literal()
            if not self.accept_kw("AND"):
                raise SelectorSyntaxError("BETWEEN requires AND")
            hi = self.literal()
            pred: Predicate = Between(attr, lo, hi)
            return Not(pred) if negated else pred
        if nxt.kind == "kw" and nxt.value == "IN":
            self.next()
            self.expect("(")
            values = [self.literal()]
            while self.peek() is not None and self.peek().kind == ",":
                self.next()
                values.append(self.literal())
            self.expect(")")
            pred = In(attr, values)
            return Not(pred) if negated else pred
        if nxt.kind == "kw" and nxt.value == "LIKE":
            self.next()
            tok2 = self.next()
            if tok2.kind != "str":
                raise SelectorSyntaxError("LIKE requires a string pattern")
            pattern = tok2.value
            pred = _compile_like(attr, pattern)
            return Not(pred) if negated else pred
        if nxt.kind == "kw" and nxt.value == "IS":
            if negated:
                raise SelectorSyntaxError("NOT is not valid before IS")
            self.next()
            is_not = self.accept_kw("NOT")
            if not self.accept_kw("NULL"):
                raise SelectorSyntaxError("IS must be followed by [NOT] NULL")
            return Exists(attr) if is_not else Not(Exists(attr))
        # Bare boolean attribute followed by AND/OR/...
        return Eq(attr, True) if not negated else Not(Eq(attr, True))


def _compile_like(attr: str, pattern: str) -> Predicate:
    """Prefix patterns use the cheap Prefix predicate; rest use regex."""
    body = pattern[:-1] if pattern.endswith("%") else None
    if body is not None and "%" not in body and "_" not in body:
        return Prefix(attr, body)
    return _Like(attr, pattern)


def parse_selector(text: str) -> Predicate:
    """Compile a JMS-style selector string into a Predicate."""
    if not text or not text.strip():
        raise SelectorSyntaxError("empty selector")
    return _Parser(_tokenize(text), text).parse()
