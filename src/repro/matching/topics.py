"""Topic (subject) matching on top of the content predicate language.

JMS-style applications address events by hierarchical topic strings
such as ``trades.nyse.IBM``.  A topic subscription pattern supports the
conventional wildcards:

* ``*`` matches exactly one segment,
* ``#`` (only as the final segment) matches zero or more segments.

Topics are carried in the reserved event attribute ``"topic"`` so topic
and content predicates compose freely (e.g. topic pattern AND a price
range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Tuple

from .predicates import Decomposition, EqAtom, Predicate

#: The reserved attribute carrying an event's topic string.
TOPIC_ATTR = "topic"

SEGMENT_WILDCARD = "*"
TAIL_WILDCARD = "#"


def topic_pattern_matches(pattern: str, topic: str) -> bool:
    """Evaluate a wildcard pattern against a concrete topic string."""
    p_segs = pattern.split(".")
    t_segs = topic.split(".")
    for i, p in enumerate(p_segs):
        if p == TAIL_WILDCARD:
            if i != len(p_segs) - 1:
                raise ValueError(f"'#' only allowed as final segment: {pattern!r}")
            return True
        if i >= len(t_segs):
            return False
        if p != SEGMENT_WILDCARD and p != t_segs[i]:
            return False
    return len(p_segs) == len(t_segs)


@dataclass(frozen=True)
class Topic(Predicate):
    """A subscription predicate over the event's topic attribute."""

    pattern: str

    def __post_init__(self) -> None:
        segs = self.pattern.split(".")
        if not all(segs):
            raise ValueError(f"empty segment in topic pattern {self.pattern!r}")
        if TAIL_WILDCARD in segs[:-1]:
            raise ValueError(f"'#' only allowed as final segment: {self.pattern!r}")

    @property
    def is_literal(self) -> bool:
        """True when the pattern contains no wildcards."""
        return SEGMENT_WILDCARD not in self.pattern and TAIL_WILDCARD not in self.pattern

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        topic = attributes.get(TOPIC_ATTR)
        if not isinstance(topic, str):
            return False
        return topic_pattern_matches(self.pattern, topic)

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        if self.is_literal:
            return TOPIC_ATTR, frozenset((self.pattern,))
        return None

    def decompose(self) -> Decomposition:
        # Literal topics are plain equalities; wildcard patterns stay
        # opaque (segment matching is not an attribute atom).
        if self.is_literal:
            return (EqAtom(TOPIC_ATTR, frozenset((self.pattern,))),), None
        return (), self
