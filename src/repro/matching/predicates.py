"""The content-based subscription language.

Gryphon is a *content-based* publish/subscribe system: a subscription
is a predicate over event attributes, evaluated by brokers (including
intermediate brokers, which use it to filter knowledge streams so that
uninteresting events travel no further than necessary).

Predicates are small immutable trees.  Composite predicates (:class:`And`,
:class:`Or`, :class:`Not`) combine the attribute tests.  Every predicate
answers :meth:`Predicate.matches` against an attribute mapping and
exposes two indexing views for the matching engine:

* :meth:`indexable_equalities` — the legacy single-key view
  (``attr ∈ values``), kept for introspection and tests;
* :meth:`decompose` — the counting-matcher view: the predicate as a
  conjunction of indexable *atoms* plus an optional opaque residual,
  so multi-attribute conjunctions (the common content-based form in
  Gryphon's information-flow model) are matched by counting satisfied
  atoms per subscription instead of re-evaluating whole trees.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Sequence, Tuple

_MISSING = object()


# ---------------------------------------------------------------------------
# Atoms: the indexable units of the counting matcher
# ---------------------------------------------------------------------------
class Atom:
    """One indexable per-attribute test.

    A predicate decomposes into a conjunction of atoms (plus an optional
    residual); the matching engine builds per-attribute inverted indexes
    over atoms and matches an event by *counting* satisfied atoms per
    subscription.  Atoms are small frozen values: equal atoms across
    subscriptions are interned and evaluated once per event.

    Every atom implicitly requires its attribute to be **present** in
    the event; :meth:`satisfied` is only consulted for present values
    (which may legitimately be ``None``).
    """

    __slots__ = ()

    def satisfied(self, value: Any) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class EqAtom(Atom):
    """``value ∈ values`` — the hash-indexable equality/membership atom."""

    attr: str
    values: FrozenSet[Any]

    def satisfied(self, value: Any) -> bool:
        return value in self.values


@dataclass(frozen=True, slots=True)
class CmpAtom(Atom):
    """An ordered bound: ``value <op> bound`` with op in ``< <= > >=``.

    Indexed via sorted bound lists (one bisect finds every satisfied
    bound atom on an attribute); a type mismatch is unsatisfied, like
    :class:`Cmp`.
    """

    attr: str
    op: str
    bound: Any

    def satisfied(self, value: Any) -> bool:
        try:
            return Cmp._OPS[self.op](value, self.bound)
        except TypeError:
            return False


@dataclass(frozen=True, slots=True)
class NeAtom(Atom):
    """``value != other`` (attribute presence is implied)."""

    attr: str
    value: Any

    def satisfied(self, value: Any) -> bool:
        return value != self.value


@dataclass(frozen=True, slots=True)
class ExistsAtom(Atom):
    """The attribute is present, whatever its value."""

    attr: str

    def satisfied(self, value: Any) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class PrefixAtom(Atom):
    """String attribute starts with ``prefix``."""

    attr: str
    prefix: str

    def satisfied(self, value: Any) -> bool:
        return isinstance(value, str) and value.startswith(self.prefix)


@dataclass(frozen=True, slots=True)
class NeverAtom(Atom):
    """Satisfied by no event — :class:`Nothing` and empty :class:`Or`.

    Carries no attribute; the engine registers it nowhere, so the
    owning subscription's satisfied count can never reach its total.
    """

    def satisfied(self, value: Any) -> bool:  # pragma: no cover - unindexed
        return False


#: A decomposition: the predicate ≡ AND(atoms) ∧ residual (None = true).
Decomposition = Tuple[Tuple[Atom, ...], Optional["Predicate"]]


class Predicate:
    """Base class for subscription predicates.

    Predicates are immutable values: ``__slots__`` throughout (rows at
    10^5-subscriber scale reference them heavily) and leaf constructors
    intern their attribute names, so equal predicates across
    subscriptions share their key strings.
    """

    __slots__ = ()

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        """``(attr, values)`` if this predicate *requires* attr ∈ values.

        Returning None means the predicate cannot be used as an index
        key and subscriptions using it fall back to a linear scan.
        Only top-level conjuncts are consulted, so this is sound: a
        subscription indexed under ``(attr, values)`` can only match
        events whose ``attr`` is one of ``values``.
        """
        return None

    def decompose(self) -> Decomposition:
        """``(atoms, residual)`` with ``self ≡ AND(atoms) ∧ residual``.

        The default is fully opaque — no atoms, the predicate itself as
        the residual — which lands the subscription in the engine's
        (now rare) scan bucket.  Leaf predicates override this with
        their exact atom form; :class:`And` concatenates its children's
        decompositions, so only truly opaque subtrees stay residual.
        """
        return (), self

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True, slots=True)
class Everything(Predicate):
    """Matches every event (a wildcard subscription)."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return True

    def decompose(self) -> Decomposition:
        return (), None


@dataclass(frozen=True, slots=True)
class Nothing(Predicate):
    """Matches no event (useful as an identity for Or-folds)."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return False

    def decompose(self) -> Decomposition:
        return (NeverAtom(),), None


@dataclass(frozen=True, slots=True)
class Eq(Predicate):
    """``attributes[attr] == value``."""

    attr: str
    value: Any

    def __post_init__(self) -> None:
        object.__setattr__(self, "attr", sys.intern(self.attr))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return attributes.get(self.attr, _MISSING) == self.value

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        return self.attr, frozenset((self.value,))

    def decompose(self) -> Decomposition:
        return (EqAtom(self.attr, frozenset((self.value,))),), None


@dataclass(frozen=True, slots=True)
class In(Predicate):
    """``attributes[attr]`` is one of a fixed set of values."""

    attr: str
    values: FrozenSet[Any]

    def __init__(self, attr: str, values: Sequence[Any]):
        object.__setattr__(self, "attr", sys.intern(attr))
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return attributes.get(self.attr, _MISSING) in self.values

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        return self.attr, self.values

    def decompose(self) -> Decomposition:
        return (EqAtom(self.attr, self.values),), None


@dataclass(frozen=True, slots=True)
class Ne(Predicate):
    """``attributes[attr] != value`` (attribute must be present)."""

    attr: str
    value: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        return got is not _MISSING and got != self.value

    def decompose(self) -> Decomposition:
        return (NeAtom(self.attr, self.value),), None


@dataclass(frozen=True, slots=True)
class Cmp(Predicate):
    """An ordered comparison: ``attributes[attr] <op> bound``."""

    attr: str
    op: str  # one of '<', '<=', '>', '>='
    bound: Any

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        if got is _MISSING:
            return False
        try:
            return self._OPS[self.op](got, self.bound)
        except TypeError:
            return False

    def decompose(self) -> Decomposition:
        return (CmpAtom(self.attr, self.op, self.bound),), None


def Lt(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, "<", bound)


def Le(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, "<=", bound)


def Gt(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, ">", bound)


def Ge(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, ">=", bound)


@dataclass(frozen=True, slots=True)
class Between(Predicate):
    """``lo <= attributes[attr] <= hi``."""

    attr: str
    lo: Any
    hi: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        if got is _MISSING:
            return False
        try:
            return self.lo <= got <= self.hi
        except TypeError:
            return False

    def decompose(self) -> Decomposition:
        return (CmpAtom(self.attr, ">=", self.lo), CmpAtom(self.attr, "<=", self.hi)), None


@dataclass(frozen=True, slots=True)
class Exists(Predicate):
    """The attribute is present, whatever its value."""

    attr: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return self.attr in attributes

    def decompose(self) -> Decomposition:
        return (ExistsAtom(self.attr),), None


@dataclass(frozen=True, slots=True)
class Prefix(Predicate):
    """String attribute starts with the given prefix."""

    attr: str
    prefix: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr)
        return isinstance(got, str) and got.startswith(self.prefix)

    def decompose(self) -> Decomposition:
        return (PrefixAtom(self.attr, self.prefix),), None


@dataclass(frozen=True, slots=True)
class And(Predicate):
    """Conjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def __init__(self, terms: Sequence[Predicate]):
        object.__setattr__(self, "terms", tuple(terms))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return all(t.matches(attributes) for t in self.terms)

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        for t in self.terms:
            key = t.indexable_equalities()
            if key is not None:
                return key
        return None

    def decompose(self) -> Decomposition:
        # A conjunction is exactly the concatenation of its children's
        # decompositions; opaque children fold into one residual.
        atoms: list = []
        residuals: list = []
        for t in self.terms:
            t_atoms, t_residual = t.decompose()
            atoms.extend(t_atoms)
            if t_residual is not None:
                residuals.append(t_residual)
        if not residuals:
            residual = None
        elif len(residuals) == 1:
            residual = residuals[0]
        else:
            residual = And(residuals)
        return tuple(atoms), residual


@dataclass(frozen=True, slots=True)
class Or(Predicate):
    """Disjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def __init__(self, terms: Sequence[Predicate]):
        object.__setattr__(self, "terms", tuple(terms))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return any(t.matches(attributes) for t in self.terms)

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        # An Or is indexable only if every branch constrains the same
        # attribute; the index key is then the union of the value sets.
        attr: Optional[str] = None
        values: set = set()
        for t in self.terms:
            key = t.indexable_equalities()
            if key is None:
                return None
            t_attr, t_values = key
            if attr is None:
                attr = t_attr
            elif attr != t_attr:
                return None
            values.update(t_values)
        if attr is None:
            return None
        return attr, frozenset(values)

    def decompose(self) -> Decomposition:
        # A disjunction indexes only in the In-like case: every branch
        # reduces to a single equality atom on one shared attribute, so
        # the whole Or is one membership atom over the union.  Anything
        # richer (mixed attributes, ranges, residuals) stays opaque —
        # counting is conjunctive.
        if not self.terms:
            return (NeverAtom(),), None
        attr: Optional[str] = None
        values: set = set()
        for t in self.terms:
            t_atoms, t_residual = t.decompose()
            if t_residual is not None or len(t_atoms) != 1:
                return (), self
            atom = t_atoms[0]
            if not isinstance(atom, EqAtom):
                return (), self
            if attr is None:
                attr = atom.attr
            elif attr != atom.attr:
                return (), self
            values.update(atom.values)
        return (EqAtom(attr, frozenset(values)),), None


@dataclass(frozen=True, slots=True)
class Not(Predicate):
    """Negation of a predicate."""

    term: Predicate

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return not self.term.matches(attributes)
