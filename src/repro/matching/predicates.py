"""The content-based subscription language.

Gryphon is a *content-based* publish/subscribe system: a subscription
is a predicate over event attributes, evaluated by brokers (including
intermediate brokers, which use it to filter knowledge streams so that
uninteresting events travel no further than necessary).

Predicates are small immutable trees.  Composite predicates (:class:`And`,
:class:`Or`, :class:`Not`) combine the attribute tests.  Every predicate
answers :meth:`Predicate.matches` against an attribute mapping and
exposes :meth:`indexable_equalities` so the matching engine can build
an inverted index for the common ``attr == value`` / ``attr in {...}``
shapes (the workhorse of the parallel-search-tree matcher of Aguilera
et al., which this engine approximates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Optional, Sequence, Tuple

_MISSING = object()


class Predicate:
    """Base class for subscription predicates."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        """``(attr, values)`` if this predicate *requires* attr ∈ values.

        Returning None means the predicate cannot be used as an index
        key and subscriptions using it fall back to a linear scan.
        Only top-level conjuncts are consulted, so this is sound: a
        subscription indexed under ``(attr, values)`` can only match
        events whose ``attr`` is one of ``values``.
        """
        return None

    # Convenience combinators -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True)
class Everything(Predicate):
    """Matches every event (a wildcard subscription)."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return True


@dataclass(frozen=True)
class Nothing(Predicate):
    """Matches no event (useful as an identity for Or-folds)."""

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return False


@dataclass(frozen=True)
class Eq(Predicate):
    """``attributes[attr] == value``."""

    attr: str
    value: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return attributes.get(self.attr, _MISSING) == self.value

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        return self.attr, frozenset((self.value,))


@dataclass(frozen=True)
class In(Predicate):
    """``attributes[attr]`` is one of a fixed set of values."""

    attr: str
    values: FrozenSet[Any]

    def __init__(self, attr: str, values: Sequence[Any]):
        object.__setattr__(self, "attr", attr)
        object.__setattr__(self, "values", frozenset(values))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return attributes.get(self.attr, _MISSING) in self.values

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        return self.attr, self.values


@dataclass(frozen=True)
class Ne(Predicate):
    """``attributes[attr] != value`` (attribute must be present)."""

    attr: str
    value: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        return got is not _MISSING and got != self.value


@dataclass(frozen=True)
class Cmp(Predicate):
    """An ordered comparison: ``attributes[attr] <op> bound``."""

    attr: str
    op: str  # one of '<', '<=', '>', '>='
    bound: Any

    _OPS = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        if self.op not in self._OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        if got is _MISSING:
            return False
        try:
            return self._OPS[self.op](got, self.bound)
        except TypeError:
            return False


def Lt(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, "<", bound)


def Le(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, "<=", bound)


def Gt(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, ">", bound)


def Ge(attr: str, bound: Any) -> Cmp:
    return Cmp(attr, ">=", bound)


@dataclass(frozen=True)
class Between(Predicate):
    """``lo <= attributes[attr] <= hi``."""

    attr: str
    lo: Any
    hi: Any

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr, _MISSING)
        if got is _MISSING:
            return False
        try:
            return self.lo <= got <= self.hi
        except TypeError:
            return False


@dataclass(frozen=True)
class Exists(Predicate):
    """The attribute is present, whatever its value."""

    attr: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return self.attr in attributes


@dataclass(frozen=True)
class Prefix(Predicate):
    """String attribute starts with the given prefix."""

    attr: str
    prefix: str

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        got = attributes.get(self.attr)
        return isinstance(got, str) and got.startswith(self.prefix)


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def __init__(self, terms: Sequence[Predicate]):
        object.__setattr__(self, "terms", tuple(terms))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return all(t.matches(attributes) for t in self.terms)

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        for t in self.terms:
            key = t.indexable_equalities()
            if key is not None:
                return key
        return None


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    terms: Tuple[Predicate, ...]

    def __init__(self, terms: Sequence[Predicate]):
        object.__setattr__(self, "terms", tuple(terms))

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return any(t.matches(attributes) for t in self.terms)

    def indexable_equalities(self) -> Optional[Tuple[str, FrozenSet[Any]]]:
        # An Or is indexable only if every branch constrains the same
        # attribute; the index key is then the union of the value sets.
        attr: Optional[str] = None
        values: set = set()
        for t in self.terms:
            key = t.indexable_equalities()
            if key is None:
                return None
            t_attr, t_values = key
            if attr is None:
                attr = t_attr
            elif attr != t_attr:
                return None
            values.update(t_values)
        if attr is None:
            return None
        return attr, frozenset(values)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    term: Predicate

    def matches(self, attributes: Mapping[str, Any]) -> bool:
        return not self.term.matches(attributes)
