"""Counting-based conjunctive matching core.

The classic content-based matching algorithm (Gryphon's parallel
matcher, Siena's counting matcher): every subscription predicate is
decomposed into a conjunction of per-attribute *atoms* plus an optional
opaque residual (``Predicate.decompose``).  Atoms are interned — equal
atoms across subscriptions share one index entry and are evaluated once
per event — and indexed per attribute:

* equality/membership atoms in a hash table ``value -> atoms``;
* ordered bounds in sorted lists, so one bisect finds every satisfied
  lower (or upper) bound on an attribute;
* everything else (prefix, inequality, existence) in a small
  evaluate-each bucket.

Matching an event walks its attributes once, collecting the satisfied
atoms, then *counts* per subscription: a subscription surfaces when its
count reaches its atom total (and its residual, if any, agrees).

One refinement keeps broad atoms from dominating: a subscription with
at least one equality atom only *counts* its equality atoms — the
selective ones, whose posting lists an event rarely touches — and its
broad atoms (ranges, prefixes, inequalities) are verified by interned-id
lookup in the event's satisfied-atom set once the count fills.  A
range-heavy event therefore never walks the long posting list of, say,
``price >= 10`` unless some subscription consists of broad atoms only.
The per-event cost tracks the satisfied *selective* atoms and the
subscriptions sharing them — independent of the total subscription
count for selective workloads.

Keys are opaque hashables: the :class:`~repro.matching.engine
.MatchingEngine` counts subscription ids, the per-link aggregate counts
deduplicated conjunction signatures.

Batch orientation (:meth:`CountingMatcher.match_batch`,
:meth:`CountingMatcher.matches_any_batch`): the broker hot path hands
the matcher whole coalesced tick-ranges (a constream pump, a filtered
``KnowledgeUpdate``), and real workloads draw attribute values from
small domains, so consecutive events repeat both index probes and
entire satisfied-atom signatures.  Two caches — both invalidated
wholesale on any registration change — amortize that repetition:

* the **probe cache** maps ``(attr, value)`` to a token plus the tuple
  of satisfied interned atoms, so a repeated value costs one dict hit
  instead of a hash probe plus two bisects;
* the **signature memo** maps the event's token tuple (an interned
  stand-in for its satisfied predicate-signature set, in collection
  order) to the ordered candidate list that survives counting and
  subset verification, so the whole counting loop runs once per
  *distinct* signature per registration epoch, not once per event.

Residuals still run per event (they read arbitrary attributes), and
per-event output order is byte-identical to :meth:`match` /
:meth:`matches_any` — batching is a pure performance transform.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from .predicates import Atom, CmpAtom, EqAtom, Predicate

#: Sort flags giving each bound list the "one bisect = all satisfied"
#: property: for lower bounds the satisfied atoms are the prefix below
#: ``(value, 0.5)``; for upper bounds, the suffix above it.
_LO_FLAG = {">=": 0, ">": 1}
_HI_FLAG = {"<": 0, "<=": 1}

#: Bound on each batch-amortization cache (probe cache, signature
#: memo) before it is cleared wholesale.  Real workloads draw values
#: and signatures from small domains, so the bound exists only to keep
#: a pathological high-cardinality stream from hoarding memory.
_BATCH_CACHE_LIMIT = 4096


class _BoundList:
    """Distinct comparison atoms of one direction, sorted by bound.

    Entries are ``(bound, flag, atom)`` triples; ``(bound, flag)`` is
    unique within a list (equal atoms are interned upstream), so tuple
    comparison never reaches the atom.  Sorting is lazy; a list whose
    bounds are mutually incomparable (mixed types) degrades to
    evaluate-each, as does a single event value that won't compare.
    """

    __slots__ = ("entries", "_dirty", "_unsortable")

    def __init__(self) -> None:
        self.entries: List[Tuple[Any, int, CmpAtom]] = []
        self._dirty = False
        self._unsortable = False

    def add(self, flag: int, atom: CmpAtom) -> None:
        self.entries.append((atom.bound, flag, atom))
        self._dirty = True

    def discard(self, flag: int, atom: CmpAtom) -> None:
        try:
            self.entries.remove((atom.bound, flag, atom))
        except ValueError:
            pass
        if not self.entries:
            self._dirty = False
            self._unsortable = False

    def _ensure_sorted(self) -> bool:
        if self._dirty and not self._unsortable:
            try:
                self.entries.sort(key=lambda e: (e[0], e[1]))
            except TypeError:
                self._unsortable = True
            else:
                self._dirty = False
        return not self._unsortable

    def collect(self, value: Any, prefix: bool, out: List[Atom]) -> int:
        """Append the atoms satisfied by ``value``; return atoms examined."""
        if not self.entries:
            return 0
        if self._ensure_sorted():
            try:
                pos = bisect_right(self.entries, (value, 0.5))
            except TypeError:
                pass  # this value won't compare: evaluate each atom
            else:
                hits = self.entries[:pos] if prefix else self.entries[pos:]
                out.extend(e[2] for e in hits)
                return len(hits)
        n = 0
        for _bound, _flag, atom in self.entries:
            n += 1
            if atom.satisfied(value):
                out.append(atom)
        return n


class _AttrIndex:
    """All atoms constraining one attribute."""

    __slots__ = ("eq", "lo", "hi", "misc")

    def __init__(self) -> None:
        # value -> ordered set of EqAtoms whose value set contains it
        self.eq: Dict[Any, Dict[EqAtom, None]] = {}
        self.lo = _BoundList()  # '>' / '>='
        self.hi = _BoundList()  # '<' / '<='
        # evaluate-each atoms (Ne, Exists, Prefix), insertion ordered
        self.misc: Dict[Atom, None] = {}

    def add(self, atom: Atom) -> None:
        if isinstance(atom, EqAtom):
            for value in atom.values:
                self.eq.setdefault(value, {})[atom] = None
        elif isinstance(atom, CmpAtom):
            if atom.op in _LO_FLAG:
                self.lo.add(_LO_FLAG[atom.op], atom)
            else:
                self.hi.add(_HI_FLAG[atom.op], atom)
        else:
            self.misc[atom] = None

    def discard(self, atom: Atom) -> None:
        if isinstance(atom, EqAtom):
            for value in atom.values:
                bucket = self.eq.get(value)
                if bucket is not None:
                    bucket.pop(atom, None)
                    if not bucket:
                        del self.eq[value]
        elif isinstance(atom, CmpAtom):
            if atom.op in _LO_FLAG:
                self.lo.discard(_LO_FLAG[atom.op], atom)
            else:
                self.hi.discard(_HI_FLAG[atom.op], atom)
        else:
            self.misc.pop(atom, None)

    def collect(self, value: Any, out: List[Atom]) -> int:
        """Append every atom satisfied by the present ``value``."""
        examined = 0
        if self.eq:
            examined += 1
            try:
                hits = self.eq.get(value)
            except TypeError:
                hits = None  # unhashable event value: no equality can hold
            if hits:
                out.extend(hits)
        examined += self.lo.collect(value, True, out)
        examined += self.hi.collect(value, False, out)
        for atom in self.misc:
            examined += 1
            if atom.satisfied(value):
                out.append(atom)
        return examined


class _AtomEntry:
    """Interning record for one distinct atom."""

    __slots__ = ("atom", "id", "keys", "refs")

    def __init__(self, atom: Atom, id_: int) -> None:
        self.atom = atom
        self.id = id_  # small int, so satisfied-set lookups never rehash atoms
        self.keys: Dict[Hashable, None] = {}  # keys *counting* this atom
        self.refs = 0  # keys referencing it (counting or verifying)


class CountingMatcher:
    """Maps opaque keys to (atoms, residual) and matches by counting."""

    def __init__(self) -> None:
        self._needs: Dict[Hashable, int] = {}
        self._atoms_of: Dict[Hashable, Tuple[Atom, ...]] = {}
        #: key -> interned ids of its broad atoms, verified (not counted)
        #: against the event's satisfied-atom id set when the count fills
        self._verify: Dict[Hashable, FrozenSet[int]] = {}
        self._residuals: Dict[Hashable, Predicate] = {}
        self._entries: Dict[Atom, _AtomEntry] = {}
        self._next_atom_id = 0
        self._attrs: Dict[str, _AttrIndex] = {}
        # zero-atom keys: wildcards (no residual) and the scan bucket
        self._always: Dict[Hashable, None] = {}
        # batch-amortization caches, invalidated on any add/remove:
        # (attr, type, value) -> (token, satisfied interned entries),
        # and token-tuple signature -> the ordered candidate plan
        # surviving counting + subset verification.  Tokens are small
        # ints drawn from a monotonic counter (never reset, so a token
        # can never rebind to different entries even across cache
        # clears); a signature of tokens is therefore equivalent to the
        # full satisfied-atom id sequence but costs one tuple of a few
        # ints per event instead of one per satisfied atom.
        self._probe_cache: Dict[
            Tuple[Any, ...], Tuple[int, Tuple["_AtomEntry", ...]]
        ] = {}
        self._probe_token = 0
        self._sig_memo: Dict[
            Tuple[int, ...], Tuple[Tuple[Hashable, Optional[Predicate]], ...]
        ] = {}
        # instrumentation
        self.atoms_examined = 0
        self.residual_evals = 0
        self.candidates_seen = 0
        self.events_processed = 0
        self.batch_events = 0
        self.probe_cache_hits = 0
        self.sig_memo_hits = 0

    # -- registry ------------------------------------------------------
    def _intern(self, atom: Atom) -> _AtomEntry:
        entry = self._entries.get(atom)
        if entry is None:
            entry = self._entries[atom] = _AtomEntry(atom, self._next_atom_id)
            self._next_atom_id += 1
            attr = getattr(atom, "attr", None)
            if attr is not None:  # NeverAtom indexes nowhere
                idx = self._attrs.get(attr)
                if idx is None:
                    idx = self._attrs[attr] = _AttrIndex()
                idx.add(atom)
        return entry

    def add(self, key: Hashable, atoms: Tuple[Atom, ...], residual: Optional[Predicate]) -> None:
        if key in self._needs:
            self.remove(key)
        self._probe_cache.clear()
        self._sig_memo.clear()
        atoms = tuple(dict.fromkeys(atoms))  # duplicates would skew counts
        self._atoms_of[key] = atoms
        if residual is not None:
            self._residuals[key] = residual
        if not atoms:
            self._always[key] = None
        # Count through one selective *access* atom when the key has an
        # equality atom (the least-loaded one, to spread posting lists);
        # every other atom is verified by interned id against the
        # event's satisfied set once the access atom fires.  A key with
        # no equality atom counts everything it has — broad atoms can't
        # be trusted as the sole access path, but they are rare as a
        # subscription's only constraint.
        entries = [self._intern(atom) for atom in atoms]
        for entry in entries:
            entry.refs += 1
        eq_entries = [e for e in entries if isinstance(e.atom, EqAtom)]
        if eq_entries:
            access = min(eq_entries, key=lambda e: len(e.keys))
            counted = [access]
            verified = frozenset(e.id for e in entries if e is not access)
        else:
            counted = entries
            verified = frozenset()
        for entry in counted:
            entry.keys[key] = None
        self._needs[key] = len(counted)
        if verified:
            self._verify[key] = verified

    def remove(self, key: Hashable) -> None:
        if key not in self._needs:
            return
        self._probe_cache.clear()
        self._sig_memo.clear()
        del self._needs[key]
        atoms = self._atoms_of.pop(key)
        self._verify.pop(key, None)
        self._residuals.pop(key, None)
        self._always.pop(key, None)
        for atom in atoms:
            entry = self._entries[atom]
            entry.keys.pop(key, None)
            entry.refs -= 1
            if not entry.refs:
                del self._entries[atom]
                attr = getattr(atom, "attr", None)
                if attr is not None:
                    self._attrs[attr].discard(atom)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._needs

    def __len__(self) -> int:
        return len(self._needs)

    @property
    def atom_count(self) -> int:
        """Distinct (interned) atoms currently indexed."""
        return len(self._entries)

    @property
    def scan_count(self) -> int:
        """Keys with no indexable atoms at all — the opaque scan bucket."""
        return sum(1 for key in self._always if key in self._residuals)

    # -- matching ------------------------------------------------------
    def _satisfied_atoms(self, attributes: Mapping[str, Any]) -> List[Atom]:
        out: List[Atom] = []
        examined = 0
        for attr, value in attributes.items():
            idx = self._attrs.get(attr)
            if idx is not None:
                examined += idx.collect(value, out)
        self.atoms_examined += examined
        return out

    def _residual_ok(self, key: Hashable, attributes: Mapping[str, Any]) -> bool:
        residual = self._residuals.get(key)
        if residual is None:
            return True
        self.residual_evals += 1
        return residual.matches(attributes)

    def match(self, attributes: Mapping[str, Any]) -> List[Hashable]:
        """Every key whose predicate matches, in deterministic order
        (registration order for zero-atom keys, then atom-collection
        order — all the underlying tables are insertion-ordered)."""
        self.events_processed += 1
        out: List[Hashable] = []
        for key in self._always:
            if self._residual_ok(key, attributes):
                out.append(key)
        entries = self._entries
        sat = [entries[atom] for atom in self._satisfied_atoms(attributes)]
        sat_ids = {e.id for e in sat}
        counts: Dict[Hashable, int] = {}
        needs = self._needs
        verify = self._verify
        residuals = self._residuals
        issuperset = sat_ids.issuperset
        append = out.append
        touched = len(self._always)
        for entry in sat:
            touched += len(entry.keys)
            for key in entry.keys:
                need = needs[key]
                if need != 1:
                    n = counts.get(key, 0) + 1
                    counts[key] = n
                    if n != need:
                        continue
                pending = verify.get(key)
                if pending is not None and not issuperset(pending):
                    continue
                residual = residuals.get(key)
                if residual is None:
                    append(key)
                else:
                    self.residual_evals += 1
                    if residual.matches(attributes):
                        append(key)
        self.candidates_seen += touched
        return out

    def matches_any(self, attributes: Mapping[str, Any]) -> bool:
        """Short-circuiting :meth:`match`: does *any* key match?"""
        self.events_processed += 1
        for key in self._always:
            if self._residual_ok(key, attributes):
                return True
        entries = self._entries
        sat = [entries[atom] for atom in self._satisfied_atoms(attributes)]
        sat_ids = {e.id for e in sat}
        counts: Dict[Hashable, int] = {}
        needs = self._needs
        verify = self._verify
        residuals = self._residuals
        issuperset = sat_ids.issuperset
        touched = len(self._always)
        for entry in sat:
            for key in entry.keys:
                touched += 1
                need = needs[key]
                if need != 1:
                    n = counts.get(key, 0) + 1
                    counts[key] = n
                    if n != need:
                        continue
                pending = verify.get(key)
                if pending is not None and not issuperset(pending):
                    continue
                residual = residuals.get(key)
                if residual is None:
                    self.candidates_seen += touched
                    return True
                self.residual_evals += 1
                if residual.matches(attributes):
                    self.candidates_seen += touched
                    return True
        self.candidates_seen += touched
        return False

    # -- batch matching ------------------------------------------------
    def _probe(
        self, attributes: Mapping[str, Any]
    ) -> Tuple[Tuple[int, ...], List[Tuple["_AtomEntry", ...]]]:
        """One event's satisfied-atom signature and per-attribute hits.

        The probe cache key includes the value's type so ``==``-equal
        values of different types (``1`` / ``1.0`` / ``True``) can
        never share an entry — atom satisfaction must be recomputed,
        not assumed equal across types.  An unhashable value bypasses
        the cache and draws a fresh token, so its event's signature
        never falsely aliases a cached one.
        """
        probe = self._probe_cache
        sig_parts: List[int] = []
        hit_parts: List[Tuple[_AtomEntry, ...]] = []
        for attr, value in attributes.items():
            idx = self._attrs.get(attr)
            if idx is None:
                continue
            try:
                pkey: Optional[Tuple[Any, ...]] = (attr, value.__class__, value)
                ent = probe.get(pkey)
            except TypeError:
                pkey = None
                ent = None
            if ent is None:
                atoms: List[Atom] = []
                self.atoms_examined += idx.collect(value, atoms)
                entries = self._entries
                token = self._probe_token
                self._probe_token += 1
                ent = (token, tuple(entries[atom] for atom in atoms))
                if pkey is not None:
                    if len(probe) >= _BATCH_CACHE_LIMIT:
                        probe.clear()
                    probe[pkey] = ent
            else:
                self.probe_cache_hits += 1
            sig_parts.append(ent[0])
            hit_parts.append(ent[1])
        return tuple(sig_parts), hit_parts

    def _candidates_for(
        self,
        sig: Tuple[int, ...],
        hit_parts: List[Tuple["_AtomEntry", ...]],
    ) -> Tuple[Tuple[Hashable, Optional[Predicate]], ...]:
        """The ordered candidate plan for one satisfied-atom signature.

        Runs the counting loop of :meth:`match` — count through the
        access atoms, verify the rest by interned-id subset — but
        records ``(key, residual)`` pairs instead of evaluating
        residuals, so the plan depends only on the signature and can be
        memoized per registration epoch.  Emission order is exactly
        :meth:`match`'s counting order.
        """
        memo = self._sig_memo
        plan = memo.get(sig)
        if plan is not None:
            self.sig_memo_hits += 1
            return plan
        sat = [entry for part in hit_parts for entry in part]
        sat_ids = {entry.id for entry in sat}
        counts: Dict[Hashable, int] = {}
        needs = self._needs
        verify = self._verify
        residuals = self._residuals
        issuperset = sat_ids.issuperset
        out: List[Tuple[Hashable, Optional[Predicate]]] = []
        touched = 0
        for entry in sat:
            touched += len(entry.keys)
            for key in entry.keys:
                need = needs[key]
                if need != 1:
                    n = counts.get(key, 0) + 1
                    counts[key] = n
                    if n != need:
                        continue
                pending = verify.get(key)
                if pending is not None and not issuperset(pending):
                    continue
                out.append((key, residuals.get(key)))
        self.candidates_seen += touched
        plan = tuple(out)
        if len(memo) >= _BATCH_CACHE_LIMIT:
            memo.clear()
        memo[sig] = plan
        return plan

    def match_batch(
        self, batch: Sequence[Mapping[str, Any]]
    ) -> List[List[Hashable]]:
        """Per-event :meth:`match` results for a whole batch.

        Byte-identical to calling :meth:`match` once per event, in
        order — only the work is amortized: index probes through the
        probe cache, the counting loop through the signature memo.
        Residuals are still evaluated per event (they read arbitrary
        attribute values the signature does not capture).
        """
        results: List[List[Hashable]] = []
        always = self._always
        for attributes in batch:
            self.events_processed += 1
            self.batch_events += 1
            out: List[Hashable] = []
            for key in always:
                if self._residual_ok(key, attributes):
                    out.append(key)
            sig, hit_parts = self._probe(attributes)
            for key, residual in self._candidates_for(sig, hit_parts):
                if residual is None:
                    out.append(key)
                else:
                    self.residual_evals += 1
                    if residual.matches(attributes):
                        out.append(key)
            results.append(out)
        return results

    def matches_any_batch(self, batch: Sequence[Mapping[str, Any]]) -> List[bool]:
        """Per-event :meth:`matches_any` answers for a whole batch."""
        results: List[bool] = []
        always = self._always
        for attributes in batch:
            self.events_processed += 1
            self.batch_events += 1
            hit = False
            for key in always:
                if self._residual_ok(key, attributes):
                    hit = True
                    break
            if not hit:
                sig, hit_parts = self._probe(attributes)
                for key, residual in self._candidates_for(sig, hit_parts):
                    if residual is None:
                        hit = True
                        break
                    self.residual_evals += 1
                    if residual.matches(attributes):
                        hit = True
                        break
            results.append(hit)
        return results
