"""Per-link subscription aggregation with covering detection.

A PHB or intermediate broker asks one question per downstream link per
event: *does any subscription below this link match?*  Evaluating every
subscription individually makes that O(subscriptions); Gryphon-style
deployments instead push a compact **aggregate** of the link's
subscription set (Shi et al., *Towards Scalable Subscription
Aggregation*).  This module keeps such an aggregate — exactly, so
filtering decisions (and therefore delivery transcripts) are
bit-identical to per-subscription evaluation:

* Every subscription reduces to a **signature** — its deduplicated atom
  set plus opaque residual.  Equal predicates across subscribers
  (the overwhelmingly common case: many subscribers to the same groups
  or topics) collapse into one refcounted signature.
* A residual-free signature ``C`` **covers** ``S`` when
  ``C.atoms ⊆ S.atoms`` — fewer conjuncts match strictly more events —
  so ``S`` contributes nothing to ``matches_any`` while ``C`` lives.
  Covered signatures are parked; only the minimal antichain is
  registered with the counting matcher that answers ``matches_any``.
* Add/remove updates are incremental: a new signature is checked
  against existing ones with a counting subset-join over shared atoms
  (never a full pairwise sweep), and removing the last reference to a
  coverer re-activates exactly the signatures it parked.

The union of the active signatures' match sets equals the union over
all subscriptions (any parked ``S`` has a chain of ever-smaller
residual-free coverers ending in an active one), so the aggregate is an
*exact* summary, not an approximation.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

from .counting import CountingMatcher
from .predicates import Atom, Predicate

#: The signature of a wildcard subscription: no atoms, no residual.
_WILDCARD = ("sig", frozenset(), None)


class SubscriptionAggregate:
    """An exact, incrementally maintained summary of a subscription set."""

    def __init__(self) -> None:
        self._sub_sig: Dict[str, Hashable] = {}
        self._refs: Dict[Hashable, int] = {}
        self._atoms: Dict[Hashable, FrozenSet[Atom]] = {}
        self._atom_order: Dict[Hashable, Tuple[Atom, ...]] = {}
        self._residual: Dict[Hashable, Optional[Predicate]] = {}
        # atom -> ordered set of signatures containing it (for the
        # subset-join in both directions of the covering check)
        self._atom_sigs: Dict[Atom, Dict[Hashable, None]] = {}
        # sig -> residual-free signatures covering it; empty = active
        self._coverers: Dict[Hashable, Dict[Hashable, None]] = {}
        # reverse edges, so deleting a coverer re-activates its wards
        self._covered_by: Dict[Hashable, Dict[Hashable, None]] = {}
        # the active antichain, answering matches_any by counting
        self.matcher = CountingMatcher()
        self.cover_checks = 0

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._sub_sig)

    @property
    def signature_count(self) -> int:
        return len(self._refs)

    @property
    def active_count(self) -> int:
        return len(self.matcher)

    def accepts_all(self) -> bool:
        """True when a wildcard subscription makes filtering pointless."""
        return _WILDCARD in self._refs

    def matches_any(self, attributes: Mapping[str, Any]) -> bool:
        return self.matcher.matches_any(attributes)

    def matches_any_batch(self, batch: Sequence[Mapping[str, Any]]) -> List[bool]:
        """Per-event :meth:`matches_any` answers for a whole batch.

        PHB/intermediate child filtering classifies a coalesced
        tick-range in one pass; the antichain matcher amortizes index
        probes and candidate plans across the batch
        (:meth:`~repro.matching.counting.CountingMatcher.matches_any_batch`).
        """
        return self.matcher.matches_any_batch(batch)

    # -- updates -------------------------------------------------------
    def add(self, sub_id: str, atoms: Tuple[Atom, ...], residual: Optional[Predicate]) -> None:
        if sub_id in self._sub_sig:
            self.remove(sub_id)
        key: Hashable = ("sig", frozenset(atoms), residual)
        try:
            hash(key)
        except TypeError:
            # Unhashable residual: a private, undeduplicated signature.
            key = ("sub", sub_id)
        self._sub_sig[sub_id] = key
        refs = self._refs.get(key)
        if refs is not None:
            self._refs[key] = refs + 1
            return
        self._refs[key] = 1
        atom_set = frozenset(atoms)
        self._atoms[key] = atom_set
        self._atom_order[key] = atoms
        self._residual[key] = residual
        coverers = self._find_coverers(key, atom_set)
        if residual is None:
            self._park_newly_covered(key, atoms, atom_set)
        for atom in atoms:
            self._atom_sigs.setdefault(atom, {})[key] = None
        self._coverers[key] = coverers
        for c in coverers:
            self._covered_by[c][key] = None
        if not coverers:
            self.matcher.add(key, self._atom_order[key], residual)

    def remove(self, sub_id: str) -> None:
        key = self._sub_sig.pop(sub_id, None)
        if key is None:
            return
        refs = self._refs[key] - 1
        if refs:
            self._refs[key] = refs
            return
        del self._refs[key]
        atoms = self._atom_order.pop(key)
        del self._atoms[key]
        del self._residual[key]
        for atom in atoms:
            sigs = self._atom_sigs.get(atom)
            if sigs is not None:
                sigs.pop(key, None)
                if not sigs:
                    del self._atom_sigs[atom]
        coverers = self._coverers.pop(key)
        if not coverers:
            self.matcher.remove(key)
        else:
            for c in coverers:
                self._covered_by[c].pop(key, None)
        for ward in self._covered_by.pop(key, {}):
            coverers = self._coverers[ward]
            del coverers[key]
            if not coverers:
                self.matcher.add(ward, self._atom_order[ward], self._residual[ward])

    # -- covering ------------------------------------------------------
    def _find_coverers(self, key: Hashable, atom_set: FrozenSet[Atom]) -> Dict[Hashable, None]:
        """Existing residual-free signatures whose atoms ⊆ ``atom_set``.

        Counting subset-join: tally, over the posting lists of the new
        signature's atoms, how many of each candidate's atoms it shares;
        a residual-free candidate with a full tally is a subset.  The
        wildcard never appears in a posting list, so check it directly.
        """
        coverers: Dict[Hashable, None] = {}
        if key != _WILDCARD and _WILDCARD in self._refs:
            coverers[_WILDCARD] = None
        tally: Dict[Hashable, int] = {}
        for atom in self._atom_order[key]:
            for sig in self._atom_sigs.get(atom, ()):
                tally[sig] = tally.get(sig, 0) + 1
        for sig, shared in tally.items():
            self.cover_checks += 1
            if (
                sig != key
                and self._residual[sig] is None
                and shared == len(self._atoms[sig])
            ):
                coverers[sig] = None
        return coverers

    def _park_newly_covered(
        self, key: Hashable, atoms: Tuple[Atom, ...], atom_set: FrozenSet[Atom]
    ) -> None:
        """Deactivate existing signatures the residual-free ``key`` covers."""
        if atoms:
            # Candidates must contain every atom of ``key``; walk the
            # shortest posting list and verify inclusion.
            posting = min(
                (self._atom_sigs.get(atom, {}) for atom in atoms), key=len
            )
            candidates = [
                sig for sig in posting if atom_set <= self._atoms[sig]
            ]
        else:
            candidates = [sig for sig in self._refs if sig != key]
        wards = self._covered_by.setdefault(key, {})
        for sig in candidates:
            self.cover_checks += 1
            if sig == key:
                continue
            wards[sig] = None
            coverers = self._coverers[sig]
            if not coverers:
                self.matcher.remove(sig)
            coverers[key] = None
