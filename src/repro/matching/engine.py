"""The matching engine: which subscriptions does this event match?

Brokers evaluate many subscriptions per event: an SHB hosting hundreds
of durable subscribers must compute, for every event in the constream,
the full set of matching subscriber ids (that set is exactly what the
PFS logs).  Intermediate brokers only need the yes/no question "does
*any* downstream subscription match" to filter a knowledge stream.

The engine keeps an inverted index over the common predicate form
``attr ∈ values`` (see ``Predicate.indexable_equalities``); everything
else lands in a linear-scan bucket.  Matching an event then touches
only the subscriptions indexed under the event's own attribute values,
which keeps the per-event cost near O(matches) for the selective
workloads of the evaluation.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from .predicates import Predicate


#: Entries kept in the per-timestamp match cache before it is cleared.
MATCH_CACHE_LIMIT = 4096


class MatchingEngine:
    """A mutable registry of ``subscription_id -> Predicate``."""

    def __init__(self) -> None:
        self._filters: Dict[str, Predicate] = {}
        # attr -> value -> set of subscription ids indexed there
        self._index: Dict[str, Dict[Any, Set[str]]] = defaultdict(lambda: defaultdict(set))
        # (attr, value-set) remembered per sub for O(1) removal
        self._index_keys: Dict[str, Tuple[str, FrozenSet[Any]]] = {}
        self._scan: Set[str] = set()
        # event id -> frozen match result, valid until the filter set
        # changes (any add/remove invalidates every cached answer)
        self._match_cache: Dict[str, FrozenSet[str]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add(self, sub_id: str, predicate: Predicate) -> None:
        """Register (or replace) a subscription's filter."""
        if sub_id in self._filters:
            self.remove(sub_id)
        self._match_cache.clear()
        self._filters[sub_id] = predicate
        key = predicate.indexable_equalities()
        if key is None:
            self._scan.add(sub_id)
        else:
            attr, values = key
            self._index_keys[sub_id] = (attr, values)
            for value in values:
                self._index[attr][value].add(sub_id)

    def remove(self, sub_id: str) -> None:
        """Unregister a subscription (no-op when absent)."""
        predicate = self._filters.pop(sub_id, None)
        if predicate is None:
            return
        self._match_cache.clear()
        self._scan.discard(sub_id)
        key = self._index_keys.pop(sub_id, None)
        if key is not None:
            attr, values = key
            for value in values:
                bucket = self._index[attr].get(value)
                if bucket is not None:
                    bucket.discard(sub_id)
                    if not bucket:
                        del self._index[attr][value]

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._filters

    def __len__(self) -> int:
        return len(self._filters)

    def subscription_ids(self) -> List[str]:
        return list(self._filters)

    def filter_of(self, sub_id: str) -> Optional[Predicate]:
        return self._filters.get(sub_id)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def _candidates(self, attributes: Mapping[str, Any]) -> Iterable[str]:
        for attr, buckets in self._index.items():
            value = attributes.get(attr)
            if value is not None:
                hits = buckets.get(value)
                if hits:
                    yield from hits
        yield from self._scan

    def match(self, attributes: Mapping[str, Any]) -> Set[str]:
        """All subscription ids whose predicate matches ``attributes``."""
        out: Set[str] = set()
        for sub_id in self._candidates(attributes):
            if sub_id not in out and self._filters[sub_id].matches(attributes):
                out.add(sub_id)
        return out

    def matches_any(self, attributes: Mapping[str, Any]) -> bool:
        """True if at least one registered subscription matches.

        This is the question an intermediate broker asks per downstream
        link; it short-circuits on the first hit.
        """
        seen: Set[str] = set()
        for sub_id in self._candidates(attributes):
            if sub_id in seen:
                continue
            seen.add(sub_id)
            if self._filters[sub_id].matches(attributes):
                return True
        return False

    def match_at(self, event_id: str, attributes: Mapping[str, Any]) -> FrozenSet[str]:
        """Like :meth:`match`, memoized by the event's identity.

        ``event_id`` is ``pubend:timestamp`` — unique per event — and an
        event's attributes never change, so it fully identifies the
        match question; the same event re-entering the engine (nack
        replies arriving behind head knowledge, cache-served catchup
        ticks) reuses the stored answer until the filter set changes.
        Returns a frozen set — callers must not mutate it.
        """
        cached = self._match_cache.get(event_id)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        if len(self._match_cache) >= MATCH_CACHE_LIMIT:
            self._match_cache.clear()
        result = frozenset(self.match(attributes))
        self._match_cache[event_id] = result
        return result

    def matches_subscription(self, sub_id: str, attributes: Mapping[str, Any]) -> bool:
        """Evaluate one specific subscription (catchup-stream filtering)."""
        predicate = self._filters.get(sub_id)
        return predicate is not None and predicate.matches(attributes)
