"""The matching engine: which subscriptions does this event match?

Brokers evaluate many subscriptions per event: an SHB hosting hundreds
of durable subscribers must compute, for every event in the constream,
the full set of matching subscriber ids (that set is exactly what the
PFS logs).  Intermediate brokers only need the yes/no question "does
*any* downstream subscription match" to filter a knowledge stream.

Both questions are answered by the counting matcher
(:mod:`repro.matching.counting`): every predicate is decomposed into
indexable per-attribute atoms plus an opaque residual, atoms are
interned and indexed per attribute (hash for equalities, sorted bounds
for ranges), and an event matches a subscription when it satisfies all
of its atoms — determined by counting, not by re-walking predicate
trees.  Only fully opaque predicates land in the (now rare) scan
bucket, as zero-atom entries that are candidates for every event.

``matches_any`` — the per-downstream-link question — is answered by a
:class:`~repro.matching.aggregate.SubscriptionAggregate`: equal
predicates collapse into refcounted signatures and broader residual-free
signatures absorb narrower ones, so a link with thousands of
subscriptions is typically filtered against a handful of active
signatures.  Since each child link has its own engine, this gives
per-link aggregation for free.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from .aggregate import SubscriptionAggregate
from .counting import CountingMatcher
from .predicates import Atom, Predicate


#: Entries kept in the per-timestamp match cache before FIFO eviction.
MATCH_CACHE_LIMIT = 4096


def decompose_safe(predicate: Predicate) -> Tuple[Tuple[Atom, ...], Optional[Predicate]]:
    """``predicate.decompose()``, deduplicated and guaranteed hashable.

    Atoms embedding unhashable values (a list-valued ``Eq`` bound, say)
    cannot be interned or indexed; such predicates fall back to fully
    opaque, exactly like any other scan-bucket resident.
    """
    try:
        atoms, residual = predicate.decompose()
        atoms = tuple(dict.fromkeys(atoms))
        hash(atoms)
    except TypeError:
        return (), predicate
    return atoms, residual


class MatchingEngine:
    """A mutable registry of ``subscription_id -> Predicate``."""

    #: Class-level toggle for the batch-amortized matching paths.  When
    #: False every ``*_batch`` entry point degrades to a per-event loop
    #: over the single-event methods; results must be byte-identical
    #: either way (the determinism suite pins this).  Exists so tests
    #: can prove batching is a pure performance transform — production
    #: code never turns it off.
    batch_matching = True

    def __init__(self) -> None:
        self._filters: Dict[str, Predicate] = {}
        self._counting = CountingMatcher()
        self._aggregate = SubscriptionAggregate()
        # event id -> (attributes, frozen match result).  FIFO-bounded;
        # add/remove repair entries in place instead of dropping them.
        self._match_cache: "OrderedDict[str, Tuple[Mapping[str, Any], FrozenSet[str]]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add(self, sub_id: str, predicate: Predicate) -> None:
        """Register (or replace) a subscription's filter."""
        if sub_id in self._filters:
            self.remove(sub_id)
        self._filters[sub_id] = predicate
        atoms, residual = decompose_safe(predicate)
        self._counting.add(sub_id, atoms, residual)
        self._aggregate.add(sub_id, atoms, residual)
        # A new subscription can only *extend* cached match sets; one
        # predicate evaluation per cached event keeps the cache warm.
        for event_id, (attrs, result) in self._match_cache.items():
            if predicate.matches(attrs):
                self._match_cache[event_id] = (attrs, result | {sub_id})

    def remove(self, sub_id: str) -> None:
        """Unregister a subscription (no-op when absent)."""
        predicate = self._filters.pop(sub_id, None)
        if predicate is None:
            return
        self._counting.remove(sub_id)
        self._aggregate.remove(sub_id)
        # Removal can only *shrink* cached match sets — no predicate
        # evaluation needed at all.
        for event_id, (attrs, result) in self._match_cache.items():
            if sub_id in result:
                self._match_cache[event_id] = (attrs, result - {sub_id})

    def replace_all(self, filters: Mapping[str, Predicate]) -> None:
        """Make the registry equal ``filters`` by applying deltas only.

        Used by epoch-verified ``SubscriptionSync``: a periodic refresh
        usually re-states the same subscription set, so swapping in a
        freshly built engine (and losing every index and cache) is
        wasted work — diffing touches nothing when nothing changed.
        """
        for sub_id in [s for s in self._filters if s not in filters]:
            self.remove(sub_id)
        for sub_id, predicate in filters.items():
            if self._filters.get(sub_id) != predicate:
                self.add(sub_id, predicate)

    def __contains__(self, sub_id: str) -> bool:
        return sub_id in self._filters

    def __len__(self) -> int:
        return len(self._filters)

    def subscription_ids(self) -> List[str]:
        return list(self._filters)

    def filter_of(self, sub_id: str) -> Optional[Predicate]:
        return self._filters.get(sub_id)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, attributes: Mapping[str, Any]) -> Set[str]:
        """All subscription ids whose predicate matches ``attributes``."""
        return set(self._counting.match(attributes))

    def matches_any(self, attributes: Mapping[str, Any]) -> bool:
        """True if at least one registered subscription matches.

        This is the question a PHB or intermediate broker asks per
        downstream link; it is answered by the link's aggregate — the
        active covering signatures — not by trying subscriptions one
        by one.
        """
        return self._aggregate.matches_any(attributes)

    def accepts_all(self) -> bool:
        """True when a wildcard subscription is registered, so every
        event matches and per-event filtering can be skipped outright."""
        return self._aggregate.accepts_all()

    def match_at(self, event_id: str, attributes: Mapping[str, Any]) -> FrozenSet[str]:
        """Like :meth:`match`, memoized by the event's identity.

        ``event_id`` is ``pubend:timestamp`` — unique per event — and an
        event's attributes never change, so it fully identifies the
        match question; the same event re-entering the engine (nack
        replies arriving behind head knowledge, cache-served catchup
        ticks) reuses the stored answer.  The cache is FIFO-bounded and
        repaired in place on add/remove, so a hot event's answer
        survives subscription churn.  Returns a frozen set — callers
        must not mutate it.
        """
        cached = self._match_cache.get(event_id)
        if cached is not None:
            self.cache_hits += 1
            return cached[1]
        self.cache_misses += 1
        while len(self._match_cache) >= MATCH_CACHE_LIMIT:
            self._match_cache.popitem(last=False)
        result = frozenset(self._counting.match(attributes))
        self._match_cache[event_id] = (attributes, result)
        return result

    # ------------------------------------------------------------------
    # Batch matching — pure performance transforms over the above
    # ------------------------------------------------------------------
    def match_batch(self, batch: Sequence[Mapping[str, Any]]) -> List[Set[str]]:
        """Per-event :meth:`match` results for a whole batch, in order."""
        if not self.batch_matching:
            return [self.match(attributes) for attributes in batch]
        return [set(found) for found in self._counting.match_batch(batch)]

    def matches_any_batch(self, batch: Sequence[Mapping[str, Any]]) -> List[bool]:
        """Per-event :meth:`matches_any` answers for a whole batch."""
        if not self.batch_matching:
            return [self.matches_any(attributes) for attributes in batch]
        return self._aggregate.matches_any_batch(batch)

    def match_at_batch(
        self, items: Sequence[Tuple[str, Mapping[str, Any]]]
    ) -> List[FrozenSet[str]]:
        """:meth:`match_at` over ``(event_id, attributes)`` pairs.

        Cache hits are served first, then the misses are batch-matched
        and inserted in item order with :meth:`match_at`'s exact
        evict-then-store sequence, so the resulting cache contents are
        the same as the per-event loop's.
        """
        if not self.batch_matching:
            return [self.match_at(eid, attrs) for eid, attrs in items]
        results: List[Optional[FrozenSet[str]]] = [None] * len(items)
        cache = self._match_cache
        miss_indices: List[int] = []
        miss_attrs: List[Mapping[str, Any]] = []
        for i, (event_id, attributes) in enumerate(items):
            cached = cache.get(event_id)
            if cached is not None:
                self.cache_hits += 1
                results[i] = cached[1]
            else:
                self.cache_misses += 1
                miss_indices.append(i)
                miss_attrs.append(attributes)
        if miss_indices:
            for i, found in zip(miss_indices, self._counting.match_batch(miss_attrs)):
                while len(cache) >= MATCH_CACHE_LIMIT:
                    cache.popitem(last=False)
                event_id, attributes = items[i]
                result = frozenset(found)
                cache[event_id] = (attributes, result)
                results[i] = result
        return results  # type: ignore[return-value]

    def matches_subscription(self, sub_id: str, attributes: Mapping[str, Any]) -> bool:
        """Evaluate one specific subscription (catchup-stream filtering)."""
        predicate = self._filters.get(sub_id)
        return predicate is not None and predicate.matches(attributes)

    # ------------------------------------------------------------------
    # Instrumentation (see metrics.collector.matcher)
    # ------------------------------------------------------------------
    @property
    def atoms_examined(self) -> int:
        """Atom-index probes performed across all match calls."""
        return self._counting.atoms_examined

    @property
    def residual_evals(self) -> int:
        """Opaque predicate evaluations (scan bucket + residuals)."""
        return self._counting.residual_evals

    @property
    def candidates_seen(self) -> int:
        """Subscriptions whose satisfied-atom count was touched."""
        return self._counting.candidates_seen

    @property
    def events_processed(self) -> int:
        return self._counting.events_processed

    @property
    def batch_events(self) -> int:
        """Events matched through the batch-amortized paths."""
        return self._counting.batch_events

    @property
    def probe_cache_hits(self) -> int:
        """Attribute probes answered from the batch probe cache."""
        return self._counting.probe_cache_hits

    @property
    def sig_memo_hits(self) -> int:
        """Counting loops skipped via the signature memo."""
        return self._counting.sig_memo_hits

    @property
    def atom_count(self) -> int:
        """Distinct interned atoms currently indexed."""
        return self._counting.atom_count

    @property
    def scan_count(self) -> int:
        """Subscriptions resident in the opaque scan bucket."""
        return self._counting.scan_count

    @property
    def aggregate_signatures(self) -> int:
        """Deduplicated subscription signatures in the link aggregate."""
        return self._aggregate.signature_count

    @property
    def aggregate_active(self) -> int:
        """Signatures actually consulted by ``matches_any`` (the
        covering antichain); the rest are absorbed by broader ones."""
        return self._aggregate.active_count

    @property
    def aggregate_evals(self) -> int:
        """Work done answering ``matches_any``: atom probes plus
        residual evaluations inside the aggregate's matcher."""
        m = self._aggregate.matcher
        return m.atoms_examined + m.residual_evals
