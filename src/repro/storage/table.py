"""Crash-consistent key/value tables — the DB2 stand-in.

Section 4.1: *"The latestDelivered(p) and released(s, p) timestamps are
maintained in persistent storage since they need to survive SHB
crashes.  Our implementation maintains these in database tables."* The
JMS layer additionally stores per-subscriber checkpoint tokens in
tables and commits them transactionally (Section 5.2).

:class:`PersistentTable` provides the contract the protocol needs:

* reads see the caller's own uncommitted writes (read-your-writes),
  including batches whose covering disk sync is still in flight,
* :meth:`commit` makes the current dirty set durable atomically — its
  ``on_durable`` callback fires once the backing
  :class:`~repro.storage.disk.SimDisk` sync covering it completes,
* a crash (:meth:`crash_reset`) discards dirty *and* in-flight commits
  whose sync had not completed; committed state survives.

Sizes are estimated so the disk byte accounting stays meaningful.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..sim.crashpoints import HOOKS
from .disk import SimDisk

#: Rough per-row cost of a table write (key + value + index overhead).
ROW_BYTES = 64


class PersistentTable:
    """A named table of ``str -> value`` with transactional commits.

    In the simulation the "durable" contents live in ``_committed`` —
    they survive a *simulated* crash (``crash_reset``) but not the
    process.  Passing a ``journal``
    (:class:`~repro.storage.logvolume.LogStream`, typically file-backed)
    makes commits real: each transaction is appended to the journal
    *before* the covering ``disk.write``, so the sync that fires
    ``on_durable`` has already fsynced it, and a fresh process replays
    the journal into ``_committed`` at construction.  A torn journal
    tail is a transaction whose sync never completed — whose callback
    therefore never fired — so losing it is exactly the contract.
    """

    def __init__(
        self,
        name: str,
        disk: Optional[SimDisk] = None,
        journal: Optional[object] = None,
    ) -> None:
        self.name = name
        self._disk = disk
        self._journal = journal
        self._committed: Dict[str, Any] = {}
        self._dirty: Dict[str, Any] = {}
        self._deleted: set = set()
        #: Commit batches handed to the disk but not yet synced, oldest
        #: first.  Part of the read overlay: a transaction the caller
        #: committed must stay visible to its own reads while the sync
        #: is in flight (read-your-writes), even though a crash in that
        #: window would discard it.
        self._inflight: List[Tuple[Dict[str, Any], set]] = []
        self.commits = 0
        self._commit_epoch = 0  # bumped on crash; stale syncs are ignored
        if journal is not None:
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Rebuild ``_committed`` from the journal (process restart)."""
        journal = self._journal
        assert journal is not None
        for index in range(journal.chopped_below, journal.next_index):  # type: ignore[attr-defined]
            batch, deleted = pickle.loads(journal.read(index))  # type: ignore[attr-defined]
            self._committed.update(batch)
            for key in deleted:
                self._committed.pop(key, None)

    @property
    def owner(self) -> Optional[str]:
        """The broker whose crash discards this table's volatile state."""
        return self._disk.owner if self._disk is not None else None

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._dirty[key] = value
        self._deleted.discard(key)

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._dirty:
            return self._dirty[key]
        if key in self._deleted:
            return default
        for batch, deleted in reversed(self._inflight):
            if key in batch:
                return batch[key]
            if key in deleted:
                return default
        return self._committed.get(key, default)

    def get_committed(self, key: str, default: Any = None) -> Any:
        """Read only the durably committed value (what a crash preserves).

        Protocol decisions that must remain valid across a crash — the
        release report, notably — must be based on this view, not on
        the dirty or in-flight overlays.
        """
        return self._committed.get(key, default)

    def delete(self, key: str) -> None:
        self._dirty.pop(key, None)
        if key in self._committed or any(
            key in batch for batch, _deleted in self._inflight
        ):
            self._deleted.add(key)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate the table as the caller currently sees it.

        Ordering is committed-insertion order, then each in-flight
        batch in commit order, then dirty-insertion order — with a key
        re-yielding at its *newest* layer, mirroring :meth:`get`.
        """
        view: Dict[str, Any] = dict(self._committed)
        for batch, deleted in self._inflight:
            for key in batch:
                view.pop(key, None)
            view.update(batch)
            for key in deleted:
                view.pop(key, None)
        for key in self._dirty:
            view.pop(key, None)
        view.update(self._dirty)
        for key in self._deleted:
            view.pop(key, None)
        return iter(view.items())

    def committed_items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate only durably committed rows (what a crash preserves)."""
        return iter(self._committed.copy().items())

    @property
    def dirty_row_count(self) -> int:
        return len(self._dirty) + len(self._deleted)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, on_durable: Optional[Callable[[], None]] = None) -> int:
        """Atomically persist the dirty set.

        Returns the number of rows in the transaction.  With no disk
        attached (unit tests, the real-file JMS path measures elsewhere)
        the commit applies synchronously.
        """
        rows = len(self._dirty) + len(self._deleted)
        if rows == 0:
            if on_durable is not None:
                if self._disk is None:
                    on_durable()
                else:
                    self._disk.write(0, on_durable)
            return 0
        if HOOKS.enabled:
            # Crash here: the transaction is still only dirty state.
            HOOKS.fire("table.commit.pre", self.owner)
        batch = dict(self._dirty)
        deleted = set(self._deleted)
        self._dirty = {}
        self._deleted = set()
        entry = (batch, deleted)
        self._inflight.append(entry)
        epoch = self._commit_epoch
        if self._journal is not None:
            # Stage the transaction's content before the covering
            # disk.write: the sync that fires ``apply`` fsyncs it.
            self._journal.append(  # type: ignore[attr-defined]
                pickle.dumps((batch, sorted(deleted)), protocol=pickle.HIGHEST_PROTOCOL)
            )

        def apply() -> None:
            if epoch != self._commit_epoch:
                return  # crashed before this sync completed
            if HOOKS.enabled:
                # Crash here: the sync completed but the transaction is
                # not yet reflected in the committed view.
                HOOKS.fire("table.apply.pre", self.owner)
            self._inflight.remove(entry)
            self._committed.update(batch)
            for key in deleted:
                self._committed.pop(key, None)
            self.commits += 1
            if HOOKS.enabled:
                # Crash here: committed, but the caller was never told.
                HOOKS.fire("table.apply.post", self.owner)
            if on_durable is not None:
                on_durable()

        if self._disk is None:
            apply()
        else:
            self._disk.write(rows * ROW_BYTES, apply)
        if HOOKS.enabled:
            HOOKS.fire("table.commit.post", self.owner)
        return rows

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Simulate a crash: lose dirty state and in-flight commits."""
        self._commit_epoch += 1
        self._dirty = {}
        self._deleted = set()
        self._inflight = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PersistentTable {self.name} rows={len(self._committed)} dirty={self.dirty_row_count}>"
