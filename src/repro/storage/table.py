"""Crash-consistent key/value tables — the DB2 stand-in.

Section 4.1: *"The latestDelivered(p) and released(s, p) timestamps are
maintained in persistent storage since they need to survive SHB
crashes.  Our implementation maintains these in database tables."* The
JMS layer additionally stores per-subscriber checkpoint tokens in
tables and commits them transactionally (Section 5.2).

:class:`PersistentTable` provides the contract the protocol needs:

* reads see the caller's own uncommitted writes (read-your-writes),
* :meth:`commit` makes the current dirty set durable atomically — its
  ``on_durable`` callback fires once the backing
  :class:`~repro.storage.disk.SimDisk` sync covering it completes,
* a crash (:meth:`crash_reset`) discards dirty *and* in-flight commits
  whose sync had not completed; committed state survives.

Sizes are estimated so the disk byte accounting stays meaningful.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from .disk import SimDisk

#: Rough per-row cost of a table write (key + value + index overhead).
ROW_BYTES = 64


class PersistentTable:
    """A named table of ``str -> value`` with transactional commits."""

    def __init__(self, name: str, disk: Optional[SimDisk] = None) -> None:
        self.name = name
        self._disk = disk
        self._committed: Dict[str, Any] = {}
        self._dirty: Dict[str, Any] = {}
        self._deleted: set = set()
        self.commits = 0
        self._commit_epoch = 0  # bumped on crash; stale syncs are ignored

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._dirty[key] = value
        self._deleted.discard(key)

    def get(self, key: str, default: Any = None) -> Any:
        if key in self._dirty:
            return self._dirty[key]
        if key in self._deleted:
            return default
        return self._committed.get(key, default)

    def get_committed(self, key: str, default: Any = None) -> Any:
        """Read only the durably committed value (what a crash preserves).

        Protocol decisions that must remain valid across a crash — the
        release report, notably — must be based on this view, not on
        the dirty overlay.
        """
        return self._committed.get(key, default)

    def delete(self, key: str) -> None:
        self._dirty.pop(key, None)
        if key in self._committed:
            self._deleted.add(key)

    def items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate the table as the caller currently sees it."""
        for key, value in self._committed.items():
            if key not in self._dirty and key not in self._deleted:
                yield key, value
        yield from self._dirty.items()

    def committed_items(self) -> Iterator[Tuple[str, Any]]:
        """Iterate only durably committed rows (what a crash preserves)."""
        return iter(self._committed.copy().items())

    @property
    def dirty_row_count(self) -> int:
        return len(self._dirty) + len(self._deleted)

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def commit(self, on_durable: Optional[Callable[[], None]] = None) -> int:
        """Atomically persist the dirty set.

        Returns the number of rows in the transaction.  With no disk
        attached (unit tests, the real-file JMS path measures elsewhere)
        the commit applies synchronously.
        """
        rows = len(self._dirty) + len(self._deleted)
        if rows == 0:
            if on_durable is not None:
                if self._disk is None:
                    on_durable()
                else:
                    self._disk.write(0, on_durable)
            return 0
        batch = dict(self._dirty)
        deleted = set(self._deleted)
        self._dirty = {}
        self._deleted = set()
        epoch = self._commit_epoch

        def apply() -> None:
            if epoch != self._commit_epoch:
                return  # crashed before this sync completed
            self._committed.update(batch)
            for key in deleted:
                self._committed.pop(key, None)
            self.commits += 1
            if on_durable is not None:
                on_durable()

        if self._disk is None:
            apply()
        else:
            self._disk.write(rows * ROW_BYTES, apply)
        return rows

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Simulate a crash: lose dirty state and in-flight commits."""
        self._commit_epoch += 1
        self._dirty = {}
        self._deleted = set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PersistentTable {self.name} rows={len(self._committed)} dirty={self.dirty_row_count}>"
