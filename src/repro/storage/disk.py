"""Simulated durable storage device with group commit.

The paper attributes 44 of the 50 ms end-to-end latency to "event
logging at the PHB": events become deliverable only once the disk sync
covering them completes, and syncs are batched (group commit) so
throughput stays high.  The SHB's PFS and table commits behave the same
way on a second device.

:class:`SimDisk` models exactly that contract:

* :meth:`write` stages ``nbytes`` and registers a completion callback,
* a sync cycle starts every ``sync_interval_ms`` if anything is staged
  and takes ``sync_duration_ms`` plus a bandwidth term,
* all callbacks staged before the cycle began fire when it completes,
* total bytes written are accounted (the PFS microbenchmark's
  "25x less data" claim is a statement about this counter).

Writes staged while a sync is in flight join the *next* cycle, so the
mean time from write to durability under light load is roughly
``(sync_interval + sync_duration)/2 + sync_duration``; the defaults
(6, 27) land near the paper's 44 ms PHB logging latency.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..net.simtime import Scheduler
from ..sim.crashpoints import HOOKS


class SimDisk:
    """A group-commit disk attached to the simulation clock."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str = "disk",
        sync_interval_ms: float = 6.0,
        sync_duration_ms: float = 27.0,
        bandwidth_bytes_per_ms: float = 20_000.0,
    ) -> None:
        if sync_interval_ms <= 0 or sync_duration_ms < 0:
            raise ValueError("invalid sync parameters")
        if bandwidth_bytes_per_ms <= 0:
            raise ValueError("bandwidth must be positive")
        self.scheduler = scheduler
        self.name = name
        #: Name of the broker whose crash voids this device's staged
        #: writes (set by ``Broker._own_storage``); the crash-point
        #: explorer uses it to decide *whom* to crash when a hook on
        #: this device fires.  Purely diagnostic otherwise.
        self.owner: Optional[str] = None
        self.sync_interval_ms = sync_interval_ms
        self.sync_duration_ms = sync_duration_ms
        self.bandwidth_bytes_per_ms = bandwidth_bytes_per_ms
        self.bytes_written = 0
        self.syncs_completed = 0
        self.crashes = 0
        #: Writes staged (or mid-sync) at crash time whose callbacks
        #: therefore never fired — the chaos soak checks these are
        #: recovered via nacks, never acknowledged as durable.
        self.writes_lost_in_crash = 0
        self._staged: List[Tuple[int, Optional[Callable[[], None]]]] = []
        self._sync_scheduled = False
        self._sync_in_flight = False
        self._inflight_writes = 0
        self._epoch = 0  # bumped on crash; in-flight syncs are voided

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def write(self, nbytes: int, on_durable: Optional[Callable[[], None]] = None) -> None:
        """Stage ``nbytes``; ``on_durable`` fires when they hit the platter."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._staged.append((nbytes, on_durable))
        self._arm_sync()

    def sync_now(self) -> None:
        """Force a sync cycle to begin immediately (used by shutdown paths)."""
        if self._staged and not self._sync_in_flight:
            self._begin_sync()

    def _arm_sync(self) -> None:
        if self._sync_scheduled or self._sync_in_flight:
            return
        self._sync_scheduled = True
        self.scheduler.after(self.sync_interval_ms, self._begin_sync)

    def _begin_sync(self) -> None:
        self._sync_scheduled = False
        if self._sync_in_flight or not self._staged:
            return
        if HOOKS.enabled:
            # Crash here: the batch is still staged, nothing in flight.
            HOOKS.fire("disk.sync.begin", self.owner)
        batch, self._staged = self._staged, []
        batch_bytes = sum(n for n, _ in batch)
        duration = self.sync_duration_ms + batch_bytes / self.bandwidth_bytes_per_ms
        self._sync_in_flight = True
        self._inflight_writes = len(batch)
        self.scheduler.after(duration, self._complete_sync, self._epoch, batch, batch_bytes)

    def _complete_sync(
        self,
        epoch: int,
        batch: List[Tuple[int, Optional[Callable[[], None]]]],
        batch_bytes: int,
    ) -> None:
        if epoch != self._epoch:
            return  # the device crashed while this sync was in flight
        if HOOKS.enabled:
            # Crash here: the platter write "happened" but no caller has
            # been told — fired before the in-flight counters are
            # cleared so ``crash_reset`` still counts the batch as lost.
            HOOKS.fire("disk.sync.complete.pre", self.owner)
        self._sync_in_flight = False
        self._inflight_writes = 0
        self.bytes_written += batch_bytes
        self.syncs_completed += 1
        for _n, cb in batch:
            if HOOKS.enabled:
                # Crash between callbacks: a *prefix* of the batch has
                # been acknowledged durable — the torn cut ordered
                # journaling permits.
                HOOKS.fire("disk.sync.callback", self.owner)
            if cb is not None:
                cb()
            if epoch != self._epoch:
                # A callback crashed the device (directly or via an
                # injected crash while this frame survived): the rest
                # of the batch must never be acknowledged.
                return
        if HOOKS.enabled:
            HOOKS.fire("disk.sync.complete.post", self.owner)
        if self._staged:
            self._arm_sync()

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    def crash_reset(self) -> None:
        """Drop all staged-but-unsynced writes (their callbacks never fire).

        Called by the owning broker's crash handler: data acknowledged
        durable stays durable; everything else — including a sync that
        was in flight when the machine died — is lost, exactly the
        write-ahead-log contract the protocol is built on.
        """
        self._epoch += 1
        self.crashes += 1
        self.writes_lost_in_crash += len(self._staged) + self._inflight_writes
        self._staged.clear()
        self._sync_scheduled = False
        self._sync_in_flight = False
        self._inflight_writes = 0
