"""The per-pubend persistent event log at the publisher hosting broker.

This is the *only* place an event is persistently logged in the whole
system (novel feature 1 in the paper's introduction).  The log is an
ordered stream indexed by event timestamp; the release protocol chops a
growing prefix, after which reads of chopped timestamps report "lost"
(the L tick) rather than returning data.

Durability follows the group-commit contract of
:class:`~repro.storage.disk.SimDisk`: :meth:`append` stages the event
and invokes ``on_durable`` when the covering sync completes.  The
pubend publishes knowledge about an event only after this callback —
that ordering is what makes PHB-side logging sufficient for
exactly-once delivery, and what contributes the 44 ms of the paper's
50 ms end-to-end latency.
"""

from __future__ import annotations

import bisect
import pickle
from typing import Callable, Dict, List, Optional

from ..core.events import Event
from ..sim.crashpoints import HOOKS
from ..util.errors import StorageError
from .disk import SimDisk


class PersistentEventLog:
    """Ordered event storage for one pubend, chopped from the front.

    With a ``journal`` (:class:`~repro.storage.logvolume.LogStream`,
    file-backed) the log survives real process death: each event is
    appended to the journal before the covering ``disk.write`` (the
    sync firing ``on_durable`` fsyncs it) and chops are journalled the
    same way; a fresh process replays the journal at construction.  A
    torn tail is an event whose ``on_durable`` never fired — recovered
    by publisher retransmission, exactly the crash contract.
    """

    def __init__(
        self,
        pubend: str,
        disk: Optional[SimDisk] = None,
        journal: Optional[object] = None,
    ) -> None:
        self.pubend = pubend
        self._disk = disk
        self._journal = journal
        self._events: Dict[int, Event] = {}
        self._timestamps: List[int] = []  # sorted (appends are monotonic)
        self._chopped_below = 0  # all ticks < this are lost (L)
        self._durable_epoch = 0
        self.appended = 0
        self.bytes_logged = 0
        if journal is not None:
            self._replay_journal()

    def _replay_journal(self) -> None:
        """Rebuild the durable view from the journal (process restart)."""
        journal = self._journal
        assert journal is not None
        for index in range(journal.chopped_below, journal.next_index):  # type: ignore[attr-defined]
            kind, value = pickle.loads(journal.read(index))  # type: ignore[attr-defined]
            if kind == "ev":
                if value.timestamp >= self._chopped_below:
                    self._events[value.timestamp] = value
                    self._timestamps.append(value.timestamp)
                    self.appended += 1
            elif kind == "chop" and value > self._chopped_below:
                cut = bisect.bisect_left(self._timestamps, value)
                for t in self._timestamps[:cut]:
                    del self._events[t]
                del self._timestamps[:cut]
                self._chopped_below = value

    @property
    def owner(self) -> Optional[str]:
        """The broker whose crash voids staged appends (via the disk)."""
        return self._disk.owner if self._disk is not None else None

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def append(self, event: Event, on_durable: Optional[Callable[[], None]] = None) -> None:
        """Log ``event``; ``on_durable`` fires when it is crash-safe."""
        if event.pubend != self.pubend:
            raise StorageError(f"event for {event.pubend} appended to log of {self.pubend}")
        if self._timestamps and event.timestamp <= self._timestamps[-1]:
            raise StorageError(
                f"non-monotonic append: {event.timestamp} after {self._timestamps[-1]}"
            )
        if event.timestamp < self._chopped_below:
            raise StorageError(f"append below chop point {self._chopped_below}")
        if self._journal is not None:
            self._journal.append(  # type: ignore[attr-defined]
                pickle.dumps(("ev", event), protocol=pickle.HIGHEST_PROTOCOL)
            )
        epoch = self._durable_epoch

        def durable() -> None:
            if epoch != self._durable_epoch:
                return  # lost in a crash before the sync completed
            if HOOKS.enabled:
                # Crash here: the sync completed but the event never
                # entered the durable view — it must be recovered via
                # publisher retransmission, never half-applied.
                HOOKS.fire("eventlog.durable.pre", self.owner)
            self._events[event.timestamp] = event
            self._timestamps.append(event.timestamp)
            self.appended += 1
            self.bytes_logged += event.size_bytes
            if HOOKS.enabled:
                # Crash here: durably logged, but knowledge of it was
                # never disseminated (on_durable unfired).
                HOOKS.fire("eventlog.durable.post", self.owner)
            if on_durable is not None:
                on_durable()

        if self._disk is None:
            durable()
        else:
            self._disk.write(event.size_bytes, durable)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, timestamp: int) -> Optional[Event]:
        """The durable event at ``timestamp``, or None (silence or lost)."""
        return self._events.get(timestamp)

    def read_range(self, start: int, end: int) -> List[Event]:
        """All durable events with ``start <= timestamp <= end``."""
        lo = bisect.bisect_left(self._timestamps, start)
        hi = bisect.bisect_right(self._timestamps, end)
        return [self._events[t] for t in self._timestamps[lo:hi]]

    @property
    def chopped_below(self) -> int:
        """Every tick strictly below this value has been released (L)."""
        return self._chopped_below

    @property
    def max_timestamp(self) -> Optional[int]:
        return self._timestamps[-1] if self._timestamps else None

    @property
    def live_event_count(self) -> int:
        return len(self._timestamps)

    # ------------------------------------------------------------------
    # Release / failure
    # ------------------------------------------------------------------
    def chop_below(self, timestamp: int) -> int:
        """Discard every event with timestamp ``< timestamp``.

        Returns the number of events discarded.  Invoked by the release
        protocol once the prefix has been converted to L ticks.
        """
        if timestamp <= self._chopped_below:
            return 0
        if HOOKS.enabled:
            # Crash here: the release decision was made but no event
            # has been discarded yet.
            HOOKS.fire("eventlog.chop.pre", self.owner)
        if self._journal is not None:
            self._journal.append(  # type: ignore[attr-defined]
                pickle.dumps(("chop", timestamp), protocol=pickle.HIGHEST_PROTOCOL)
            )
        cut = bisect.bisect_left(self._timestamps, timestamp)
        for t in self._timestamps[:cut]:
            del self._events[t]
        del self._timestamps[:cut]
        self._chopped_below = timestamp
        if HOOKS.enabled:
            # Crash here: the prefix is gone; the release bound must
            # already cover it or recovery would resurrect L as data.
            HOOKS.fire("eventlog.chop.post", self.owner)
        return cut

    def crash_reset(self) -> None:
        """Lose staged (unsynced) appends; durable contents survive."""
        self._durable_epoch += 1
