"""The Log Volume: multiplexed append-only log streams (paper ref [8]).

Section 4.2: *"The PFS uses the Log Volume ... A Log Volume can contain
multiple Log Streams ... Each Log Stream implements a write API that
supports (1) appending a record to the stream, where each such appended
record is assigned a unique monotonic index number, and (2) chopping
(discarding) all the records up to some index number.  The Log Volume
multiplexes multiple log streams onto a single file, and supports
efficient retrieval of records by index number."*

Two backends share the same API:

* :class:`MemoryBackend` — used inside the discrete-event simulation,
  where durability *timing* is modelled by
  :class:`repro.storage.disk.SimDisk` and only contents matter here.
* :class:`FileBackend` — a real single-file implementation with framed,
  CRC-checked records, used by the PFS microbenchmark (real bytes, real
  flushes) and by crash-recovery tests.  Recovery scans the file,
  drops a torn tail, and rebuilds the per-stream index maps.

File frame layout (little-endian)::

    MAGIC(4) stream_id(4) index(8) length(4) crc32(4) payload(length)

Chops are themselves logged as zero-length control frames with the chop
index in the ``index`` field and length ``0xFFFFFFFF`` sentinel — so a
recovered volume knows not to resurrect chopped records.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.crashpoints import HOOKS
from ..util.errors import CorruptLogError, RecordNotFoundError

_MAGIC = b"GLV1"
_HEADER = struct.Struct("<4sIqII")  # magic, stream_id, index, length, crc
_CHOP_SENTINEL = 0xFFFFFFFF


class LogStream:
    """One logical stream within a :class:`LogVolume`.

    Indexes are assigned densely from 0 by order of append.  ``chop(i)``
    discards every record with index ``<= i``; reading such an index
    raises :class:`RecordNotFoundError`.
    """

    def __init__(self, volume: "LogVolume", stream_id: int, name: str) -> None:
        self._volume = volume
        self.stream_id = stream_id
        self.name = name
        self.next_index = 0
        self.chopped_below = 0  # smallest readable index

    # -- write ---------------------------------------------------------
    def append(self, record: bytes) -> int:
        """Append ``record``; returns its monotonic index."""
        if HOOKS.enabled:
            # Crash here: the index was never assigned, nothing stored.
            HOOKS.fire("logstream.append.pre", self._volume.owner)
        index = self.next_index
        self.next_index += 1
        self._volume._backend.append(self.stream_id, index, record)
        if HOOKS.enabled:
            # Crash here: stored and indexed, but the caller's own
            # bookkeeping (e.g. PFS last_index) has not seen it.
            HOOKS.fire("logstream.append.post", self._volume.owner)
        return index

    def chop(self, up_to_index: int) -> None:
        """Discard every record with index ``<= up_to_index``."""
        if up_to_index < self.chopped_below - 1:
            return  # already chopped further
        bound = min(up_to_index, self.next_index - 1)
        if bound < self.chopped_below:
            return
        if HOOKS.enabled:
            HOOKS.fire("logstream.chop.pre", self._volume.owner)
        self._volume._backend.chop(self.stream_id, bound)
        self.chopped_below = bound + 1
        if HOOKS.enabled:
            HOOKS.fire("logstream.chop.post", self._volume.owner)

    def crash_truncate(self, durable_next_index: int) -> int:
        """Simulated crash: discard appends with index >= ``durable_next_index``.

        Only meaningful on the memory backend, where the simulation
        tracks durability externally (a :class:`SimDisk`); the file
        backend loses its torn tail for real during recovery instead.
        Returns the number of records discarded.

        The caller's durable horizon can lag the chop point (records
        may be chopped before their covering sync completes), so the
        discard range starts at whichever is higher: indexes below
        ``chopped_below`` were already discarded by the chop and must
        not be double-counted as crash losses.
        """
        dropped = 0
        backend = self._volume._backend
        start = max(durable_next_index, self.chopped_below)
        for index in range(start, self.next_index):
            if isinstance(backend, MemoryBackend):
                backend._records.pop((self.stream_id, index), None)
            dropped += 1
        self.next_index = max(durable_next_index, self.chopped_below)
        return dropped

    # -- read ----------------------------------------------------------
    def read(self, index: int) -> bytes:
        """Return the record at ``index`` (raises if chopped or unwritten)."""
        if index < self.chopped_below:
            raise RecordNotFoundError(
                f"stream {self.name}: index {index} chopped (floor {self.chopped_below})"
            )
        if index >= self.next_index:
            raise RecordNotFoundError(f"stream {self.name}: index {index} not yet written")
        return self._volume._backend.read(self.stream_id, index)

    def read_range(self, first_index: int, last_index: int) -> List[bytes]:
        """Records with indexes in ``[first_index, last_index]``, ascending."""
        return [self.read(i) for i in range(max(first_index, self.chopped_below), last_index + 1)]

    def __len__(self) -> int:
        """Number of live (unchopped) records."""
        return self.next_index - self.chopped_below


class MemoryBackend:
    """In-memory record store (simulation use; no durability semantics)."""

    def __init__(self) -> None:
        self._records: Dict[Tuple[int, int], bytes] = {}
        self.bytes_appended = 0

    def append(self, stream_id: int, index: int, record: bytes) -> None:
        self._records[(stream_id, index)] = record
        self.bytes_appended += len(record)

    def read(self, stream_id: int, index: int) -> bytes:
        try:
            return self._records[(stream_id, index)]
        except KeyError:
            raise RecordNotFoundError(f"stream {stream_id} index {index} missing") from None

    def chop(self, stream_id: int, up_to_index: int) -> None:
        # Lazy: indexes are dense from 0, so walk down from the bound
        # until we hit already-removed entries.
        i = up_to_index
        while i >= 0 and (stream_id, i) in self._records:
            del self._records[(stream_id, i)]
            i -= 1

    def flush(self) -> None:  # durability is a no-op in memory
        pass

    def close(self) -> None:
        pass


class FileBackend:
    """Single-file framed backend with CRC validation and recovery.

    The offset index lives in memory (rebuilt on open by scanning), as
    in log-structured designs.  ``flush`` performs a real
    ``flush + os.fsync`` — the PFS microbenchmark measures these.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.bytes_appended = 0
        self.flush_count = 0
        #: Bytes discarded by recovery because the tail frame was torn
        #: (short write) or failed its CRC — never an exception.
        self.torn_bytes_truncated = 0
        self._offsets: Dict[Tuple[int, int], Tuple[int, int]] = {}  # (sid, idx) -> (offset, length)
        self._chops: Dict[int, int] = {}  # sid -> chopped-below index
        self._next_index: Dict[int, int] = {}
        self._file = open(path, "a+b")
        self._recover()

    # -- recovery ------------------------------------------------------
    def _recover(self) -> None:
        """Scan the file, rebuild indexes, truncate any torn tail."""
        self._file.seek(0)
        valid_end = 0
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break
            try:
                magic, sid, index, length, crc = _HEADER.unpack(header)
            except struct.error:  # pragma: no cover - defensive
                break
            if magic != _MAGIC:
                break
            if length == _CHOP_SENTINEL:
                self._apply_chop(sid, index)
                valid_end = self._file.tell()
                continue
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                break  # torn or corrupt tail: stop here
            self._offsets[(sid, index)] = (valid_end + _HEADER.size, length)
            self._next_index[sid] = max(self._next_index.get(sid, 0), index + 1)
            valid_end = self._file.tell()
        self._file.seek(0, os.SEEK_END)
        self.torn_bytes_truncated += self._file.tell() - valid_end
        self._file.truncate(valid_end)
        self._file.seek(0, os.SEEK_END)
        # Re-apply chops recorded earlier in the scan (a chop frame may
        # precede the records it chops only if compaction reordered the
        # file; applying again is idempotent and safe).
        for sid, below in list(self._chops.items()):
            self._apply_chop(sid, below - 1)

    def _apply_chop(self, sid: int, up_to_index: int) -> None:
        below = up_to_index + 1
        if below <= self._chops.get(sid, 0):
            return
        self._chops[sid] = below
        for key in [k for k in self._offsets if k[0] == sid and k[1] < below]:
            del self._offsets[key]

    # -- API -------------------------------------------------------------
    def append(self, stream_id: int, index: int, record: bytes) -> None:
        header = _HEADER.pack(_MAGIC, stream_id, index, len(record), zlib.crc32(record))
        self._file.write(header + record)
        self._offsets[(stream_id, index)] = (self._file.tell() - len(record), len(record))
        self._next_index[stream_id] = max(self._next_index.get(stream_id, 0), index + 1)
        self.bytes_appended += len(header) + len(record)

    def read(self, stream_id: int, index: int) -> bytes:
        try:
            offset, length = self._offsets[(stream_id, index)]
        except KeyError:
            raise RecordNotFoundError(f"stream {stream_id} index {index} missing") from None
        pos = self._file.tell()
        self._file.flush()
        self._file.seek(offset)
        payload = self._file.read(length)
        self._file.seek(pos)
        if len(payload) != length:
            raise CorruptLogError(f"short read at offset {offset}")
        return payload

    def chop(self, stream_id: int, up_to_index: int) -> None:
        header = _HEADER.pack(_MAGIC, stream_id, up_to_index, _CHOP_SENTINEL, 0)
        self._file.write(header)
        self.bytes_appended += len(header)
        self._apply_chop(stream_id, up_to_index)

    def flush(self) -> None:
        """Durably flush everything appended so far."""
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
        self.flush_count += 1

    def close(self) -> None:
        self._file.close()

    def recovered_next_index(self, stream_id: int) -> int:
        return self._next_index.get(stream_id, 0)

    def recovered_chopped_below(self, stream_id: int) -> int:
        return self._chops.get(stream_id, 0)


class LogVolume:
    """A set of named log streams multiplexed onto one backend."""

    def __init__(self, backend: Optional[object] = None) -> None:
        self._backend = backend if backend is not None else MemoryBackend()
        self._streams: Dict[str, LogStream] = {}
        self._next_stream_id = 0
        #: Broker whose crash voids un-synced appends (set by
        #: ``Broker._own_storage``); tags this volume's crash points.
        self.owner: Optional[str] = None

    @classmethod
    def in_memory(cls) -> "LogVolume":
        return cls(MemoryBackend())

    @classmethod
    def at_path(cls, path: str, fsync: bool = True) -> "LogVolume":
        """Open (or recover) a file-backed volume at ``path``."""
        backend = FileBackend(path, fsync=fsync)
        volume = cls(backend)
        return volume

    def stream(self, name: str) -> LogStream:
        """Get or create the stream called ``name``.

        Streams are numbered by creation order, so a recovered volume
        must create its streams in the same order it originally did
        (brokers create one stream per pubend, sorted by pubend name).
        """
        if name in self._streams:
            return self._streams[name]
        sid = self._next_stream_id
        self._next_stream_id += 1
        stream = LogStream(self, sid, name)
        backend = self._backend
        if isinstance(backend, FileBackend):
            stream.next_index = backend.recovered_next_index(sid)
            stream.chopped_below = backend.recovered_chopped_below(sid)
        self._streams[name] = stream
        return stream

    def streams(self) -> Iterator[LogStream]:
        return iter(self._streams.values())

    @property
    def bytes_appended(self) -> int:
        """Physical payload bytes appended across all streams.

        The PFS's own ``bytes_written`` is deliberately *logical*
        (footnote-2 accounting, representation-independent); this
        counter is where a columnar batch's smaller physical footprint
        — shared column slices, one backpointer table per batch —
        actually shows up.
        """
        return self._backend.bytes_appended  # type: ignore[attr-defined]

    def flush(self) -> None:
        self._backend.flush()  # type: ignore[attr-defined]

    def close(self) -> None:
        self._backend.close()  # type: ignore[attr-defined]
