"""Workload generation for the paper's evaluation scenarios.

Section 5.1: *"The input event rate in all topologies is 800 events/s,
distributed equally over 4 pubends, and subscriptions are such that
each subscriber receives 200 events/s."*

The standard construction: events carry a ``group`` attribute cycling
over ``n_groups`` values; a subscriber subscribing to
``groups_per_sub`` groups receives ``input_rate × groups_per_sub /
n_groups`` events per second.  The paper's parameters (800 ev/s,
4 groups, 1 group per subscriber) give exactly 200 ev/s per subscriber
and ``n = subscribers / 4`` matches per event — which is also what
makes the PFS record 25× smaller than per-subscriber event logging at
100 subscribers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..broker.phb import PublisherHostingBroker
from ..broker.shb import SubscriberHostingBroker
from ..client.publisher import PeriodicPublisher
from ..client.subscriber import DurableSubscriber
from ..matching.predicates import In, Predicate
from ..net.node import Node
from ..net.simtime import Scheduler


@dataclass(frozen=True)
class PaperWorkloadSpec:
    """The Section 5.1 workload knobs, defaulting to the paper's values."""

    input_rate: float = 800.0       # events/s across all pubends
    n_pubends: int = 4
    n_groups: int = 4
    groups_per_sub: int = 1
    payload_bytes: int = 250        # 418 bytes on the wire with headers

    @property
    def per_pubend_rate(self) -> float:
        return self.input_rate / self.n_pubends

    @property
    def per_subscriber_rate(self) -> float:
        return self.input_rate * self.groups_per_sub / self.n_groups

    def pubend_names(self) -> List[str]:
        return [f"P{i + 1}" for i in range(self.n_pubends)]

    def subscriber_predicate(self, index: int) -> Predicate:
        """Groups assigned round-robin so load is even across groups."""
        groups = [(index + k) % self.n_groups for k in range(self.groups_per_sub)]
        return In("group", groups)


def make_publishers(
    scheduler: Scheduler,
    phb: PublisherHostingBroker,
    spec: PaperWorkloadSpec,
) -> List[PeriodicPublisher]:
    """One steady-rate publisher per pubend; groups cycle per pubend.

    Publisher phases are staggered so the aggregate arrival process is
    smooth rather than batched.
    """
    publishers = []
    for i, pubend in enumerate(spec.pubend_names()):
        def attr_fn(seq: int, base: int = i) -> Dict[str, object]:
            return {"group": (seq + base) % spec.n_groups}

        pub = PeriodicPublisher(
            scheduler, phb, pubend, spec.per_pubend_rate, attr_fn,
            payload_bytes=spec.payload_bytes,
        )
        interval = 1000.0 / spec.per_pubend_rate
        pub.start(first_delay_ms=interval * (i + 1) / (spec.n_pubends + 1))
        publishers.append(pub)
    return publishers


def make_subscribers(
    scheduler: Scheduler,
    shbs: Sequence[SubscriberHostingBroker],
    spec: PaperWorkloadSpec,
    subs_per_shb: int,
    subs_per_machine: int = 8,
    record_events: bool = False,
    connect: bool = True,
    on_event: Optional[Callable] = None,
) -> List[DurableSubscriber]:
    """Create (and connect) durable subscribers spread over client machines.

    The failure experiment runs 8 subscribers per client machine; the
    same layout is used everywhere so client CPU is modelled uniformly.
    """
    subscribers: List[DurableSubscriber] = []
    for s_idx, shb in enumerate(shbs):
        machines: List[Node] = []
        for i in range(subs_per_shb):
            m_idx = i // subs_per_machine
            while m_idx >= len(machines):
                machines.append(Node(scheduler, f"client-{shb.name}-m{len(machines) + 1}"))
            sub = DurableSubscriber(
                scheduler,
                f"{shb.name}-s{i + 1}",
                machines[m_idx],
                spec.subscriber_predicate(i),
                record_events=record_events,
                on_event=on_event,
            )
            if connect:
                sub.connect(shb)
            subscribers.append(sub)
    return subscribers


class ChurnSchedule:
    """Independent periodic disconnect/reconnect churn (Section 5.1).

    *"each subscriber independently disconnects every 300s, remains
    disconnected for 5s (so it misses 1000 events), and then
    reconnects."*  First disconnects are staggered uniformly across the
    period so, at scale, there is nearly always some subscriber in
    catchup — the paper notes that with 348 subscribers at least one is
    always catching up.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        subscribers: Sequence[DurableSubscriber],
        shb_of: Callable[[DurableSubscriber], SubscriberHostingBroker],
        period_ms: float = 300_000.0,
        down_ms: float = 5_000.0,
        start_after_ms: float = 5_000.0,
    ) -> None:
        self.scheduler = scheduler
        self.shb_of = shb_of
        self.period_ms = period_ms
        self.down_ms = down_ms
        self.disconnects = 0
        self.reconnects = 0
        self._stopped = False
        n = max(1, len(subscribers))
        for i, sub in enumerate(subscribers):
            offset = start_after_ms + (i * period_ms) / n
            scheduler.after(offset, self._disconnect, sub)

    def stop(self) -> None:
        self._stopped = True

    def _disconnect(self, sub: DurableSubscriber) -> None:
        if self._stopped:
            return
        if sub.connected:
            sub.disconnect()
            self.disconnects += 1
        self.scheduler.after(self.down_ms, self._reconnect, sub)

    def _reconnect(self, sub: DurableSubscriber) -> None:
        if self._stopped:
            return
        shb = self.shb_of(sub)
        if not sub.connected and not shb.node.is_down:
            sub.connect(shb)
            self.reconnects += 1
        self.scheduler.after(self.period_ms - self.down_ms, self._disconnect, sub)
