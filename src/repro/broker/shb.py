"""The subscriber hosting broker (Section 4).

The SHB hosts durable subscribers.  Per pubend it runs:

* one **consolidated stream** for all connected non-catchup
  subscribers (knowledge accumulates into it exactly as the paper's
  istream→constream pipeline; the istream's curiosity survives as this
  broker's per-pubend head-knowledge gap check),
* one **catchup stream** per connected subscriber still recovering the
  past, fed by PFS batch reads and flow-controlled nacks,
* the **PFS** write path (from the constream) and read path (from
  catchup streams),
* **release** bookkeeping: ``released(s,p)`` acks from clients,
  ``released(p)`` reports upstream, and PFS chopping.

Persistent state (tables + PFS log volume on the SHB's disk) survives
crashes; everything else is volatile and rebuilt in :meth:`recover`,
after which the constream nacks forward from the durable
``latestDelivered`` and subscribers re-enter through catchup — the
exact scenario of Figures 7 and 8.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from ..core import messages as M
from ..core.catchup import CatchupStream
from ..core.constream import ConsolidatedStream
from ..core.curiosity import CuriosityStream, NackConsolidator
from ..core.subscription import SubscriptionRegistry
from ..core.tickmap import TickMap
from ..matching.engine import MatchingEngine
from ..net.link import Link, LinkEnd
from ..net.node import Node
from ..net.simtime import PeriodicHandle, Scheduler
from ..pfs.pfs import PersistentFilteringSubsystem
from ..storage.disk import SimDisk
from ..storage.logvolume import LogVolume
from ..storage.table import PersistentTable
from ..util.errors import ProtocolError
from ..util.intervals import IntervalSet
from .base import Broker
from .costs import CostModel


class SubscriberHostingBroker(Broker):
    """Hosts durable subscribers; implements Section 4 end to end."""

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        pubend_names: List[str],
        cost_model: Optional[CostModel] = None,
        speed: float = 1.0,
        node: Optional[Node] = None,
        disk: Optional[SimDisk] = None,
        commit_interval_ms: float = 250.0,
        release_report_interval_ms: float = 250.0,
        gap_check_interval_ms: float = 50.0,
        head_nack_retry_ms: float = 250.0,
        catchup_buffer_qs: int = 5000,
        catchup_nack_window: int = 256,
        event_cache_span_ms: int = 120_000,
        nack_consolidation: bool = True,
        use_pfs_for_catchup: bool = True,
        subscription_refresh_ms: float = 2_000.0,
        batch_window_ms: float = 0.0,
        nack_backoff_factor: float = 1.0,
        nack_backoff_max_ms: Optional[float] = None,
        nack_jitter_ms: float = 0.0,
        nack_retry_budget: Optional[int] = None,
    ) -> None:
        super().__init__(scheduler, name, cost_model, speed, node)
        #: Delivery batching (0 = the seed's one-job-per-message path).
        #: When positive, constream fan-out hands each subscriber its
        #: events per pump as one CPU job, and client links are created
        #: with the same batching window (see DurableSubscriber.connect).
        self.batch_window_ms = batch_window_ms
        self.pubend_names = sorted(pubend_names)
        #: One durable device for PFS records and tables (the paper used
        #: DB2 plus the Log Volume on the same machine's SSA disks).
        self.disk = disk if disk is not None else SimDisk(scheduler, f"{name}-store")
        self.commit_interval_ms = commit_interval_ms
        self.release_report_interval_ms = release_report_interval_ms
        self.gap_check_interval_ms = gap_check_interval_ms
        self.head_nack_retry_ms = head_nack_retry_ms
        self.catchup_buffer_qs = catchup_buffer_qs
        self.catchup_nack_window = catchup_nack_window
        self.event_cache_span_ms = event_cache_span_ms
        #: Ablation switches (benchmarks/bench_ablation_*.py): disable
        #: nack consolidation, or force catchup streams to recover by
        #: wholesale refiltering instead of PFS reads.
        self.nack_consolidation = nack_consolidation
        self.use_pfs_for_catchup = use_pfs_for_catchup
        self.subscription_refresh_ms = subscription_refresh_ms
        #: Re-nack policy for the head curiosity streams.  The defaults
        #: reproduce fixed-interval retries exactly; chaos scenarios
        #: turn on backoff + jitter + a budget (see CuriosityStream).
        self.nack_backoff_factor = nack_backoff_factor
        self.nack_backoff_max_ms = nack_backoff_max_ms
        self.nack_jitter_ms = nack_jitter_ms
        self.nack_retry_budget = nack_retry_budget

        # -- persistent stores (survive crashes) -----------------------
        self.meta_table = PersistentTable(f"{name}.meta", self.disk)
        self.subs_table = PersistentTable(f"{name}.subs", self.disk)
        self.released_table = PersistentTable(f"{name}.released", self.disk)
        self.pfs_volume = LogVolume.in_memory()
        self.pfs = PersistentFilteringSubsystem(self.pfs_volume, self.disk)
        self._own_storage(self.disk, self.pfs_volume)

        # -- volatile state (rebuilt on recovery) -----------------------
        self.registry = SubscriptionRegistry(self.subs_table, self.released_table)
        self.engine = MatchingEngine()
        self.constreams: Dict[str, ConsolidatedStream] = {}
        self.catchups: Dict[Tuple[str, str], CatchupStream] = {}
        self.head_curiosity: Dict[str, CuriosityStream] = {}
        self.consolidators: Dict[str, NackConsolidator] = {}
        self._sessions: Dict[str, LinkEnd] = {}
        self._session_subs: Dict[int, Set[str]] = {}  # id(link_end) -> subs
        self._timers: List[PeriodicHandle] = []
        self.catchup_durations_ms: List[Tuple[float, float]] = []  # (end time, duration)
        self.catchup_ticks_nacked = 0  # recovery request volume (ablations)
        self.events_enqueued = 0
        self.gaps_enqueued = 0
        self.delivery_batches = 0  # batched-fanout CPU jobs issued
        self._client_extensions: Dict[type, object] = {}
        #: True while the registry is known to be missing rows: the
        #: recovered PFS holds records for subscriber nums the committed
        #: registry cannot name (the rows died uncommitted in the
        #: crash).  While suspect, this SHB must not speak with
        #: authority about which subscriptions it hosts — see
        #: _refresh_subscriptions and _report_release.  Cleared by
        #: _maybe_clear_suspect once re-registrations cover every
        #: PFS-referenced num.
        self.registry_suspect = False

        self.node.on_crash(self._on_node_crash)
        self._build_volatile()

    # ------------------------------------------------------------------
    # Volatile state construction (initial boot and post-crash recovery)
    # ------------------------------------------------------------------
    def _build_volatile(self) -> None:
        self.engine = MatchingEngine()
        for sub in self.registry.all():
            self.engine.add(sub.sub_id, sub.predicate)
            sub.connected = False
        self.constreams = {}
        self.head_curiosity = {}
        self.consolidators = {}
        self.catchups = {}
        self._sessions = {}
        self._session_subs = {}
        # The SHB's volatile event cache ("caching events at
        # intermediate brokers and SHBs", Section 1): recent knowledge
        # answers most catchup nacks locally, keeping mass catchup off
        # the PHB (the localization Figure 8 demonstrates).
        self.event_cache: Dict[str, TickMap] = {}
        self.cache_served_nacks = 0
        for pubend in self.pubend_names:
            self.event_cache[pubend] = TickMap()
            constream = ConsolidatedStream(
                pubend,
                self.scheduler,
                self.registry,
                self.engine,
                self.pfs,
                self.meta_table,
                deliver=self._deliver,
                deliver_batch=self._deliver_batch if self.batch_window_ms > 0 else None,
            )
            self.constreams[pubend] = constream
            jitter_rng = (
                random.Random(f"{self.name}:{pubend}:nack-jitter")
                if self.nack_jitter_ms > 0.0
                else None
            )
            self.head_curiosity[pubend] = CuriosityStream(
                self.scheduler,
                pubend,
                send_nack=lambda ranges, p=pubend: self.send_up(M.Nack(p, ranges.as_tuples())),
                retry_ms=self.head_nack_retry_ms,
                backoff_factor=self.nack_backoff_factor,
                backoff_max_ms=self.nack_backoff_max_ms,
                jitter_ms=self.nack_jitter_ms,
                retry_budget=self.nack_retry_budget,
                rng=jitter_rng,
            )
            self.consolidators[pubend] = NackConsolidator(
                self.scheduler, suppress=self.nack_consolidation
            )
        self._timers = [
            self.scheduler.every(self.commit_interval_ms, self._commit_tables),
            self.scheduler.every(self.release_report_interval_ms, self._report_release),
            self.scheduler.every(self.gap_check_interval_ms, self._gap_check),
            # Soft-state refresh: upstream subscription unions are
            # volatile (a recovered parent holds them cold until this
            # refresh re-syncs them).
            self.scheduler.every(self.subscription_refresh_ms, self._refresh_subscriptions),
        ]

    def _teardown_volatile(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers = []
        for constream in self.constreams.values():
            constream.close()
        for catchup in list(self.catchups.values()):
            catchup.close()
        for curiosity in self.head_curiosity.values():
            curiosity.close()

    # ------------------------------------------------------------------
    # Client attachment
    # ------------------------------------------------------------------
    def attach_client(self, link: Link, client_node: Node) -> LinkEnd:
        """Wire a client's link; returns the client's send end."""
        recv_end = link.end_for_sender(client_node)
        send_end = link.end_for_sender(self.node)
        recv_end.on_receive(
            lambda msg: self._on_client_message(send_end, msg),
            self.costs.shb_client_recv_cost,
        )
        link.on_disconnect(lambda: self._client_link_down(send_end))
        return recv_end

    def register_client_extension(self, msg_type: type, handler) -> None:
        """Install a handler for an extension client message type.

        Used by layers built on top of the core protocol — the JMS
        durable-subscription layer registers its checkpoint-commit
        messages here.
        """
        self._client_extensions[msg_type] = handler

    def _on_client_message(self, send_end: LinkEnd, msg: object) -> None:
        if isinstance(msg, M.ConnectRequest):
            self._on_connect(send_end, msg)
        elif isinstance(msg, M.AckCheckpoint):
            self._on_ack(msg)
        elif isinstance(msg, M.DisconnectRequest):
            self._disconnect_sub(msg.sub_id)
        else:
            handler = self._client_extensions.get(type(msg))
            if handler is not None:
                handler(send_end, msg)

    def _on_connect(self, send_end: LinkEnd, req: M.ConnectRequest) -> None:
        sub = self.registry.get(req.sub_id)
        refilter_until: Dict[str, int] = {}
        if sub is None:
            if req.predicate is None:
                raise ProtocolError(f"first connect of {req.sub_id} must carry a predicate")
            # The registration cursor: PFS records cover this
            # subscription only from here on.  Persisted with the row —
            # a later reconnect whose CT is below it must refilter that
            # span rather than read PFS silence out of it.
            registered_at = {
                p: self.constreams[p].delivered_cursor for p in self.pubend_names
            }
            # During a recovery replay the PFS can be *ahead* of the
            # cursor (records become durable before latestDelivered is
            # committed), and those records were written under the old
            # life's num assignment; a re-created subscription may be
            # handed a recycled num.  Coverage therefore starts above
            # whatever the stream already holds — replayed writes at or
            # below pfs.last_timestamp are skip-acked, never rewritten.
            # In steady state last_timestamp <= cursor, so this is the
            # plain registration cursor.
            pfs_cover_from = {
                p: max(registered_at[p], self.pfs.last_timestamp(p))
                for p in self.pubend_names
            }
            sub = self.registry.create(req.sub_id, req.predicate, pfs_from=pfs_cover_from)
            self.engine.add(sub.sub_id, sub.predicate)
            self.send_up(M.SubscriptionAdd(self._global_sub_id(sub.sub_id), sub.predicate))
            self._maybe_clear_suspect()
            if req.checkpoint is None:
                # A new subscriber starts at the constream's cursor and
                # is therefore immediately in non-catchup mode (§4.1).
                checkpoint = dict(registered_at)
            else:
                # Reconnect-anywhere (the paper's feature 5): a durable
                # subscriber from another SHB presents its CT here.
                # The same happens when *this* SHB crashed before the
                # registry row was committed: the client reconnects
                # into an SHB that no longer knows it.  Either way the
                # PFS has no records for it below the registration
                # point, so that span is recovered by refiltering
                # nacked events; from here on the PFS covers it like
                # any local subscription.
                checkpoint = dict(req.checkpoint)
                refilter_until = dict(pfs_cover_from)
            for pubend, t in checkpoint.items():
                if pubend in self.constreams:
                    self.registry.ack(sub.sub_id, pubend, t)
        else:
            if req.checkpoint is None:
                raise ProtocolError(f"reconnect of {req.sub_id} must carry its CT")
            checkpoint = dict(req.checkpoint)
            # A reconnect below the registration cursor (e.g. the
            # client disconnected mid-catchup shortly after this
            # subscription was re-created): PFS coverage still only
            # begins at pfs_from — refilter below it.
            refilter_until = {
                p: sub.pfs_from[p]
                for p in self.pubend_names
                if checkpoint.get(p, 0) < sub.pfs_from.get(p, 0)
            }
        if sub.connected:
            # Stale session (e.g. client crashed and reconnected before
            # we noticed); the new session replaces it.
            self._disconnect_sub(sub.sub_id)
        sub.connected = True
        self._sessions[sub.sub_id] = send_end
        self._session_subs.setdefault(id(send_end), set()).add(sub.sub_id)
        send_end.send(M.ConnectAccept(sub.sub_id, dict(checkpoint)))
        for pubend in self.pubend_names:
            constream = self.constreams[pubend]
            start = checkpoint.get(pubend, constream.delivered_cursor)
            if start >= constream.delivered_cursor:
                # Already at (or ahead of — see ConsolidatedStream.
                # add_non_catchup) the consolidated stream's cursor.
                constream.add_non_catchup(sub.sub_id, floor=start)
            else:
                self._start_catchup(
                    sub.sub_id, pubend, start,
                    refilter_until=refilter_until.get(pubend, 0),
                )

    def _global_sub_id(self, sub_id: str) -> str:
        """Subscription ids must be unique across the overlay."""
        return f"{self.name}/{sub_id}"

    def _on_ack(self, ack: M.AckCheckpoint) -> None:
        for pubend, t in ack.checkpoint.items():
            if pubend in self.constreams and ack.sub_id in self.registry:
                self.registry.ack(ack.sub_id, pubend, t)

    def _client_link_down(self, send_end: LinkEnd) -> None:
        for sub_id in list(self._session_subs.get(id(send_end), ())):
            self._disconnect_sub(sub_id)

    def _disconnect_sub(self, sub_id: str) -> None:
        sub = self.registry.get(sub_id)
        if sub is not None:
            sub.connected = False
        end = self._sessions.pop(sub_id, None)
        if end is not None:
            subs = self._session_subs.get(id(end))
            if subs is not None:
                subs.discard(sub_id)
        for pubend in self.pubend_names:
            self.constreams[pubend].remove_subscriber(sub_id)
            catchup = self.catchups.pop((sub_id, pubend), None)
            if catchup is not None:
                catchup.close()
                self.consolidators[pubend].drop_requester((sub_id, pubend))

    def unsubscribe(self, sub_id: str) -> None:
        """Destroy a durable subscription entirely."""
        self._disconnect_sub(sub_id)
        if sub_id in self.registry:
            self.registry.drop(sub_id)
            self.engine.remove(sub_id)
            self.send_up(M.SubscriptionRemove(self._global_sub_id(sub_id)))

    # ------------------------------------------------------------------
    # Catchup streams
    # ------------------------------------------------------------------
    def _start_catchup(
        self, sub_id: str, pubend: str, start: int, refilter_until: int = 0
    ) -> None:
        sub = self.registry.get(sub_id)
        assert sub is not None
        key = (sub_id, pubend)

        def deliver(msg: object) -> None:
            on_sent = None
            if isinstance(msg, M.EventMessage):
                on_sent = lambda: self._catchup_delivery_sent(key)
            self._deliver(sub_id, msg, via_catchup=True, on_sent=on_sent)

        def send_nack(ranges: IntervalSet) -> None:
            self._catchup_nack(key, pubend, ranges)

        def on_switchover() -> None:
            self._on_switchover(key)

        caches_valid = refilter_until == 0
        if not self.use_pfs_for_catchup:
            # Ablation: ignore the PFS entirely — recover the whole
            # missed span by nack + refilter (what the system would do
            # without the paper's novel feature 2).  Caches stay valid:
            # the subscription was registered while they filled.
            refilter_until = 2**60
        stream = CatchupStream(
            self.scheduler,
            pubend,
            sub,
            start,
            self.pfs,
            self.constreams[pubend],
            deliver=deliver,
            send_nack=send_nack,
            on_switchover=on_switchover,
            buffer_qs=self.catchup_buffer_qs,
            nack_window_ticks=self.catchup_nack_window,
            run_costed=self._run_control,
            refilter_until=refilter_until,
            caches_valid=caches_valid,
            track_deliveries=True,
        )
        # A trivial catchup (e.g. a pure-silence span) can complete
        # synchronously inside the constructor; record its duration but
        # don't track the already-closed stream.
        if not stream.closed:
            self.catchups[key] = stream
        else:
            self.catchup_durations_ms.append(
                (self.scheduler.now, stream.catchup_duration_ms)
            )

    def _run_control(self, cost_ms: float, fn) -> None:
        """Run protocol control work (PFS reads) synchronously, charging
        its CPU cost as accounting-only load.

        Control work must not wait behind the bulk delivery queue: in a
        real broker it runs on other processors (the testbed machines
        were 6-way SMPs); gating the catchup control loop behind queued
        deliveries creates a latency-equals-progress equilibrium where
        streams chase the moving target forever.
        """
        self.node.try_submit(cost_ms, lambda: None)
        fn()

    def _catchup_delivery_sent(self, key: Tuple[str, str]) -> None:
        stream = self.catchups.get(key)
        if stream is not None:
            stream.on_delivery_sent()

    def _catchup_nack(self, key: Tuple[str, str], pubend: str, ranges: IntervalSet) -> None:
        # Serve what the local event cache knows; only the remainder
        # travels upstream (consolidated).  The cache holds knowledge
        # filtered by this SHB's *historical* subscription union, so it
        # must not answer a reconnect-anywhere stream's refilter span.
        stream = self.catchups.get(key)
        refilter_below = 0
        if stream is not None and not stream.caches_valid:
            refilter_below = stream.refilter_until + 1
        cache = self.event_cache[pubend]
        reply = M.KnowledgeUpdate(pubend)
        unresolved = IntervalSet()
        for iv in ranges:
            cacheable_start = max(iv.start, refilter_below)
            if cacheable_start > iv.start:
                unresolved.add(iv.start, min(iv.end, cacheable_start - 1))
            if cacheable_start > iv.end:
                continue
            d_events, s_ranges, l_ranges, q_set = cache.classify_within(
                cacheable_start, iv.end
            )
            reply.d_events.extend(d_events)
            reply.s_ranges.extend(s_ranges)
            reply.l_ranges.extend(l_ranges)
            unresolved.update(q_set)
        reply.coalesce()
        if not reply.is_empty():
            self.cache_served_nacks += 1
            # Serve synchronously: the stream's curiosity must see these
            # ticks resolved *before* its next retry window, or overload
            # turns into a renack storm (the reply waiting in the CPU
            # queue while the same ticks are re-requested).  The real
            # CPU cost is charged where it is paid: per delivered
            # message in _deliver, plus a small accounting charge for
            # the cache lookup itself.
            self.node.try_submit(
                self.costs.serve_nack_per_event_ms * max(1, len(reply.d_events)),
                lambda: None,
            )
            if stream is not None:
                stream.on_knowledge(reply)
        if unresolved:
            consolidator = self.consolidators[pubend]
            consolidator.register(key, unresolved)
            due = consolidator.to_forward(unresolved)
            if due:
                self.send_up(M.Nack(pubend, due.as_tuples(), refilter_below=refilter_below))

    def _on_switchover(self, key: Tuple[str, str]) -> None:
        sub_id, pubend = key
        catchup = self.catchups.pop(key, None)
        if catchup is not None:
            self.catchup_durations_ms.append((self.scheduler.now, catchup.catchup_duration_ms))
            self.catchup_ticks_nacked += catchup.curiosity.ticks_nacked
            self.consolidators[pubend].drop_requester(key)
        if sub_id in self._sessions:
            self.constreams[pubend].add_non_catchup(sub_id)

    def in_catchup(self, sub_id: str, pubend: str) -> bool:
        """The paper's ``catchup(s, p)`` predicate."""
        sub = self.registry.get(sub_id)
        if sub is None or not sub.connected:
            return True  # becomes true the instant the subscriber disconnects
        return (sub_id, pubend) in self.catchups

    # ------------------------------------------------------------------
    # Delivery (shared by constream and catchup streams)
    # ------------------------------------------------------------------
    def _deliver(
        self, sub_id: str, msg: object, via_catchup: bool = False, on_sent=None
    ) -> None:
        if isinstance(msg, M.EventMessage):
            cost = (
                self.costs.catchup_deliver_event_ms
                if via_catchup
                else self.costs.deliver_event_ms
            )
        else:
            cost = self.costs.deliver_control_ms
        if isinstance(msg, M.EventMessage):
            self.events_enqueued += 1
        elif isinstance(msg, M.GapMessage):
            self.gaps_enqueued += 1
        enqueued_ms = self.scheduler.now
        self.node.submit(
            cost,
            lambda: self._do_send(sub_id, msg, on_sent, via_catchup, enqueued_ms),
        )

    def _do_send(
        self,
        sub_id: str,
        msg: object,
        on_sent=None,
        via_catchup: bool = False,
        enqueued_ms: Optional[float] = None,
    ) -> None:
        end = self._sessions.get(sub_id)
        if end is not None:
            end.send(msg)
            if enqueued_ms is not None and isinstance(msg, M.EventMessage):
                tracer = self._tracer
                if tracer.tracing:
                    tracer.on_deliver(
                        msg.event.event_id, sub_id, via_catchup, enqueued_ms
                    )
        if on_sent is not None:
            on_sent()

    def _deliver_batch(self, sub_id: str, msgs: List[M.EventMessage]) -> None:
        """Batched constream fan-out: one CPU job for a subscriber's
        whole per-pump event list.  The messages then enter the client
        link inside one batching window, so they also travel as one
        transmission."""
        self.events_enqueued += len(msgs)
        self.delivery_batches += 1
        cost = self.costs.deliver_event_ms * len(msgs)
        enqueued_ms = self.scheduler.now
        self.node.submit(cost, lambda: self._do_send_batch(sub_id, msgs, enqueued_ms))

    def _do_send_batch(
        self, sub_id: str, msgs: List[M.EventMessage], enqueued_ms: Optional[float] = None
    ) -> None:
        end = self._sessions.get(sub_id)
        if end is not None:
            tracer = self._tracer
            for msg in msgs:
                end.send(msg)
                if enqueued_ms is not None and tracer.tracing:
                    tracer.on_deliver(
                        msg.event.event_id, sub_id, via_catchup=False,
                        start_ms=enqueued_ms,
                    )

    # ------------------------------------------------------------------
    # Knowledge intake from the parent
    # ------------------------------------------------------------------
    def _handle_from_parent(self, msg: object) -> None:
        if isinstance(msg, M.KnowledgeUpdate):
            self._on_knowledge(msg)

    def _handle_from_parent_batch(self, msgs: List[object]) -> None:
        """Batched uplink intake: fold every knowledge update of one
        transmission into the constream, then pump once per pubend over
        the combined doubt-horizon advance (instead of once per update).
        """
        per_pubend: Dict[str, List[M.KnowledgeUpdate]] = {}
        for msg in msgs:
            if isinstance(msg, M.KnowledgeUpdate) and msg.pubend in self.constreams:
                per_pubend.setdefault(msg.pubend, []).append(msg)
            else:
                self._handle_from_parent(msg)
        for pubend, updates in per_pubend.items():
            constream = self.constreams[pubend]
            fresh: List[M.KnowledgeUpdate] = []
            for update in updates:
                self._cache_knowledge(pubend, update)
                # The cursor is stable across the loop: it only advances
                # in a pump, and the single pump happens below.
                old, new = M.split_update(update, constream.delivered_cursor)
                if not new.is_empty():
                    fresh.append(new)
                if not old.is_empty():
                    self._route_to_catchups(pubend, old)
            if fresh:
                constream.accumulate_many(fresh)

    def _on_knowledge(self, update: M.KnowledgeUpdate) -> None:
        pubend = update.pubend
        constream = self.constreams.get(pubend)
        if constream is None:
            return
        self._cache_knowledge(pubend, update)
        old, new = M.split_update(update, constream.delivered_cursor)
        if not new.is_empty():
            constream.accumulate(new)
        if not old.is_empty():
            self._route_to_catchups(pubend, old)

    def _cache_knowledge(self, pubend: str, update: M.KnowledgeUpdate) -> None:
        # Both intake paths (per-message and batched) come through here
        # exactly once per update: memo traced-event arrival times so
        # the constream's match span starts at SHB intake.
        tracer = self._tracer
        if tracer.tracing and update.d_events:
            for event in update.d_events:
                tracer.note_arrival(event.event_id)
        cache = self.event_cache[pubend]
        for start, end in update.l_ranges:
            cache.set_lost_below(end + 1)
        for start, end in update.s_ranges:
            cache.set_s(start, end)
        for event in update.d_events:
            cache.set_d(event.timestamp, event)
        floor = cache.max_known() - self.event_cache_span_ms
        if floor > 0:
            cache.forget_below(floor)

    def _route_to_catchups(self, pubend: str, old: M.KnowledgeUpdate) -> None:
        consolidator = self.consolidators[pubend]
        hi = old.max_tick()
        assert hi is not None
        for key in consolidator.route(0, hi):
            catchup = self.catchups.get(key)  # type: ignore[arg-type]
            interest = consolidator.interest_of(key)
            if catchup is None or interest is None:
                continue
            pieces = M.clip_update_to_set(old, interest)
            if not pieces.is_empty():
                catchup.on_knowledge(pieces)
        covered = IntervalSet(old.s_ranges + old.l_ranges)
        for event in old.d_events:
            covered.add(event.timestamp)
        consolidator.satisfy_set(covered)

    def _handle_from_child(self, child: str, msg: object) -> None:  # pragma: no cover
        raise ProtocolError("SHBs are leaves of the broker tree")

    # ------------------------------------------------------------------
    # Periodic maintenance
    # ------------------------------------------------------------------
    def _gap_check(self) -> None:
        """The istream's curiosity: nack Q gaps in head knowledge."""
        for pubend, constream in self.constreams.items():
            knowledge = constream.knowledge
            frontier = knowledge.frontier
            unknown = knowledge.unknown_up_to(frontier)
            self.head_curiosity[pubend].set_want(unknown)

    def _refresh_subscriptions(self) -> None:
        """Epoch-tagged full-union refresh toward the parent.

        The receiving broker stages the epoch's adds and swaps them in
        only when the count matches the sync (see Broker), so a refresh
        partially eaten by a lossy link can never warm an incomplete
        union upstream; the next refresh simply retries.

        Suppressed while the registry is suspect: an epoch sync from a
        registry that lost rows would *replace* the parent's union with
        a subset (in the worst case, replace it with nothing) and still
        mark it warm — the parent would then convert live D ticks for
        the lost subscriptions to S, and the recovering constream would
        accept that silence as final.  Holding our tongue leaves the
        parent filtering with the pre-crash union, a superset of
        everything we might still host.
        """
        if self.registry_suspect:
            return
        epoch = self._next_sub_epoch()
        count = 0
        for sub in self.registry.all():
            self.send_up(
                M.SubscriptionAdd(
                    self._global_sub_id(sub.sub_id), sub.predicate, epoch=epoch
                )
            )
            count += 1
        self.send_up(M.SubscriptionSync(count, epoch=epoch))

    def _commit_tables(self) -> None:
        self.meta_table.commit()
        self.registry.commit()

    def _report_release(self) -> None:
        if self.registry_suspect:
            # released(p) = min over *all hosted* subscriptions — a
            # registry missing rows would overstate it, letting the
            # pubend convert to L (and this PFS chop away) ticks a lost
            # subscription has not acknowledged.  The parent simply
            # keeps our pre-crash release floor until re-registrations
            # account for every subscription the PFS knows about.
            return
        for pubend, constream in self.constreams.items():
            # Both values are capped at the *committed* latestDelivered:
            # the pubend may release (convert to L) only ticks that a
            # post-crash recovery of this SHB will never replay.
            committed_ld = constream.committed_latest_delivered
            released = min(constream.released, committed_ld)
            self.send_up(M.ReleaseUpdate(pubend, released, committed_ld))
            if released > 0:
                self.pfs.chop_below(pubend, released + 1)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def _on_node_crash(self) -> None:
        self._teardown_volatile()
        self.disk.crash_reset()
        self.meta_table.crash_reset()
        self.pfs.crash_reset()
        self.registry.crash_reset()

    def _on_node_recover(self) -> None:
        """Rebuild from persistent state (Section 4.1 recovery).

        The constream resumes from the committed ``latestDelivered``;
        the head gap check will nack everything the broker missed while
        down; subscribers reconnect on their own and go through catchup.

        If the recovered PFS references subscriber nums the committed
        registry cannot name, subscription rows died uncommitted in the
        crash: enter suspect mode (hold union refreshes and release
        reports) until the owners reconnect and re-register.
        """
        known = {sub.num for sub in self.registry.all()}
        self.registry_suspect = bool(self.pfs.live_subscriber_nums() - known)
        self._build_volatile()
        self._refresh_subscriptions()

    def _maybe_clear_suspect(self) -> None:
        """Leave suspect mode once every PFS-referenced num is claimed.

        Re-registrations recycle nums from zero, so once the registry
        again covers everything the PFS mentions, this SHB can speak
        for its full subscription population: resume authoritative
        union refreshes and release reporting immediately.
        """
        if not self.registry_suspect:
            return
        known = {sub.num for sub in self.registry.all()}
        if self.pfs.live_subscriber_nums() - known:
            return
        self.registry_suspect = False
        self._refresh_subscriptions()
        self._report_release()

    def _on_uplink_restored(self) -> None:
        """Partition toward the parent healed: re-sync eagerly.

        Everything this SHB said during the outage is gone — refresh
        the subscription union, re-report release levels, and re-nack
        outstanding curiosity instead of waiting out retry windows.
        """
        if self.node.is_down:
            return
        self._refresh_subscriptions()
        self._report_release()
        for curiosity in self.head_curiosity.values():
            curiosity.kick()
        for consolidator in self.consolidators.values():
            consolidator.reset_suppression()
        for catchup in self.catchups.values():
            catchup.curiosity.kick()

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def latest_delivered(self, pubend: str) -> int:
        return self.constreams[pubend].latest_delivered

    def released(self, pubend: str) -> int:
        return self.constreams[pubend].released

    @property
    def active_catchup_count(self) -> int:
        return len(self.catchups)

    @property
    def connected_count(self) -> int:
        return len(self._sessions)
